//! Performance + observability report for the workspace: kernel speedups,
//! a fully instrumented + traced pipeline run, a continuous-monitor run, a
//! timed static-analysis sweep, metrics-history + alerting and query-engine
//! overhead measurements, and a live self-scrape of the introspection server —
//! written to `BENCH_PR10.json`, with the run's span timeline exported to
//! `TRACE_PR10.json` (Chrome trace-event format; open it in Perfetto or
//! `about:tracing`).
//!
//! Sections:
//!
//! 1. **Kernels** — each ported kernel (exact Jaccard, MinHash, SimRank,
//!    flat and hierarchical Louvain, the Jacobi eigensolver, the PCA
//!    sweep) timed once under `Parallelism::serial()` and once under a
//!    multi-worker knob on fixed-seed inputs:
//!    `{n, serial_ms, parallel_ms, speedup}`.
//! 2. **Stages** — a simulated cluster is pushed through the instrumented
//!    pipeline (`StreamEngine` → `Pipeline` → `Workbench`) with a live
//!    `obs::Registry` and `obs::Tracer` (every stage nests under a
//!    `pipeline_run` root span), and the per-stage wall-time breakdown
//!    (ingest/build/similarity/cluster/policy/pca) is read back from the
//!    registry's `commgraph_stage_seconds` histograms, alongside the
//!    serialized `EngineStats`, the pipeline summary, and the full metrics
//!    snapshot.
//! 3. **Monitor** — a `SecurityMonitor` learns a baseline and enforces
//!    against a lateral-movement attack under a `monitor_run` root span,
//!    so the `commgraph_monitor_*` families carry real values.
//! 4. **Lintcheck** — one full workspace sweep of the static-analysis
//!    pass (see `crates/lintcheck`), timed and counted into the same
//!    registry via `commgraph_lint_sweep_seconds` and
//!    `commgraph_lint_findings_total{lint}`.
//! 5. **Tsdb/alert** — the run's registry is scraped into the in-memory
//!    TSDB and the default alert pack evaluated for a few hundred logical
//!    ticks, timing the per-tick scrape + evaluate overhead against its
//!    1 ms budget and reporting the store's memory footprint.
//! 6. **Query** — the expression engine is timed against the fully
//!    populated store: a dashboard pack of expressions parsed once and
//!    evaluated at a few hundred distinct ticks against a 1 ms/tick
//!    budget, with the scraper's recording rules and their synthetic
//!    series counted.
//! 7. **Serve** — an `obs::IntrospectionServer` boots on port 0 and the
//!    report scrapes its own `/metrics`, `/healthz`, `/query`,
//!    `/query_range`, `/alerts`, and `/slo` over real HTTP, verifying
//!    every canonical `obs::names` family appears in one scrape.
//! 8. **Faultsim** — the `cloudsim::net` delivery fabric: a clean-network
//!    run checked bit-identical to direct in-process ingest, each shipped
//!    fault script (crash/replay, delayed flush, duplicates, clock skew,
//!    partition, lossy jitter) run twice for a determinism verdict with
//!    its delivery/loss/dedup/lateness counters tabulated, and the raw
//!    tick throughput of the fabric.
//!
//! Usage: `cargo run --release -p commgraph-bench --bin bench_report`
//! Flags: `--n 500` (similarity/eigen dimension), `--workers 4`,
//! `--reps 3` (best-of-N timing), `--scale 0.3` (topology scale for the
//! stage run), `--minutes 30` (simulated span for the stage run).

use algos::jaccard::{jaccard_matrix_of_sets_with, MinHasher};
use algos::louvain::{hierarchical_louvain_with, louvain_with, HierarchicalConfig};
use algos::simrank::{simrank_with, SimRankConfig};
use algos::wgraph::WeightedGraph;
use algos::Parallelism;
use analytics::engine::{EngineConfig, StreamEngine};
use analytics::sharded::{ShardedConfig, ShardedEngine};
use benchkit::{arg, arg_f64, arg_u64, simulate};
use cloudsim::attack::{AttackKind, AttackScenario};
use cloudsim::{ClusterPreset, SimConfig, Simulator};
use commgraph::monitor::{MonitorConfig, MonitorEvent, SecurityMonitor};
use commgraph::pipeline::{Pipeline, PipelineConfig, WindowAnalyzer};
use commgraph::Workbench;
use commgraph_graph::builder::WindowedBuilder;
use commgraph_graph::{Facet, GraphBuilder};
use flowlog::record::{ConnSummary, FlowKey};
use linalg::eigen::eigen_symmetric_with;
use linalg::pca::pca_sweep_with;
use linalg::Matrix;
use serde_json::json;
use std::hint::black_box;
use std::io::{Read as _, Write as _};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`reps` wall-clock milliseconds for `f`.
fn time_ms<T>(reps: u64, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Deterministic neighbor-set fixture: n sets of ~32 ids drawn from a
/// universe sized so replicas overlap heavily.
fn fixture_sets(n: usize) -> Vec<Vec<u32>> {
    let mut state = 0xC0FFEEu64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..n)
        .map(|i| {
            let mut s: Vec<u32> = (0..32).map(|_| next() % (n as u32 * 4)).collect();
            // Every 4th set shares a common core, like same-role replicas.
            if i % 4 == 0 {
                s.extend(0..16u32);
            }
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect()
}

/// Deterministic community-structured graph: a ring of 16-node cliques
/// joined by weak bridges, plus sparse pseudo-random long-range edges —
/// enough inter-community noise to keep Louvain sweeping for a few rounds.
fn fixture_community_graph(n: usize) -> WeightedGraph {
    const CLIQUE: usize = 16;
    let n = n.max(2 * CLIQUE) / CLIQUE * CLIQUE;
    let n_cliques = n / CLIQUE;
    let mut state = 0xD1CEu64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for c in 0..n_cliques {
        let base = c * CLIQUE;
        for i in 0..CLIQUE {
            for j in (i + 1)..CLIQUE {
                edges.push(((base + i) as u32, (base + j) as u32, 1.0));
            }
        }
        let next_base = ((c + 1) % n_cliques) * CLIQUE;
        edges.push((base as u32, next_base as u32, 0.25));
    }
    for _ in 0..n {
        let (u, v) = (next() % n, next() % n);
        if u != v {
            edges.push((u as u32, v as u32, 0.05));
        }
    }
    WeightedGraph::from_edges(n, &edges)
}

/// Deterministic dense symmetric matrix with a generic spectrum.
fn fixture_symmetric(n: usize) -> Matrix {
    let mut state = 0x5EEDu64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 40) as f64 / 16_777_216.0
    };
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = next();
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

/// Time a full `lintcheck` sweep of the workspace — the static-analysis
/// pass is part of every CI run, so its runtime is a first-class budget
/// line next to the kernels. The per-lint finding counts and sweep wall
/// time land in `registry` under the canonical `commgraph_lint_*` names.
fn lintcheck_report(registry: &obs::Registry) -> serde_json::Value {
    let cwd = std::env::current_dir().expect("cwd readable");
    let Some(root) = lintcheck::walk::find_root_above(&cwd) else {
        return json!({"skipped": "no workspace root above the current directory"});
    };
    let cfg = lintcheck::Config::for_workspace(root.clone());
    let baseline = match std::fs::read_to_string(root.join("lintcheck.baseline")) {
        Ok(text) => lintcheck::baseline::Baseline::parse(&text),
        Err(_) => lintcheck::baseline::Baseline::default(),
    };
    let t0 = Instant::now();
    let report = lintcheck::run(&cfg, &baseline).expect("workspace tree is readable");
    let secs = t0.elapsed().as_secs_f64();

    registry
        .histogram(
            "commgraph_lint_sweep_seconds",
            "Wall-clock seconds for one full lintcheck workspace sweep.",
            &[],
        )
        .record(secs);
    registry
        .gauge(
            "commgraph_lint_callgraph_nodes",
            "Functions indexed by the latest lintcheck interprocedural sweep.",
            &[],
        )
        .set(report.callgraph_nodes as f64);
    registry
        .gauge(
            "commgraph_lint_callgraph_edges",
            "Call edges resolved by the latest lintcheck interprocedural sweep.",
            &[],
        )
        .set(report.callgraph_edges as f64);
    for lint in lintcheck::LintId::all() {
        let count =
            report.fresh.iter().chain(report.baselined.iter()).filter(|f| f.lint == lint).count();
        registry
            .counter(
                "commgraph_lint_findings_total",
                "Lint findings per lint id from the latest sweep (baselined + fresh).",
                &[("lint", lint.name())],
            )
            .add(count as u64);
    }

    println!(
        "lintcheck sweep               files {:<4} graph {}/{} findings {:<3} ({} baselined, {} fresh) in {:7.2} ms",
        report.files_scanned,
        report.callgraph_nodes,
        report.callgraph_edges,
        report.fresh.len() + report.baselined.len(),
        report.baselined.len(),
        report.fresh.len(),
        secs * 1e3
    );
    json!({
        "files_scanned": report.files_scanned,
        "callgraph_nodes": report.callgraph_nodes,
        "callgraph_edges": report.callgraph_edges,
        "findings_total": report.fresh.len() + report.baselined.len(),
        "baselined": report.baselined.len(),
        "fresh": report.fresh.len(),
        "sweep_ms": secs * 1e3,
    })
}

/// Feed a simulated lateral-movement attack through the continuous monitor
/// under a `monitor_run` root span, so every `commgraph_monitor_*` family
/// carries real values in the snapshot below.
fn monitor_report(o: &obs::Obs) -> serde_json::Value {
    let preset = ClusterPreset::MicroserviceBench;
    let topo = preset.topology_scaled(0.3);
    let breached = topo
        .ip_of(topo.role_named("frontend").expect("preset has a frontend").id, 0)
        .expect("slot 0 exists");
    let sim_cfg = SimConfig {
        attacks: vec![AttackScenario {
            kind: AttackKind::LateralMovement,
            // Starts after two 10-minute learning windows.
            start_min: 25,
            duration_min: 15,
            breached,
            intensity: 6,
        }],
        ..preset.default_sim_config()
    };
    let mut sim = Simulator::new(topo, sim_cfg).expect("sim config is valid");
    let monitored =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();
    let cfg = MonitorConfig {
        window_len: 600,
        learn_windows: 2,
        anomaly_k: 10,
        ..MonitorConfig::default()
    };
    let mut span = o.trace_root("monitor_run");
    let mut monitor = SecurityMonitor::with_obs(cfg, monitored, o.clone());
    let mut events = Vec::new();
    sim.run(45, |_, batch| events.extend(monitor.ingest(batch)));
    events.extend(monitor.flush());
    let windows = events.iter().filter(|e| matches!(e, MonitorEvent::WindowSummary { .. })).count();
    let violations: usize = events
        .iter()
        .filter_map(|e| match e {
            MonitorEvent::WindowSummary { violations, .. } => Some(*violations),
            _ => None,
        })
        .sum();
    if span.is_enabled() {
        span.attr("windows", &windows.to_string());
        span.attr("violations", &violations.to_string());
    }
    let secs = span.finish();
    println!(
        "monitor run                   windows {windows:<3} violations {violations:<5} in {:7.2} ms",
        secs * 1e3
    );
    json!({"enforced_windows": windows, "violations": violations, "events": events.len()})
}

/// Minimal HTTP/1.0 GET against the local introspection server; returns the
/// response body (panics on transport errors — this is a bench binary
/// scraping itself).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("introspection server reachable");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    }
}

/// Boot the introspection server on port 0, scrape `/metrics`, `/healthz`,
/// and the metrics-history endpoints (`/query`, `/alerts`, `/slo`) over
/// real HTTP, and verify every canonical `obs::names` family appears in
/// the one scrape.
fn serve_report(
    registry: &Arc<obs::Registry>,
    tracer: &Arc<obs::Tracer>,
    store: &Arc<obs::Tsdb>,
    alerts: &Arc<obs::AlertEngine>,
) -> serde_json::Value {
    let server = obs::IntrospectionServer::new(registry.clone())
        .with_tracer(tracer.clone())
        .with_tsdb(store.clone())
        .with_alerts(alerts.clone())
        .start("127.0.0.1:0")
        .expect("bind an ephemeral port");
    let addr = server.addr();
    let healthz_ok = http_get(addr, "/healthz").trim() == "ok";
    let metrics = http_get(addr, "/metrics");
    let missing: Vec<&str> = obs::names::METRICS
        .iter()
        .map(|def| def.name)
        .filter(|name| !metrics.contains(&format!("# TYPE {name} ")))
        .collect();
    let trace_body = http_get(addr, "/trace");
    let trace_ok = trace_body.starts_with("{\"displayTimeUnit\"");
    let query_body = http_get(addr, "/query?name=commgraph_tsdb_samples_total&field=value");
    let query_ok = query_body.starts_with("{\"series\":[{") && query_body.contains("\"points\":[[");
    let range_path = "/query_range?expr=rate(commgraph_tsdb_samples_total%5B8%5D)&step=1";
    let range_body = http_get(addr, range_path);
    let query_range_ok = range_body.starts_with("{\"expr\":\"")
        && range_body.contains("\"points\":[[")
        && http_get(addr, range_path) == range_body;
    let alerts_ok = http_get(addr, "/alerts").contains("\"alerts\":[{");
    let slo_ok = http_get(addr, "/slo").contains("\"slos\":[{");
    server.shutdown();
    println!(
        "introspection scrape          {}/{} canonical families present, healthz {}, \
         query/alerts/slo {}",
        obs::names::METRICS.len() - missing.len(),
        obs::names::METRICS.len(),
        if healthz_ok { "ok" } else { "FAILED" },
        if query_ok && query_range_ok && alerts_ok && slo_ok { "ok" } else { "FAILED" },
    );
    json!({
        "addr": addr.to_string(),
        "healthz_ok": healthz_ok,
        "trace_endpoint_ok": trace_ok,
        "query_endpoint_ok": query_ok,
        "query_range_endpoint_ok": query_range_ok,
        "alerts_endpoint_ok": alerts_ok,
        "slo_endpoint_ok": slo_ok,
        "families_total": obs::names::METRICS.len(),
        "families_present": obs::names::METRICS.len() - missing.len(),
        "missing": missing,
    })
}

/// Time the per-tick metrics-history cost against the live registry: one
/// scrape of every family into the TSDB plus one evaluation of the default
/// alert pack, repeated for a few hundred logical ticks. The budget is
/// 1 ms per tick — window rolls are the tick source in production, so this
/// overhead rides every analyzed window.
fn tsdb_alert_report(
    scraper: &obs::Scraper,
    alerts: &obs::AlertEngine,
    start_tick: u64,
) -> serde_json::Value {
    const TICKS: u64 = 200;
    let store = scraper.store();
    let (mut scrape_s, mut eval_s, mut max_tick_s) = (0.0f64, 0.0f64, 0.0f64);
    for tick in start_tick + 1..=start_tick + TICKS {
        let t0 = Instant::now();
        scraper.scrape(tick);
        let t1 = Instant::now();
        alerts.evaluate(tick, store);
        let t2 = Instant::now();
        scrape_s += (t1 - t0).as_secs_f64();
        eval_s += (t2 - t1).as_secs_f64();
        max_tick_s = max_tick_s.max((t2 - t0).as_secs_f64());
    }
    let scrape_us = scrape_s / TICKS as f64 * 1e6;
    let eval_us = eval_s / TICKS as f64 * 1e6;
    let per_tick_ms = (scrape_s + eval_s) / TICKS as f64 * 1e3;
    let within_budget = per_tick_ms < 1.0;
    println!(
        "tsdb scrape + alert eval      scrape {scrape_us:7.1} µs  evaluate {eval_us:7.1} µs  \
         per tick {per_tick_ms:6.3} ms (budget 1 ms, {})  {} series, {} KiB",
        if within_budget { "ok" } else { "OVER" },
        store.series_count(),
        store.memory_bytes() / 1024,
    );
    json!({
        "ticks": TICKS,
        "rules": alerts.rule_count(),
        "scrape_us_mean": scrape_us,
        "evaluate_us_mean": eval_us,
        "per_tick_ms_mean": per_tick_ms,
        "per_tick_ms_max": max_tick_s * 1e3,
        "per_tick_budget_ms": 1.0,
        "within_budget": within_budget,
        "series": store.series_count(),
        "samples_appended": store.appended_samples(),
        "samples_evicted": store.evicted_samples(),
        "memory_bytes": store.memory_bytes(),
    })
}

/// Time the query engine against the fully populated store: parse a
/// dashboard pack of expressions once, then evaluate the whole pack at a
/// few hundred distinct ticks. Budget: 1 ms per tick for the pack —
/// dashboards poll on window rolls, so this cost rides every tick the
/// operator is watching. Also reports the recording rules installed on the
/// scraper and the synthetic series they produced.
fn query_report(scraper: &obs::Scraper, rule_names: &[&str]) -> serde_json::Value {
    const TICKS: u64 = 200;
    let store = scraper.store();
    let exprs = [
        "rate(commgraph_engine_records_in_total[8])",
        "histogram_quantile(0.99, commgraph_window_roll_lag_seconds{source=\"pipeline\"})",
        "sum by (subscription) (rate(commgraph_subscription_records_total[8]))",
        "commgraph_engine_dropped_records_total / clamp_min(commgraph_engine_records_in_total, 1)",
        "max_over_time(commgraph_tsdb_memory_bytes[8])",
    ];
    let t0 = Instant::now();
    let parsed: Vec<obs::Expr> =
        exprs.iter().map(|src| obs::query::parse(src).expect("bench expressions parse")).collect();
    let parse_us = t0.elapsed().as_secs_f64() / exprs.len() as f64 * 1e6;

    let last = store.last_tick();
    let from = last.saturating_sub(TICKS - 1).max(1);
    let (mut eval_s, mut max_tick_s, mut points) = (0.0f64, 0.0f64, 0usize);
    for tick in from..=last {
        let t0 = Instant::now();
        for expr in &parsed {
            if let obs::Value::Vector(samples) =
                obs::query::eval(store, expr, tick).expect("bench expressions evaluate")
            {
                points += samples.len();
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        eval_s += dt;
        max_tick_s = max_tick_s.max(dt);
    }
    let ticks = last - from + 1;
    let per_tick_ms = eval_s / ticks as f64 * 1e3;
    let within_budget = per_tick_ms < 1.0;
    let rule_series: usize = rule_names
        .iter()
        .map(|name| {
            store.query(&obs::Query { name: Some(name.to_string()), ..Default::default() }).len()
        })
        .sum();
    println!(
        "query engine                  {} exprs, parse {parse_us:7.1} µs/expr, per tick \
         {per_tick_ms:6.3} ms over {ticks} ticks (budget 1 ms, {}); {} rules -> {} series",
        exprs.len(),
        if within_budget { "ok" } else { "OVER" },
        scraper.recording_rule_count(),
        rule_series,
    );
    json!({
        "expressions": exprs.len(),
        "ticks": ticks,
        "parse_us_mean": parse_us,
        "per_tick_ms_mean": per_tick_ms,
        "per_tick_ms_max": max_tick_s * 1e3,
        "per_tick_budget_ms": 1.0,
        "within_budget": within_budget,
        "vector_samples": points,
        "rules": scraper.recording_rule_count(),
        "rule_series_produced": rule_series,
    })
}

/// Run the instrumented pipeline end to end and report the per-stage
/// breakdown read back from the registry. Returns the JSON section plus the
/// run's Chrome trace-event timeline.
fn stage_report(workers: usize, scale: f64, minutes: u64) -> (serde_json::Value, String) {
    let registry = Arc::new(obs::Registry::new());
    // Adopt the registry process-wide so code without an `Obs` parameter —
    // the par scheduler, Louvain's sweep/move/level counters — lands in the
    // same metrics snapshot (first install wins; this is the only one).
    obs::install_global(registry.clone());
    let tracer = Arc::new(obs::Tracer::new(4096));
    let o = obs::Obs::new(registry.clone()).with_tracer(tracer.clone());
    let run = simulate(ClusterPreset::MicroserviceBench, scale, minutes);

    // Metrics history + alerting over the same registry: the incremental
    // analyzer below drives one scrape tick + one alert evaluation per
    // analyzed window, and the tsdb_alert section then times steady-state
    // ticks against the fully populated registry.
    let store = Arc::new(obs::Tsdb::new(obs::TsdbConfig::default()));
    let scraper = Arc::new(obs::Scraper::new(registry.clone(), store.clone()));
    // Recording rules ride every scrape from here on: the analyzer's
    // window-roll ticks, the tsdb_alert timing loop, and the query section
    // below all see their synthetic series (and the query families register
    // for the serve section's all-families check).
    scraper.add_recording_rules(vec![
        obs::RecordingRule::new(
            "engine:records:rate8",
            "rate(commgraph_engine_records_in_total[8])",
        )
        .expect("rule expression parses"),
        obs::RecordingRule::new(
            "subscription:records:rate8",
            "sum by (subscription) (rate(commgraph_subscription_records_total[8]))",
        )
        .expect("rule expression parses"),
    ]);
    let alerts = Arc::new(obs::AlertEngine::new(o.clone()));
    alerts.add_rules(obs::alert::default_pack(run.records.len() as f64));

    // The per-run root span: every engine/pipeline/workbench stage below
    // nests under it on the timeline.
    let mut run_span = o.trace_root("pipeline_run");
    run_span.attr("scale", &scale.to_string());
    run_span.attr("minutes", &minutes.to_string());
    run_span.attr("records", &run.records.len().to_string());

    // Streaming aggregation: wall-clock throughput + dedup accounting.
    let mut engine = StreamEngine::new(EngineConfig {
        workers,
        monitored: Some(run.monitored.clone()),
        obs: o.clone(),
        ..Default::default()
    })
    .expect("valid engine config");
    for chunk in run.records.chunks(65_536) {
        engine.ingest(chunk).expect("engine accepts batches");
    }
    let (_graphs, stats) = engine.finish().expect("engine drains");

    // The sharded front door registers the per-subscription and per-shard
    // health families (records/watermark/roll-lag/residency) plus the
    // cardinality-cap overflow counter in the same registry.
    let mut front = ShardedEngine::new(ShardedConfig {
        obs: o.clone(),
        engine: EngineConfig { workers, ..Default::default() },
        ..Default::default()
    })
    .expect("valid sharded config");
    let half = run.records.len() / 2;
    front.ingest("tenant-a", &run.records[..half]).expect("front door accepts batches");
    front.ingest("tenant-b", &run.records[half..]).expect("front door accepts batches");
    front.finish().expect("front door drains");

    // Windowed pipeline: the `ingest` stage span.
    let mut p = Pipeline::new(PipelineConfig {
        monitored: Some(run.monitored.clone()),
        parallelism: Parallelism::new(workers),
        obs: o.clone(),
        ..Default::default()
    });
    for chunk in run.records.chunks(65_536) {
        p.ingest(chunk);
    }
    let out = p.finish().expect("windows are contiguous");

    // Per-window incremental analysis over the pipeline output, so the
    // incremental-maintenance families (`commgraph_window_dirty_nodes`,
    // `commgraph_incremental_savings_seconds`) carry real registrations in
    // the scrape below.
    let mut analyzer = WindowAnalyzer::new(run.monitored.clone(), true)
        .with_parallelism(Parallelism::new(workers))
        .with_obs(o.clone())
        .with_subscription("tenant-a")
        .with_telemetry(scraper.clone(), alerts.clone());
    analyzer.analyze_output(&out, &run.records).expect("ip-facet windows analyze");

    // Workbench: build/similarity/cluster/policy/pca stage spans.
    let mut wb = Workbench::new(run.records.clone(), run.monitored.clone())
        .with_parallelism(Parallelism::new(workers))
        .with_obs(o.clone());
    wb.policy();
    wb.pca_summary(&[1, 4, 16]).expect("byte matrix is square");
    run_span.finish();

    // Continuous monitor under its own root span.
    let monitor = monitor_report(&o);

    // Static-analysis sweep, timed into the same registry so its metrics
    // ride the snapshot below.
    let lint = lintcheck_report(&registry);

    // Per-tick metrics-history overhead against the fully populated
    // registry, continuing from the analyzer's window-roll ticks.
    let tsdb_alert = tsdb_alert_report(&scraper, &alerts, analyzer.tick());

    // Query-engine overhead against the same fully populated store.
    let query = query_report(&scraper, &["engine:records:rate8", "subscription:records:rate8"]);

    // Live self-scrape over HTTP.
    let serve = serve_report(&registry, &tracer, &store, &alerts);

    let mut stages = serde_json::Map::new();
    println!();
    for stage in obs::STAGES {
        let snap = registry.histogram(obs::STAGE_SECONDS, "", &[("stage", stage)]).snapshot();
        println!(
            "stage {stage:<12} count {:<3} total {:9.2} ms  p95 {:9.2} ms",
            snap.count,
            snap.sum * 1e3,
            snap.p95 * 1e3
        );
        stages.insert(
            stage.to_string(),
            json!({
                "count": snap.count,
                "total_ms": snap.sum * 1e3,
                "p50_ms": snap.p50 * 1e3,
                "p95_ms": snap.p95 * 1e3,
                "p99_ms": snap.p99 * 1e3,
                "max_ms": snap.max * 1e3,
            }),
        );
    }

    let dump = tracer.dump();
    println!(
        "flight recorder               {} span(s) retained, {} dropped (capacity {})",
        dump.spans.len(),
        dump.dropped,
        dump.capacity
    );
    let section = json!({
        "scale": scale,
        "minutes": minutes,
        "records": run.records.len(),
        "stages": serde_json::Value::Object(stages),
        "monitor": monitor,
        "lintcheck": lint,
        "tsdb_alert": tsdb_alert,
        "query": query,
        "serve": serve,
        "trace": {
            "spans_retained": dump.spans.len(),
            "spans_dropped": dump.dropped,
            "capacity": dump.capacity,
        },
        "engine": {
            "stats": serde_json::to_value(&stats).expect("EngineStats serializes"),
            // Wall-clock machine rate (obs::rate::per_second semantics).
            "records_per_sec": stats.records_per_sec(),
        },
        // Per-occupied-minute mean (obs::rate::per_bucket semantics) —
        // intentionally a different number than records_per_sec above.
        "pipeline": serde_json::to_value(out.summary()).expect("summary serializes"),
        "metrics": serde_json::from_str::<serde_json::Value>(&obs::export::json_snapshot(
            &registry
        ))
        .expect("obs snapshot is valid JSON"),
    });
    (section, obs::trace::chrome_trace_json(&dump))
}

/// One window of the slowly-churning steady-state workload: `roles` roles ×
/// `replicas` replicas, each replica talking to every replica of the next
/// role with constant volume. Warm windows (`w > 0`) add a handful of extra
/// conversations whose volume depends on `w`, so only those endpoints dirty
/// between consecutive windows.
fn churn_window(roles: usize, replicas: usize, w: u64) -> Vec<ConnSummary> {
    let ip = |r: usize, i: usize| Ipv4Addr::new(10, (r / 200) as u8, (r % 200) as u8, i as u8 + 1);
    let base = w * 3600;
    let mut recs = Vec::new();
    for r in 0..roles {
        for i in 0..replicas {
            for j in 0..replicas {
                let bytes = 10_000 + (i * replicas + j) as u64;
                recs.push(ConnSummary {
                    ts: base + ((i * 31 + j * 7) as u64 % 3600),
                    key: FlowKey::tcp(
                        ip(r, i),
                        40_000 + j as u16,
                        ip((r + 1) % roles, j),
                        8_000 + r as u16,
                    ),
                    pkts_sent: 4,
                    pkts_rcvd: 2,
                    bytes_sent: bytes,
                    bytes_rcvd: bytes / 4,
                });
            }
        }
    }
    if w > 0 {
        // Steady churn: four conversations whose volume drifts per window.
        for k in 0..4usize {
            let r = (k * 7) % roles;
            recs.push(ConnSummary {
                ts: base + 1_800,
                key: FlowKey::tcp(
                    ip(r, 0),
                    41_000 + k as u16,
                    ip((r + 1) % roles, 1),
                    8_000 + r as u16,
                ),
                pkts_sent: 2,
                pkts_rcvd: 1,
                bytes_sent: 5_000 * w + k as u64,
                bytes_rcvd: 1_000 * w,
            });
        }
    }
    recs
}

/// Full-rebuild vs incremental per-window maintenance on the steady-state
/// churn workload, plus the sharded multi-subscription front door at 1/2/4
/// shards. The headline number is `speedup_warm`: mean warm-window
/// (build + similarity + cluster + policy) time of the full rebuild divided
/// by the incremental path's.
fn incremental_report() -> serde_json::Value {
    const ROLES: usize = 150;
    const REPLICAS: usize = 10;
    const WINDOWS: u64 = 6;
    // Both paths run under identical serial dispatch: the roll comparison
    // isolates algorithmic work (scored pairs, sweeps, policy pairs), while
    // scheduler scaling is measured by the kernels section above. Threaded
    // dispatch would charge both paths the same spawn overhead per tiny
    // refinement subgraph and drown the signal on small hosts.
    let par = Parallelism::serial();
    let windows: Vec<Vec<ConnSummary>> =
        (0..WINDOWS).map(|w| churn_window(ROLES, REPLICAS, w)).collect();
    let monitored: std::collections::HashSet<Ipv4Addr> =
        windows[0].iter().flat_map(|r| [r.key.local_ip, r.key.remote_ip]).collect();

    // Full rebuild: every window builds its graph and re-learns roles,
    // segmentation, and policy from scratch.
    let full_reg = Arc::new(obs::Registry::new());
    let mut full = WindowAnalyzer::new(monitored.clone(), false)
        .with_parallelism(par)
        .with_obs(obs::Obs::new(full_reg.clone()));
    let mut full_ms = Vec::new();
    for (w, recs) in windows.iter().enumerate() {
        let t0 = Instant::now();
        let mut b = GraphBuilder::new(Facet::Ip, w as u64 * 3600, 3600);
        b.add_all(recs);
        let g = b.finish();
        full.analyze(&g, g.nodes(), recs).expect("ip-facet window analyzes");
        full_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }

    // Incremental: the streaming loop as deployed — feed each window's
    // records into one dirty-tracked builder, drain whatever window the
    // arrivals just closed, and analyze it reusing the previous window's
    // similarity rows, partition seed, and carried policy rules. Window k's
    // entry times the iteration that analyzed it: one window's worth of
    // record ingest, the close+diff of window k, and its analysis — so every
    // warm entry is one full steady-state roll, and every cold cost (the
    // all-dirty first diff, sketch population) lands in entry 0.
    let incr_reg = Arc::new(obs::Registry::new());
    let mut incr = WindowAnalyzer::new(monitored.clone(), true)
        .with_parallelism(par)
        .with_obs(obs::Obs::new(incr_reg.clone()));
    let mut builder = WindowedBuilder::new(Facet::Ip, 3600).with_dirty_tracking();
    let mut incr_ms: Vec<f64> = Vec::new();
    let mut dirty_sizes = Vec::new();
    // Records arrive in strict window order, so each pass drains at most
    // one closed window; the final finish() drains the last.
    let mut passes: Vec<Option<&[ConnSummary]>> = windows.iter().map(|w| Some(&w[..])).collect();
    passes.push(None);
    for recs in passes {
        let t0 = Instant::now();
        let drained = match recs {
            Some(recs) => {
                builder.add_all(recs);
                builder.drain_finished_with_dirty()
            }
            None => std::mem::replace(
                &mut builder,
                WindowedBuilder::new(Facet::Ip, 3600).with_dirty_tracking(),
            )
            .finish_with_dirty(),
        };
        let analyzed = !drained.is_empty();
        for (g, dirty) in &drained {
            dirty_sizes.push(dirty.len());
            let i = (g.window_start() / 3600) as usize;
            incr.analyze(g, dirty, &windows[i]).expect("ip-facet window analyzes");
        }
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        // Each entry accumulates passes up to and including the one that
        // analyzed its window, so the first pass (closes nothing) folds
        // into entry 0 and cold costs stay out of the warm mean.
        match incr_ms.last_mut() {
            Some(last) => *last += dt,
            None => incr_ms.push(dt),
        }
        if analyzed {
            incr_ms.push(0.0);
        }
    }
    // The trailing 0.0 placeholder never received a pass.
    incr_ms.truncate(WINDOWS as usize);
    let ingest_ms: f64 = incr_ms.iter().sum();

    // Steady state = warm windows only (window 0 is cold in both modes).
    let warm_mean = |v: &[f64]| v[1..].iter().sum::<f64>() / (v.len() - 1) as f64;
    let full_warm = warm_mean(&full_ms);
    let incr_warm = warm_mean(&incr_ms);
    let speedup = full_warm / incr_warm;
    for stage in ["similarity", "cluster", "policy"] {
        let f = full_reg.histogram(obs::STAGE_SECONDS, "", &[("stage", stage)]).snapshot();
        let i = incr_reg.histogram(obs::STAGE_SECONDS, "", &[("stage", stage)]).snapshot();
        println!(
            "  stage {stage:<12} full {:9.2} ms  incremental {:9.2} ms",
            f.sum * 1e3,
            i.sum * 1e3
        );
    }
    println!(
        "incremental window roll       full {full_warm:9.2} ms  incremental {incr_warm:9.2} ms  \
         speedup {speedup:5.2}x (warm-window mean, {} nodes, dirty {:?})",
        ROLES * REPLICAS,
        &dirty_sizes[1..],
    );

    // Sharded multi-subscription ingest: the same stream for each of six
    // subscriptions, pushed through the front door at 1/2/4 shards.
    let all_records: Vec<ConnSummary> = windows.iter().flatten().copied().collect();
    let subs: Vec<String> = (0..6).map(|s| format!("sub-{s}")).collect();
    let mut sharded = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut front = ShardedEngine::new(ShardedConfig {
            shards,
            engine: EngineConfig { workers: 2, ..Default::default() },
            ..Default::default()
        })
        .expect("valid sharded config");
        let t0 = Instant::now();
        for chunk in all_records.chunks(4_096) {
            for sub in &subs {
                front.ingest(sub, chunk).expect("front door accepts batches");
            }
        }
        let (reports, stats) = front.finish().expect("front door drains");
        let secs = t0.elapsed().as_secs_f64();
        let rps = obs::rate::per_second(stats.records_in, secs);
        println!(
            "sharded ingest                shards {shards}  subscriptions {:<2} {:>9.0} records/s  in {:7.2} ms",
            reports.len(),
            rps,
            secs * 1e3,
        );
        sharded.push(json!({
            "shards": shards,
            "subscriptions": reports.len(),
            "records_in": stats.records_in,
            "edge_entries": stats.edge_entries,
            "per_shard_subscriptions": stats.per_shard_subscriptions,
            "ingest_ms": secs * 1e3,
            "records_per_sec": rps,
        }));
    }

    json!({
        "workload": {
            "roles": ROLES,
            "replicas": REPLICAS,
            "nodes": ROLES * REPLICAS,
            "windows": WINDOWS,
            "records_per_window": windows[0].len(),
            "dirty_nodes_per_warm_window": dirty_sizes[1..].to_vec(),
        },
        "full": {"per_window_ms": full_ms, "warm_mean_ms": full_warm},
        "incremental": {
            "per_window_ms": incr_ms,
            "warm_mean_ms": incr_warm,
            "streaming_ingest_ms": ingest_ms,
        },
        "speedup_warm": speedup,
        "sharded": sharded,
    })
}

/// Section 7: the fault simulator — clean-run bit-identity against direct
/// ingest, a per-fault-script outcome table (delivery, loss, dedup, and
/// lateness counters, each run twice for a determinism verdict), and raw
/// tick throughput of the delivery fabric.
fn faultsim_report() -> serde_json::Value {
    use cloudsim::net::{scripts, Delivery, FaultScript, NetConfig, NetSim};

    /// Wall-clock-free identity of a finished front door: per subscription,
    /// the engine counters plus each window's node/edge/byte shape.
    type Digest = Vec<(String, u64, u64, usize, Vec<(u64, usize, u64, u64)>)>;
    fn digest(front: ShardedEngine) -> Digest {
        let (reports, _) = front.finish().expect("front door drains");
        reports
            .into_iter()
            .map(|r| {
                let windows = r
                    .graphs
                    .iter()
                    .map(|g| {
                        let (mut edges, mut bytes) = (0u64, 0u64);
                        for i in 0..g.node_count() as u32 {
                            for (j, st) in g.neighbors(i) {
                                if i <= *j {
                                    edges += 1;
                                    bytes += st.bytes();
                                }
                            }
                        }
                        (g.window_start(), g.node_count(), edges, bytes)
                    })
                    .collect();
                (
                    r.subscription,
                    r.stats.records_in,
                    r.stats.records_kept,
                    r.stats.edge_entries,
                    windows,
                )
            })
            .collect()
    }
    let front = || ShardedEngine::new(ShardedConfig::default()).expect("valid sharded config");

    // Bit-identity: a simulated workload routed through a clean network must
    // finish identical to handing the same batches straight to the engine.
    let preset = ClusterPreset::MicroserviceBench;
    let minutes = 8;
    let simulator = || {
        Simulator::new(preset.topology_scaled(0.2), preset.default_sim_config())
            .expect("valid preset")
    };
    let mut direct = front();
    simulator().run(minutes, |_, batch| {
        direct.ingest("tenant-a", batch).expect("front door accepts batches");
    });
    let mut batches: Vec<Vec<ConnSummary>> = Vec::new();
    simulator().run(minutes, |_, batch| batches.push(batch.to_vec()));
    let mut net = NetSim::new(NetConfig::clean(), FaultScript::new()).expect("valid net config");
    let mut routed = front();
    for batch in &batches {
        net.offer(batch);
        net.step(|d| {
            routed
                .ingest_sequenced("tenant-a", &d.source.to_string(), d.seq, &d.records)
                .expect("seam ingest");
        });
    }
    net.drain(|d| {
        routed
            .ingest_sequenced("tenant-a", &d.source.to_string(), d.seq, &d.records)
            .expect("seam ingest");
    });
    let clean_bit_identical = digest(routed) == digest(direct);

    // Per-script outcome table over a fixed two-host workload, one window
    // per six ticks; every scenario runs twice for a determinism verdict.
    const TICKS: u64 = 12;
    let host = |d: u8| std::net::Ipv4Addr::new(10, 0, 0, d);
    let batch = |t: u64| -> Vec<ConnSummary> {
        (1u8..=2)
            .map(|h| ConnSummary {
                ts: t * 600,
                key: FlowKey::tcp(host(h), 40_000 + t as u16, host(99), 443),
                pkts_sent: 3,
                pkts_rcvd: 2,
                bytes_sent: 1_200,
                bytes_rcvd: 300,
            })
            .collect()
    };
    let run_script = |name: &str, cfg: NetConfig, script: FaultScript| {
        let exec = || {
            let registry = std::sync::Arc::new(obs::Registry::new());
            let o = obs::Obs::new(registry.clone());
            let mut pipeline = Pipeline::new(PipelineConfig { obs: o, ..Default::default() });
            let mut net = NetSim::new(cfg.clone(), script.clone()).expect("valid net config");
            let mut fr = front();
            let mut dedup_dropped = 0u64;
            let mut sink = |fr: &mut ShardedEngine, p: &mut Pipeline, d: &Delivery| {
                let fresh = fr
                    .ingest_sequenced("tenant-a", &d.source.to_string(), d.seq, &d.records)
                    .expect("seam ingest");
                if fresh {
                    p.ingest(&d.records);
                } else {
                    dedup_dropped += d.records.len() as u64;
                }
            };
            for t in 0..TICKS {
                net.offer(&batch(t));
                net.step(|d| sink(&mut fr, &mut pipeline, d));
            }
            net.drain(|d| sink(&mut fr, &mut pipeline, d));
            let late = registry.counter("commgraph_pipeline_late_records_total", "", &[]).get();
            let dropped_late =
                registry.counter("commgraph_pipeline_dropped_late_records_total", "", &[]).get();
            (net.stats().clone(), dedup_dropped, late, dropped_late, digest(fr))
        };
        let first = exec();
        let deterministic = exec() == first;
        let (stats, dedup_dropped, late, dropped_late, _) = first;
        println!(
            "faultsim {name:<14} delivered {:>4}  net-dropped {:>3}  agent-lost {:>3}  \
             dedup-dropped {:>3}  late {:>2}  dropped-late {:>2}  deterministic {deterministic}",
            stats.delivered_records,
            stats.dropped_records,
            stats.lost_at_agent_records,
            dedup_dropped,
            late,
            dropped_late,
        );
        json!({
            "name": name,
            "offered_records": stats.offered_records,
            "delivered_records": stats.delivered_records,
            "dropped_records": stats.dropped_records,
            "lost_at_agent_records": stats.lost_at_agent_records,
            "duplicated_packets": stats.duplicated_packets,
            "replayed_packets": stats.replayed_packets,
            "reordered_packets": stats.reordered_packets,
            "dedup_dropped_records": dedup_dropped,
            "late_records": late,
            "dropped_late_records": dropped_late,
            "deterministic": deterministic,
        })
    };
    let table = vec![
        run_script("clean", NetConfig::clean(), FaultScript::new()),
        run_script(
            "crash_lose",
            NetConfig { flush_every: 2, ..NetConfig::clean() },
            scripts::crash_lose(host(1), 2),
        ),
        run_script(
            "crash_replay",
            NetConfig { flush_every: 2, ..NetConfig::clean() },
            scripts::crash_replay(host(1), 2),
        ),
        run_script(
            "delayed_flush",
            NetConfig::clean(),
            FaultScript::parse("at 3 delay 10.0.0.1 for 3").expect("valid script"),
        ),
        run_script(
            "duplicate",
            NetConfig { duplicate_rate: 1.0, ..NetConfig::clean() },
            FaultScript::new(),
        ),
        run_script(
            "clock_skew",
            NetConfig::clean(),
            FaultScript::parse("at 6 skew 10.0.0.1 -3600").expect("valid script"),
        ),
        run_script(
            "partition",
            NetConfig::clean(),
            FaultScript::parse("at 1 partition 10.0.0.1,10.0.0.2 for 4").expect("valid script"),
        ),
        run_script(
            "lossy_jitter",
            NetConfig {
                latency_ticks: (0, 3),
                drop_rate: 0.2,
                duplicate_rate: 0.2,
                ..NetConfig::default()
            },
            FaultScript::new(),
        ),
    ];

    // Raw fabric throughput: agents + jitter + delivery, no analytics.
    let bench_ticks = 20_000u64;
    let cfg = NetConfig { latency_ticks: (0, 3), ..NetConfig::default() };
    let mut net = NetSim::new(cfg, FaultScript::new()).expect("valid net config");
    let mut delivered = 0u64;
    let t0 = Instant::now();
    for t in 0..bench_ticks {
        net.offer(&batch(t));
        net.step(|d| delivered += d.records.len() as u64);
    }
    net.drain(|d| delivered += d.records.len() as u64);
    let secs = t0.elapsed().as_secs_f64();
    let ticks_per_sec = obs::rate::per_second(net.stats().ticks, secs);
    println!(
        "faultsim fabric               {bench_ticks} ticks, {delivered} records in {:7.2} ms \
         ({ticks_per_sec:>9.0} ticks/s)",
        secs * 1e3,
    );

    json!({
        "clean_bit_identical": clean_bit_identical,
        "ticks": net.stats().ticks,
        "ticks_per_sec": ticks_per_sec,
        "scripts": table,
    })
}

fn main() {
    let n: usize = arg("n", "500").parse().unwrap_or(500);
    let workers: usize = arg("workers", "4").parse().unwrap_or(4);
    let reps = arg_u64("reps", 3);
    let scale = arg_f64("scale", 0.3);
    let minutes = arg_u64("minutes", 30);
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let serial = Parallelism::serial();
    let parallel = Parallelism::new(workers);

    let mut report = serde_json::Map::new();
    let mut add = |name: &str, dim: usize, serial_ms: f64, parallel_ms: f64| {
        let speedup = serial_ms / parallel_ms;
        println!("{name:<28} n={dim:<5} serial {serial_ms:9.2} ms  parallel {parallel_ms:9.2} ms  speedup {speedup:5.2}x");
        report.insert(
            name.to_string(),
            json!({"n": dim, "serial_ms": serial_ms, "parallel_ms": parallel_ms, "speedup": speedup}),
        );
    };

    let sets = fixture_sets(n);
    add(
        "jaccard_matrix_of_sets",
        n,
        time_ms(reps, || jaccard_matrix_of_sets_with(&sets, serial)),
        time_ms(reps, || jaccard_matrix_of_sets_with(&sets, parallel)),
    );

    let mh = MinHasher::new(128, 7);
    add(
        "minhash_similarity",
        n,
        time_ms(reps, || mh.similarity_matrix_of_sets_with(&sets, serial)),
        time_ms(reps, || mh.similarity_matrix_of_sets_with(&sets, parallel)),
    );

    // SimRank is O(n³) per iteration — a smaller graph keeps the run short.
    let sr_n = (n / 3).max(16);
    let edges: Vec<(u32, u32, f64)> = (0..sr_n as u32)
        .flat_map(|u| (1..4u32).map(move |k| (u, (u + k * 7) % sr_n as u32, 1.0 + (u % 5) as f64)))
        .filter(|&(u, v, _)| u != v)
        .collect();
    let g = WeightedGraph::from_edges(sr_n, &edges);
    let cfg = SimRankConfig::default();
    add(
        "simrank",
        sr_n,
        time_ms(reps, || simrank_with(&g, cfg, serial)),
        time_ms(reps, || simrank_with(&g, cfg, parallel)),
    );

    // Louvain clusters a larger graph than SimRank scores — the sweep is
    // near-linear in edges — so scale the fixture up for a stable timing.
    let cg = fixture_community_graph(n * 4);
    let cg_n = cg.node_count();
    add(
        "louvain",
        cg_n,
        time_ms(reps, || louvain_with(&cg, 1.0, serial)),
        time_ms(reps, || louvain_with(&cg, 1.0, parallel)),
    );
    let hier = HierarchicalConfig::default();
    add(
        "hierarchical_louvain",
        cg_n,
        time_ms(reps, || hierarchical_louvain_with(&cg, hier, serial)),
        time_ms(reps, || hierarchical_louvain_with(&cg, hier, parallel)),
    );

    let m = fixture_symmetric(n);
    add(
        "eigen_symmetric",
        n,
        time_ms(reps, || eigen_symmetric_with(&m, 1e-8, serial).expect("symmetric")),
        time_ms(reps, || eigen_symmetric_with(&m, 1e-8, parallel).expect("symmetric")),
    );

    // PCA at a smaller dimension: the sweep re-runs the eigensolve.
    let pca_n = (n / 2).max(32);
    let mp = fixture_symmetric(pca_n);
    let ks = [1, 4, 16, 64];
    add(
        "pca_sweep",
        pca_n,
        time_ms(reps, || pca_sweep_with(&mp, &ks, serial).expect("square")),
        time_ms(reps, || pca_sweep_with(&mp, &ks, parallel).expect("square")),
    );

    let incremental = incremental_report();
    let faultsim = faultsim_report();
    let (pipeline, trace_json) = stage_report(workers, scale, minutes);

    let out = json!({
        "cores": cores,
        "workers": workers,
        "reps": reps,
        "kernels": serde_json::Value::Object(report),
        "incremental": incremental,
        "faultsim": faultsim,
        "pipeline_run": pipeline,
    });
    let path = "BENCH_PR10.json";
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serializable"))
        .expect("write report");
    let trace_path = "TRACE_PR10.json";
    std::fs::write(trace_path, trace_json).expect("write trace");
    println!(
        "\nwrote {path} and {trace_path} (host has {cores} core(s); speedups need \
         multi-core hardware; open {trace_path} in Perfetto)"
    );
}
