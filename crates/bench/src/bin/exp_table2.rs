//! Experiment T2 — Table 2: the connection-summary schema, demonstrated.
//!
//! Table 2 is a schema, not a measurement, so this binary *exhibits* it:
//! prints the column layout, renders one real simulated record in all four
//! wire formats the repository speaks (struct debug, flow-log text line,
//! framed binary, NSG-style v2 flow tuple), and reports their per-record
//! costs — the byte sizes that feed the COGS model.

use benchkit::{simulate, write_artifact};
use cloudsim::ClusterPreset;
use flowlog::codec::{self, BINARY_RECORD_SIZE};
use flowlog::nsg;
use serde_json::json;

fn main() {
    let run = simulate(ClusterPreset::MicroserviceBench, 0.25, 2);
    let rec = run.records[run.records.len() / 2];

    println!("\nTable 2 — schema of connection summaries");
    println!("  | Time | Local IP | Local Port | Remote IP | Remote Port |");
    println!("  | #Pkts Sent | #Pkts Rcvd | #Bytes Sent | #Bytes Rcvd |");
    println!("  (+ protocol, carried by real NSG/VPC flow logs and kept as an extension)");

    println!("\none simulated record, four encodings:");
    println!("  struct      {rec:?}");
    println!("  text line   {}", codec::encode_line(&rec));
    println!("  nsg tuple   {}", nsg::to_flow_tuple(&rec));
    let bin = codec::encode_binary(&[rec]);
    println!("  binary      {} bytes/record (frame header amortized)", BINARY_RECORD_SIZE);

    let text_len = codec::encode_line(&rec).len();
    let nsg_len = nsg::to_flow_tuple(&rec).len();
    println!("\nper-record wire cost:");
    println!("  binary {BINARY_RECORD_SIZE} B | text {text_len} B | nsg tuple {nsg_len} B");

    // Round-trip proof across all codecs.
    assert_eq!(codec::decode_line(&codec::encode_line(&rec)).expect("text"), rec);
    assert_eq!(codec::decode_binary(bin).expect("binary")[0], rec);
    assert_eq!(nsg::from_flow_tuple(&nsg::to_flow_tuple(&rec)).expect("nsg"), rec);
    println!("  all three codecs round-trip the record exactly ✓");

    write_artifact(
        "table2",
        "table2.json",
        &serde_json::to_string_pretty(&json!({
            "columns": [
                "ts", "local_ip", "local_port", "remote_ip", "remote_port",
                "pkts_sent", "pkts_rcvd", "bytes_sent", "bytes_rcvd", "proto",
            ],
            "binary_bytes_per_record": BINARY_RECORD_SIZE,
            "text_bytes_example": text_len,
            "nsg_tuple_bytes_example": nsg_len,
        }))
        .expect("serializable"),
    );
    eprintln!("[table2] artifact: target/experiments/table2/table2.json");
}
