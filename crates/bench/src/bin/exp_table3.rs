//! Experiment T3 — regenerate Table 3: provider telemetry characteristics.
//!
//! Exercises the three provider presets (Azure NSG / AWS VPC / GCP VPC flow
//! logs) against one identical traffic hour and reports: aggregation
//! interval, sampling, records emitted, telemetry volume, collection cost,
//! and the upscaling-estimate error sampling introduces.

use benchkit::{arg_f64, arg_u64, fmt_count, simulate, write_artifact};
use cloudsim::ClusterPreset;
use flowlog::codec::BINARY_RECORD_SIZE;
use flowlog::provider::ProviderPreset;
use flowlog::sampling::Sampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    let scale = arg_f64("scale", 0.5);
    let minutes = arg_u64("minutes", 30);
    eprintln!("[table3] simulating K8s PaaS at scale {scale} for {minutes} min …");
    let run = simulate(ClusterPreset::K8sPaas, scale, minutes);
    let true_bytes: u64 = run.records.iter().map(|r| r.bytes_total()).sum();

    println!("\nTable 3 — connection summaries at three large cloud providers");
    println!(
        "{:<8} {:<16} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "Cloud", "Product", "Agg intvl", "Sampling", "Records", "Volume", "$/hour", "Est err"
    );
    let mut artifacts = Vec::new();
    for preset in [ProviderPreset::azure(), ProviderPreset::aws(), ProviderPreset::gcp()] {
        preset.validate().expect("static presets are valid");
        let sampler = Sampler::new(preset.sampling, 0xA11CE).expect("preset sampling is valid");
        let mut rng = StdRng::seed_from_u64(7);
        // Sample the stream as the provider would, then upscale as the
        // analytics tier would.
        let mut kept = 0u64;
        let mut est_bytes = 0f64;
        for r in &run.records {
            if let Some(s) = sampler.sample(r, &mut rng) {
                kept += 1;
                est_bytes += sampler.upscale(&s).bytes_total() as f64;
            }
        }
        // GCP also emits on a faster cadence: records scale by interval.
        let cadence_factor = 60.0 / preset.agg_interval_secs as f64;
        let emitted = kept as f64 * cadence_factor.max(1.0);
        let volume_bytes = emitted * BINARY_RECORD_SIZE as f64;
        let hours = minutes as f64 / 60.0;
        let cost_per_hour = preset.collection_cost_usd(volume_bytes as u64) / hours;
        let est_err = (est_bytes - true_bytes as f64).abs() / true_bytes as f64;
        let sampling_str = if preset.sampling.is_complete() {
            "none".to_string()
        } else {
            format!(
                "{:.0}%F/{:.0}%P",
                preset.sampling.flow_rate * 100.0,
                preset.sampling.packet_rate * 100.0
            )
        };
        println!(
            "{:<8} {:<16} {:>9}s {:>12} {:>12} {:>12} {:>12} {:>9.2}%",
            format!("{:?}", preset.cloud),
            preset.cloud.product_name(),
            preset.agg_interval_secs,
            sampling_str,
            fmt_count(emitted),
            format!("{:.1} MB", volume_bytes / 1e6),
            format!("${:.4}", cost_per_hour),
            est_err * 100.0,
        );
        artifacts.push(json!({
            "cloud": format!("{:?}", preset.cloud),
            "product": preset.cloud.product_name(),
            "agg_interval_secs": preset.agg_interval_secs,
            "flow_rate": preset.sampling.flow_rate,
            "packet_rate": preset.sampling.packet_rate,
            "records_emitted": emitted,
            "volume_bytes": volume_bytes,
            "collection_usd_per_hour": cost_per_hour,
            "upscale_estimate_rel_error": est_err,
            "price_per_gb": preset.price_per_gb_usd,
        }));
    }
    println!("\npaper: Azure/AWS 1 min unsampled; GCP 5 s+, 3% of packets, 50% of flows; ~$0.5/GB");

    let path = write_artifact(
        "table3",
        "table3.json",
        &serde_json::to_string_pretty(&artifacts).expect("serializable"),
    );
    eprintln!("[table3] artifact: {}", path.display());
}
