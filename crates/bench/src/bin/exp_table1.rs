//! Experiment T1 — regenerate Table 1: cluster scale and graph sizes.
//!
//! For each of the four reference clusters, simulate one hour of telemetry
//! and report: monitored IPs, IP-graph size after the paper's 0.1% heavy-
//! hitter collapse, IP-port-graph size (exact when small, HyperLogLog-
//! estimated when materializing would need gigabytes), and records/minute.
//!
//! Usage: `exp_table1 [--scale S] [--minutes M] [--skip-kquery true]`
//! Full scale + 60 minutes reproduces the paper's setting; the KQuery row
//! streams ~2M records/min, so give it a few minutes of wall clock.

use benchkit::{arg, arg_f64, arg_u64, fmt_count, simulate_streaming, write_artifact};
use cloudsim::ClusterPreset;
use commgraph_graph::cardinality::GraphCardinality;
use commgraph_graph::collapse::{NicLocalSurvivors, PAPER_THRESHOLD};
use commgraph_graph::{Facet, GraphBuilder};
use serde_json::json;

struct Row {
    cluster: &'static str,
    monitored: usize,
    ip_nodes: usize,
    ip_edges: usize,
    ipport_nodes: f64,
    ipport_edges: f64,
    ipport_exact: bool,
    records_per_min: f64,
}

fn main() {
    let scale = arg_f64("scale", 1.0);
    let minutes = arg_u64("minutes", 60);
    let skip_kquery = arg("skip-kquery", "false") == "true";

    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for preset in ClusterPreset::all() {
        if preset == ClusterPreset::KQuery && skip_kquery {
            continue;
        }
        eprintln!("[table1] simulating {} at scale {scale} for {minutes} min …", preset.name());
        // Stream the records: KQuery at full scale is ~140M records/hour.
        let mut ip_builder = GraphBuilder::new(Facet::Ip, 0, minutes * 60);
        let mut ipport_exact: Option<GraphBuilder> = if preset_is_small(preset) {
            Some(GraphBuilder::new(Facet::IpPort, 0, minutes * 60))
        } else {
            None
        };
        let mut ipport_hll = GraphCardinality::new(Facet::IpPort);
        // The 0.1% heavy-hitter rule, applied per reporting NIC at the
        // telemetry's one-minute cadence (see DESIGN.md): a remote IP is
        // kept if it reached the threshold share of any single VM's minute
        // of bytes, packets, or connections.
        let mut survivors = NicLocalSurvivors::new(Facet::Ip, PAPER_THRESHOLD);
        let mut records = 0u64;
        let (truth, monitored) = simulate_streaming(preset, scale, minutes, |_, batch| {
            records += batch.len() as u64;
            survivors.add_interval(batch);
            for r in batch {
                ip_builder.add(r);
                ipport_hll.add(r);
                if let Some(b) = ipport_exact.as_mut() {
                    b.add(r);
                }
            }
        });
        let _ = truth;

        // Note: the builder here deliberately skips vantage dedup — Table 1
        // counts collected records and graph extents as the provider sees
        // them; dedup only affects traffic *counters*, not node/edge sets.
        // Monitored resources are always kept: the provider knows the
        // subscription inventory and never folds its own VMs into OTHER.
        let raw_ip = ip_builder.finish();
        let collapsed = commgraph_graph::collapse::collapse(&raw_ip, 1.0, |n| {
            survivors.is_survivor(n) || n.ip().map(|ip| monitored.contains(&ip)).unwrap_or(false)
        });
        let (ipn, ipe, exact) = match ipport_exact {
            Some(b) => {
                let g = b.finish();
                (g.node_count() as f64, g.edge_count() as f64, true)
            }
            None => (ipport_hll.node_estimate(), ipport_hll.edge_estimate(), false),
        };
        rows.push(Row {
            cluster: preset.name(),
            monitored: monitored.len(),
            ip_nodes: collapsed.node_count(),
            ip_edges: collapsed.edge_count(),
            ipport_nodes: ipn,
            ipport_edges: ipe,
            ipport_exact: exact,
            records_per_min: records as f64 / minutes as f64,
        });
        artifacts.push(json!({
            "cluster": preset.name(),
            "scale": scale,
            "minutes": minutes,
            "monitored_ips": monitored.len(),
            "paper_monitored_ips": preset.paper_monitored_ips(),
            "ip_graph": {"nodes": collapsed.node_count(), "edges": collapsed.edge_count(),
                          "nodes_uncollapsed": raw_ip.node_count(),
                          "edges_uncollapsed": raw_ip.edge_count()},
            "ipport_graph": {"nodes": ipn, "edges": ipe, "exact": exact},
            "records_per_min": records as f64 / minutes as f64,
            "paper_records_per_min": preset.paper_records_per_min(),
        }));
    }

    println!("\nTable 1 — cluster scale and communication-graph sizes");
    println!(
        "{:<16} {:>10} {:>22} {:>24} {:>14}",
        "Cluster", "#IPs mon.", "IP graph nodes(edges)", "IP-port nodes(edges)", "#Records/min"
    );
    for r in &rows {
        let tilde = if r.ipport_exact { "" } else { "~" };
        println!(
            "{:<16} {:>10} {:>22} {:>24} {:>14}",
            r.cluster,
            r.monitored,
            format!("{} ({})", fmt_count(r.ip_nodes as f64), fmt_count(r.ip_edges as f64)),
            format!("{tilde}{} ({tilde}{})", fmt_count(r.ipport_nodes), fmt_count(r.ipport_edges)),
            fmt_count(r.records_per_min),
        );
    }
    println!("\npaper: Portal 4 / 4K(5K) / 13K(13K) / 332 ; uSvc 16 / 33(268) / 0.2M(1M) / 48K");
    println!(
        "       K8s 390 / 541(12K) / 1.3M(3M) / 68K ; KQuery 1400 / 6K(1.3M) / 12M(79M) / 2.3M"
    );

    let path = write_artifact(
        "table1",
        "table1.json",
        &serde_json::to_string_pretty(&artifacts).expect("serializable"),
    );
    eprintln!("[table1] artifact: {}", path.display());
}

fn preset_is_small(p: ClusterPreset) -> bool {
    matches!(p, ClusterPreset::Portal | ClusterPreset::MicroserviceBench)
}
