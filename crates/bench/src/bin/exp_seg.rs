//! Experiment E-SEG — the micro-segmentation security story of §2.1.
//!
//! Four sub-experiments on simulated clusters:
//!
//! 1. **Blast radius** (K8s PaaS): learn µsegments + default-deny policies
//!    from a clean hour; measure reachable resources per breached VM,
//!    before vs after segmentation.
//! 2. **Rule explosion** (K8s PaaS): compile the policies to per-VM rules —
//!    naive per-IP unrolling vs tag-based enforcement, against the paper's
//!    10³-rules-per-VM limit.
//! 3. **Attack detection** (µserviceBench): learn policies from a clean
//!    window, then replay the attack-injected window; report how many
//!    attack flows the reachability policies flag.
//! 4. **Higher-order policies** (K8s PaaS): a fleet-wide rollout plus a
//!    flash crowd versus a single-VM compromise — similarity and
//!    proportionality policies must suppress the benign changes and keep
//!    the malicious one.

use benchkit::{arg_f64, arg_u64, simulate, write_artifact};
use cloudsim::load::{LoadSchedule, LoadShape};
use cloudsim::{ClusterPreset, Simulator};
use commgraph::workbench::Workbench;
use segment::churn_cost::churn_cost_report;
use segment::compile::{compile, PAPER_VM_RULE_LIMIT};
use segment::drift::reconcile;
use segment::higher_order::{proportionality_assess, similarity_assess};
use serde_json::json;

fn main() {
    let scale = arg_f64("scale", 1.0);
    let minutes = arg_u64("minutes", 60);
    let mut report = serde_json::Map::new();

    // ---- 1 & 2: blast radius + rule explosion on K8s PaaS ----------------
    eprintln!("[seg] simulating K8s PaaS at scale {scale} for {minutes} min …");
    let run = simulate(ClusterPreset::K8sPaas, scale, minutes);
    let mut wb = Workbench::new(run.records.clone(), run.monitored.clone());
    let n_roles = wb.roles().n_roles;
    let blast = wb.blast_report();
    println!("\nE-SEG/1 — blast radius on K8s PaaS ({} internal resources)", blast.resources);
    println!("  inferred roles:                {n_roles}");
    println!("  unsegmented reach per breach:  {} resources (everything)", blast.resources - 1);
    println!("  segmented direct reach (mean): {:.1} resources", blast.mean_direct);
    println!("  segmented direct reach (max):  {} resources", blast.max_direct);
    println!(
        "  mean blast-radius reduction:   {:.1}x",
        (blast.resources as f64 - 1.0) / blast.mean_direct.max(1.0)
    );
    println!("  transitive (multi-hop) reach:  {:.1} resources", blast.mean_transitive);
    report.insert("blast".into(), serde_json::to_value(&blast).expect("serializable"));

    let seg = wb.segmentation().clone();
    let policy = wb.policy().clone();
    let comp = compile(&seg, &policy, PAPER_VM_RULE_LIMIT);
    println!(
        "\nE-SEG/2 — rule compilation ({} segments, {} allow rules)",
        seg.len(),
        policy.rule_count()
    );
    println!(
        "  per-IP unrolling:  max {} rules/VM, {} of {} VMs over the {} limit",
        comp.max_ip_rules,
        comp.vms_over_limit_ip,
        comp.per_vm.len(),
        comp.vm_rule_limit
    );
    println!(
        "  tag-based rules:   max {} rules/VM, {} VMs over the limit",
        comp.max_tag_rules, comp.vms_over_limit_tag
    );
    println!(
        "  fleet total:       {} ip rules vs {} tag rules ({:.0}x reduction)",
        comp.total_ip_rules,
        comp.total_tag_rules,
        comp.total_ip_rules as f64 / comp.total_tag_rules.max(1) as f64
    );
    report.insert(
        "rules".into(),
        json!({
            "segments": seg.len(),
            "allow_rules": policy.rule_count(),
            "max_ip_rules": comp.max_ip_rules,
            "max_tag_rules": comp.max_tag_rules,
            "vms_over_limit_ip": comp.vms_over_limit_ip,
            "vms_over_limit_tag": comp.vms_over_limit_tag,
            "total_ip_rules": comp.total_ip_rules,
            "total_tag_rules": comp.total_tag_rules,
        }),
    );

    // ---- 2b: churn cost — why tags (paper: "tags may also help reduce
    // churn and lag when µsegment labels change") ---------------------------
    let churn = churn_cost_report(&seg, &policy);
    println!("\nE-SEG/2b — rule updates per ±1-replica churn event");
    println!(
        "  per-IP enforcement: mean {:.0} rule updates, worst case {}",
        churn.mean_ip_rule_updates, churn.max_ip_rule_updates
    );
    println!(
        "  tag enforcement:    mean {:.1} updates (only the churned VM)",
        churn.mean_tag_updates
    );
    println!("  churn amplification removed by tags: {:.0}x", churn.amplification);
    report.insert(
        "churn".into(),
        json!({
            "mean_ip_rule_updates": churn.mean_ip_rule_updates,
            "max_ip_rule_updates": churn.max_ip_rule_updates,
            "mean_tag_updates": churn.mean_tag_updates,
            "amplification": churn.amplification,
        }),
    );

    // ---- 3: attack detection on µserviceBench ----------------------------
    eprintln!("[seg] µserviceBench attack replay …");
    let preset = ClusterPreset::MicroserviceBench;
    let topo = preset.topology_scaled(scale);
    // Clean learning window: config without attacks.
    let clean_cfg = preset.default_sim_config();
    let mut clean_sim = Simulator::new(topo.clone(), clean_cfg).expect("preset valid");
    let clean = clean_sim.collect(minutes);
    let monitored = benchkit::monitored_of(clean_sim.ground_truth());
    let mut learn_wb = Workbench::new(clean, monitored);
    learn_wb.policy();

    // Attack window: the paper's breach-and-attack suite.
    let attack_cfg = preset.paper_sim_config(&topo);
    let mut attack_sim = Simulator::new(topo, attack_cfg).expect("preset valid");
    let attacked = attack_sim.collect(minutes);
    let truth = attack_sim.ground_truth().clone();
    let violations = learn_wb.detect(&attacked);

    let attack_records: Vec<_> = attacked.iter().filter(|r| truth.is_attack(&r.key)).collect();
    let flagged_attacks = violations
        .iter()
        .filter(|v| {
            truth.is_attack(
                &flowlog::record::FlowKey::tcp(v.local_ip, 0, v.remote_ip, v.port).canonical(),
            ) || truth.attack_flows.keys().any(|k| {
                k.local_ip == v.local_ip && k.remote_ip == v.remote_ip
                    || k.local_ip == v.remote_ip && k.remote_ip == v.local_ip
            })
        })
        .count();
    let false_alarms = violations.len() - flagged_attacks.min(violations.len());
    let benign_records = attacked.len() - attack_records.len();
    println!("\nE-SEG/3 — attack detection on µserviceBench (policies learned on a clean hour)");
    println!("  attack records in window:   {}", attack_records.len());
    println!("  policy violations raised:   {}", violations.len());
    println!(
        "  detection rate:             {:.1}% of attack records flagged",
        100.0 * flagged_attacks.min(attack_records.len()) as f64
            / attack_records.len().max(1) as f64
    );
    println!(
        "  false-positive rate:        {:.3}% of benign records",
        100.0 * false_alarms as f64 / benign_records.max(1) as f64
    );
    report.insert(
        "detection".into(),
        json!({
            "attack_records": attack_records.len(),
            "violations": violations.len(),
            "attack_records_flagged": flagged_attacks,
            "benign_records": benign_records,
            "false_alarms": false_alarms,
        }),
    );

    // ---- 4: higher-order policies -----------------------------------------
    eprintln!("[seg] higher-order policy scenarios …");
    let preset = ClusterPreset::K8sPaas;
    let hscale = (scale * 0.5).max(0.05);
    let topo = preset.topology_scaled(hscale);
    let baseline_cfg = preset.default_sim_config();
    let mut base_sim = Simulator::new(topo.clone(), baseline_cfg.clone()).expect("valid");
    let baseline = base_sim.collect(30);
    let monitored = benchkit::monitored_of(base_sim.ground_truth());
    let mut hwb = Workbench::new(baseline.clone(), monitored);
    let seg = hwb.segmentation().clone();

    // Scenario A: a rollout — every tenant0-web VM starts calling the
    // registry (new behavior, fleet-wide). Injected synthetically by
    // rewriting a copy of the baseline window.
    let registry_role = topo.role_named("registry").expect("role").id;
    let n_registry = topo.role(registry_role).expect("role").replicas;
    let web_role = topo.role_named("tenant0-web").expect("role").id;
    let web_ips: Vec<_> = (0..topo.role(web_role).expect("role").replicas)
        .map(|s| topo.ip_of(web_role, s).expect("ip"))
        .collect();
    // A rollout hits every VM running the code — i.e. every member of the
    // *segment* the web VMs belong to (the inferred role may group more
    // replicas than one topology role; they all get the new build).
    let web_segment = seg.segment_of(web_ips[0]).expect("web VM is segmented");
    let rollout_members: Vec<_> = seg.segment(web_segment).members.clone();
    let mut rollout = baseline.clone();
    for (i, &web) in rollout_members.iter().enumerate() {
        // The rollout's new calls load-balance across registry replicas.
        let registry_ip = topo.ip_of(registry_role, i % n_registry).expect("ip");
        rollout.push(flowlog::record::ConnSummary {
            ts: 0,
            key: flowlog::record::FlowKey::tcp(web, 45_000 + i as u16, registry_ip, 5000),
            pkts_sent: 10,
            pkts_rcvd: 10,
            bytes_sent: 9_000,
            bytes_rcvd: 40_000,
        });
    }
    // Scenario B: a single web VM starts talking SSH to the db tier.
    let db_ip = topo.ip_of(topo.role_named("tenant3-db").expect("role").id, 0).expect("ip");
    let mut lone = baseline.clone();
    lone.push(flowlog::record::ConnSummary {
        ts: 0,
        key: flowlog::record::FlowKey::tcp(web_ips[0], 45_900, db_ip, 22),
        pkts_sent: 50,
        pkts_rcvd: 40,
        bytes_sent: 60_000,
        bytes_rcvd: 8_000,
    });

    let findings_a = similarity_assess(&baseline, &rollout, &seg, 0.8);
    let findings_b = similarity_assess(&baseline, &lone, &seg, 0.8);
    let a_suppressed = findings_a.iter().filter(|f| f.explainable).count();
    let b_alerts = findings_b.iter().filter(|f| !f.explainable).count();
    println!("\nE-SEG/4a — similarity-based policies");
    println!(
        "  rollout (all {} segment members → registry): {} new behaviors, {} marked explainable",
        rollout_members.len(),
        findings_a.len(),
        a_suppressed
    );
    println!(
        "  lone compromise (1 web VM → db:22):  {} new behaviors, {} alerts kept",
        findings_b.len(),
        b_alerts
    );

    // Proportionality: flash crowd (everything x3) vs lone surge.
    let mut crowd_sim = Simulator::new(
        topo.clone(),
        cloudsim::SimConfig {
            load: LoadSchedule::steady().with(LoadShape::Step { at_min: 0, factor: 3.0 }),
            ..baseline_cfg.clone()
        },
    )
    .expect("valid");
    let crowd = crowd_sim.collect(30);
    let crowd_findings = proportionality_assess(&baseline, &crowd, &seg, 3.0);
    let crowd_flagged = crowd_findings.iter().filter(|f| !f.proportional).count();

    // Lone surge: one api VM starts hoarding data from shared storage —
    // a 50x jump on one segment pair while the rest of the cluster is flat.
    // (External exfiltration is caught earlier by the reachability layer as
    // an UnknownPeer violation; proportionality exists for surges on
    // *approved* internal paths.)
    let api_role = topo.role_named("tenant0-api").expect("role").id;
    let api_ip = topo.ip_of(api_role, 0).expect("ip");
    let storage_role = topo.role_named("shared-storage").expect("role").id;
    let n_storage = topo.role(storage_role).expect("role").replicas;
    let mut hoard = baseline.clone();
    for s in 0..n_storage {
        let storage_ip = topo.ip_of(storage_role, s).expect("ip");
        for m in 0..30u64 {
            hoard.push(flowlog::record::ConnSummary {
                ts: m * 60,
                key: flowlog::record::FlowKey::tcp(
                    api_ip,
                    46_000 + (m as u16) * 40 + s as u16,
                    storage_ip,
                    8111,
                ),
                pkts_sent: 200,
                pkts_rcvd: 18_000,
                bytes_sent: 180_000,
                bytes_rcvd: 16_000_000,
            });
        }
    }
    let hoard_findings = proportionality_assess(&baseline, &hoard, &seg, 3.0);
    let hoard_flagged = hoard_findings.iter().filter(|f| !f.proportional).count();
    println!("\nE-SEG/4b — proportionality-based policies");
    println!(
        "  flash crowd (3x everything):     {} of {} segment pairs flagged",
        crowd_flagged,
        crowd_findings.len()
    );
    println!(
        "  data hoarding (one api VM, 50x): {} of {} segment pairs flagged",
        hoard_flagged,
        hoard_findings.len()
    );
    println!("\npaper shape: reachability policies flag the rollout too (false positive);");
    println!("similarity policies suppress it; proportionality separates flash crowds");
    println!("from lone surges.");

    report.insert(
        "higher_order".into(),
        json!({
            "rollout_new_behaviors": findings_a.len(),
            "rollout_explainable": a_suppressed,
            "lone_new_behaviors": findings_b.len(),
            "lone_alerts": b_alerts,
            "flash_crowd_pairs_flagged": crowd_flagged,
            "flash_crowd_pairs_total": crowd_findings.len(),
            "hoard_pairs_flagged": hoard_flagged,
            "hoard_pairs_total": hoard_findings.len(),
        }),
    );

    // ---- 5: segmentation drift across hours ------------------------------
    eprintln!("[seg] segmentation drift under churn …");
    let preset = ClusterPreset::K8sPaas;
    let dscale = (scale * 0.5).max(0.05);
    let topo = preset.topology_scaled(dscale);
    let web = topo.role_named("tenant0-web").expect("role").id;
    let api = topo.role_named("tenant1-api").expect("role").id;
    let mut cfg = preset.default_sim_config();
    cfg.churn = cloudsim::churn::ChurnPlan::none().with(70, web, 6).with(80, api, -4);
    let mut sim = Simulator::new(topo, cfg).expect("valid");
    let monitored = benchkit::monitored_of(sim.ground_truth());
    let hour1 = sim.collect(60);
    let hour2 = sim.collect(60);
    // Ground truth shifts as churn lands; refresh the inventory.
    let monitored2 = benchkit::monitored_of(sim.ground_truth());
    let mut wb1 = Workbench::new(hour1, monitored);
    let mut wb2 = Workbench::new(hour2, monitored2);
    let seg_old = wb1.segmentation().clone();
    let seg_new = wb2.segmentation().clone();
    let drift = reconcile(&seg_old, &seg_new);
    println!("\nE-SEG/5 — segmentation drift across two hours (with mid-run churn)");
    println!(
        "  segments: {} → {}; label stability {:.1}% of common resources",
        seg_old.len(),
        seg_new.len(),
        drift.stability * 100.0
    );
    println!(
        "  moved {} / added {} / retired {} resources",
        drift.moved.len(),
        drift.added.len(),
        drift.retired.len()
    );
    println!(
        "  transition cost: {} per-IP rule updates vs {} tag updates",
        drift.ip_rule_updates, drift.tag_updates
    );
    report.insert(
        "drift".into(),
        json!({
            "segments_before": seg_old.len(),
            "segments_after": seg_new.len(),
            "stability": drift.stability,
            "moved": drift.moved.len(),
            "added": drift.added.len(),
            "retired": drift.retired.len(),
            "ip_rule_updates": drift.ip_rule_updates,
            "tag_updates": drift.tag_updates,
        }),
    );

    write_artifact(
        "seg",
        "seg.json",
        &serde_json::to_string_pretty(&serde_json::Value::Object(report)).expect("serializable"),
    );
    eprintln!("[seg] artifacts in target/experiments/seg/");
}
