//! Experiment E-COGS — §3.2's analytics case study (and Figure 8's tier).
//!
//! Measures, on this machine, what the paper argues economically:
//!
//! 1. **Throughput** — records/second one analytics process sustains while
//!    building hourly communication graphs (the sharded group-by-aggregate
//!    of Figure 8), across worker counts.
//! 2. **Memory** — builder state with and without heavy-hitter collapsing
//!    ("the memory need is proportional to the number of node pairs").
//! 3. **Dollars** — plugging measured throughput into the paper's price
//!    points: analytics VMs per cluster, surcharge per monitored VM-hour,
//!    against the $0.02/hr market target.

use analytics::cogs::CogsModel;
use analytics::engine::{EngineConfig, StreamEngine};
use analytics::memory::{builder_bytes, human_bytes, snapshot_bytes};
use analytics::sketch::SpaceSaving;
use benchkit::{arg_f64, arg_u64, simulate, write_artifact};
use cloudsim::ClusterPreset;
use commgraph_graph::collapse::collapse_default;
use serde_json::json;
use std::time::Instant;

fn main() {
    let scale = arg_f64("scale", 1.0);
    let minutes = arg_u64("minutes", 20);
    eprintln!("[cogs] simulating K8s PaaS at scale {scale} for {minutes} min …");
    let run = simulate(ClusterPreset::K8sPaas, scale, minutes);
    let records = &run.records;
    eprintln!("[cogs] {} records; replaying through the engine …", records.len());

    // 1. Throughput across worker counts (replay the same stream).
    println!("\nE-COGS/1 — graph-construction throughput (records/s, this machine)");
    println!("{:>9} {:>14} {:>12}", "workers", "records/s", "elapsed");
    let mut best_rps = 0f64;
    let mut throughputs = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut engine = StreamEngine::new(EngineConfig {
            workers,
            monitored: Some(run.monitored.clone()),
            ..Default::default()
        })
        .expect("config is valid");
        let t0 = Instant::now();
        for chunk in records.chunks(65_536) {
            engine.ingest(chunk).expect("engine accepts batches");
        }
        let (graphs, stats) = engine.finish().expect("engine drains");
        let elapsed = t0.elapsed().as_secs_f64();
        // Guarded rate: a sub-tick elapsed must report 0, not inf/NaN.
        let rps = obs::rate::per_second(records.len() as u64, elapsed);
        best_rps = best_rps.max(rps);
        println!("{:>9} {:>14.0} {:>11.2}s", workers, rps, elapsed);
        throughputs.push(json!({"workers": workers, "records_per_sec": rps}));
        assert!(!graphs.is_empty());
        let _ = stats;
    }

    // 2. Memory: full graph vs collapsed vs sketch.
    let mut engine = StreamEngine::new(EngineConfig {
        workers: 4,
        monitored: Some(run.monitored.clone()),
        ..Default::default()
    })
    .expect("config is valid");
    engine.ingest(records).expect("engine accepts batches");
    let (graphs, stats) = engine.finish().expect("engine drains");
    let g = &graphs[0];
    let collapsed = collapse_default(g);
    let mut sketch: SpaceSaving<(commgraph_graph::NodeId, commgraph_graph::NodeId)> =
        SpaceSaving::new(4096);
    for r in records.iter() {
        let (a, b) = commgraph_graph::Facet::Ip.endpoints(r);
        let key = if a <= b { (a, b) } else { (b, a) };
        sketch.insert(key, r.bytes_total());
    }
    println!("\nE-COGS/2 — memory proportional to node pairs");
    println!(
        "  full graph:      {} nodes, {} edges ≈ {}",
        g.node_count(),
        g.edge_count(),
        human_bytes(snapshot_bytes(g))
    );
    println!(
        "  collapsed (0.1%): {} nodes, {} edges ≈ {}",
        collapsed.node_count(),
        collapsed.edge_count(),
        human_bytes(snapshot_bytes(&collapsed))
    );
    println!(
        "  builder state:   {} edge entries ≈ {}",
        stats.edge_entries,
        human_bytes(builder_bytes(stats.edge_entries))
    );
    println!(
        "  SpaceSaving top-4096 heavy-edge sketch: {} counters ≈ {}",
        sketch.len(),
        human_bytes(sketch.len() * 96)
    );

    // 3. Dollars at the paper's price points, per cluster.
    // One "analytics VM" = 8 cores; our measurement used up to 8 workers.
    let model = CogsModel::paper_defaults(best_rps);
    println!("\nE-COGS/3 — surcharge at paper price points (analytics VM ≈ this host)");
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>18} {:>8}",
        "Cluster", "records/min", "GB/day", "analytics VMs", "$/VM-hour", "fits?"
    );
    let mut cogs_rows = Vec::new();
    for preset in ClusterPreset::all() {
        let r = model.assess(preset.paper_monitored_ips(), preset.paper_records_per_min());
        println!(
            "{:<16} {:>12} {:>14.2} {:>14} {:>18.5} {:>8}",
            preset.name(),
            benchkit::fmt_count(r.records_per_min),
            r.gb_per_day,
            r.analytics_vms,
            r.surcharge_per_vm_hour_usd,
            if r.within_target { "yes" } else { "NO" }
        );
        cogs_rows.push(serde_json::to_value(&r).expect("serializable"));
    }
    println!("\npaper target: ~1000 VMs of telemetry on a handful of VMs (≈0.5%), market");
    println!("price point $0.02/hr/VM (≈4% of a $0.5/hr VM).");

    write_artifact(
        "cogs",
        "cogs.json",
        &serde_json::to_string_pretty(&json!({
            "throughputs": throughputs,
            "best_records_per_sec": best_rps,
            "full_graph": {"nodes": g.node_count(), "edges": g.edge_count()},
            "collapsed_graph": {"nodes": collapsed.node_count(), "edges": collapsed.edge_count()},
            "builder_edge_entries": stats.edge_entries,
            "clusters": cogs_rows,
        }))
        .expect("serializable"),
    );
    eprintln!("[cogs] artifacts in target/experiments/cogs/");
}
