//! Experiment E-ANOM — §2.2's open question, answered with the tools the
//! paper already has: can the summarization model double as an anomaly
//! detector?
//!
//! Fits the PCA pattern model on one clean hour of K8s PaaS (heavy-hitter
//! collapsed, so ephemeral light edges don't masquerade as anomalies),
//! calibrates the detection threshold on two more clean hours, then scores:
//! a clean holdout hour (control), a flash-crowd hour (benign volume change
//! — must NOT fire), and an hour with lateral movement + exfiltration
//! (structural change — MUST fire).

use benchkit::{arg_f64, arg_u64, write_artifact};
use cloudsim::attack::{AttackKind, AttackScenario};
use cloudsim::load::{LoadSchedule, LoadShape};
use cloudsim::{ClusterPreset, SimConfig, Simulator};
use commgraph::anomaly::PatternModel;
use commgraph::pipeline::{Pipeline, PipelineConfig};
use commgraph_graph::collapse::collapse_default;
use commgraph_graph::{CommGraph, Facet};
use serde_json::json;
use std::collections::HashSet;
use std::net::Ipv4Addr;

fn hourly_graphs(preset: ClusterPreset, scale: f64, cfg: SimConfig, hours: u64) -> Vec<CommGraph> {
    let topo = preset.topology_scaled(scale);
    let mut sim = Simulator::new(topo, cfg).expect("preset valid");
    let monitored: HashSet<Ipv4Addr> =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();
    let mut pipeline = Pipeline::new(PipelineConfig {
        facet: Facet::Ip,
        window_len: 3600,
        monitored: Some(monitored),
        ..Default::default()
    });
    sim.run(hours * 60, |_, batch| pipeline.ingest(batch));
    // Collapse each window: the pattern model should learn the stable heavy
    // structure, not the long tail of ephemeral light edges.
    pipeline
        .finish()
        .expect("ordered windows")
        .sequence
        .graphs()
        .iter()
        .map(collapse_default)
        .collect()
}

fn main() {
    let scale = arg_f64("scale", 0.5);
    let k = arg_u64("k", 25) as usize;
    let preset = ClusterPreset::K8sPaas;
    let base_cfg = preset.default_sim_config();

    eprintln!("[anomaly] simulating 4 clean hours …");
    let clean = hourly_graphs(preset, scale, base_cfg.clone(), 4);
    eprintln!("[anomaly] fitting the pattern model on hour 0 (k = {k}) …");
    let model = PatternModel::fit(&clean[0], k).expect("clean baseline fits");
    let threshold = model.calibrate_threshold(&clean[1..3], 1.5).expect("clean hours are scorable");
    eprintln!("[anomaly] threshold calibrated on hours 1-2: {threshold:.2}");

    eprintln!("[anomaly] simulating a flash-crowd hour …");
    let crowd_cfg = SimConfig {
        load: LoadSchedule::steady().with(LoadShape::Step { at_min: 0, factor: 3.0 }),
        ..base_cfg.clone()
    };
    let crowd = hourly_graphs(preset, scale, crowd_cfg, 1);

    eprintln!("[anomaly] simulating an attack hour …");
    let topo = preset.topology_scaled(scale);
    let breached = topo.ip_of(topo.role_named("tenant0-web").expect("role").id, 0).expect("slot 0");
    let attack_cfg = SimConfig {
        attacks: vec![
            AttackScenario {
                kind: AttackKind::LateralMovement,
                start_min: 5,
                duration_min: 50,
                breached,
                intensity: 8,
            },
            AttackScenario {
                kind: AttackKind::Exfiltration,
                start_min: 15,
                duration_min: 40,
                breached,
                intensity: 60_000_000,
            },
        ],
        ..base_cfg
    };
    let attacked = hourly_graphs(preset, scale, attack_cfg, 1);

    println!("\nE-ANOM — PCA pattern model as an anomaly detector (k = {k})");
    println!("  baseline self-residual (noise floor): {:.4}", model.baseline_residual);
    println!("  threshold (calibrated on 2 clean hours x 1.5 margin): {threshold:.2}");
    println!(
        "\n{:<26} {:>10} {:>8} {:>14} {:>9}",
        "window", "residual", "score", "novel bytes", "verdict"
    );
    let mut rows = Vec::new();
    let mut print_row = |label: &str, g: &CommGraph, expect_anomalous: bool| {
        let s = model.score(g).expect("scorable window");
        let anomalous = s.score > threshold || s.novel_node_frac > 0.05;
        println!(
            "{:<26} {:>10.4} {:>8.2} {:>13.1}% {:>9}",
            label,
            s.residual,
            s.score,
            s.novel_node_frac * 100.0,
            if anomalous { "ANOMALY" } else { "ok" }
        );
        rows.push(json!({
            "window": label,
            "residual": s.residual,
            "score": s.score,
            "novel_node_frac": s.novel_node_frac,
            "anomalous": anomalous,
            "expected_anomalous": expect_anomalous,
        }));
        anomalous == expect_anomalous
    };
    let mut correct = 0;
    correct += print_row("clean holdout (hour +3)", &clean[3], false) as u32;
    correct += print_row("flash crowd (3x load)", &crowd[0], false) as u32;
    correct += print_row("lateral movement + exfil", &attacked[0], true) as u32;
    println!("\n  {correct}/3 windows classified as expected (threshold {threshold:.2})");
    println!("\npaper: 'a model that can capture the key patterns may also be able to");
    println!("identify when the patterns change' — volume changes ride the learned");
    println!("structure; structural attacks land in the orthogonal complement.");

    write_artifact(
        "anomaly",
        "anomaly.json",
        &serde_json::to_string_pretty(&json!({
            "k": k,
            "baseline_residual": model.baseline_residual,
            "threshold": threshold,
            "windows": rows,
        }))
        .expect("serializable"),
    );
    eprintln!("[anomaly] artifacts in target/experiments/anomaly/");
}
