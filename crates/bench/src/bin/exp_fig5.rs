//! Experiment F5 — regenerate Figure 5: the K8s PaaS timelapse.
//!
//! Simulates four consecutive hours of the K8s PaaS cluster (hour 0 is the
//! Figure 4(a) hour; hours +1..+3 are the timelapse) under diurnal load plus
//! mid-run churn, and quantifies what the figure shows visually: most
//! patterns persist hour over hour (high edge-set Jaccard), while bands
//! shrink/grow in intensity (volume changes on persisting edges) and a few
//! appear or vanish (structural deltas).

use benchkit::{arg_f64, arg_u64, write_artifact};
use cloudsim::churn::ChurnPlan;
use cloudsim::roles::RoleId;
use cloudsim::{ClusterPreset, Simulator};
use commgraph::pipeline::{Pipeline, PipelineConfig};
use commgraph_graph::Facet;
use linalg::quantize::{log_normalize, to_csv};
use linalg::Matrix;
use serde_json::json;

fn main() {
    let scale = arg_f64("scale", 1.0);
    let hours = arg_u64("hours", 4);
    let preset = ClusterPreset::K8sPaas;
    let topo = preset.topology_scaled(scale);
    let mut cfg = preset.paper_sim_config(&topo);
    // Mid-run churn: one tenant's web tier scales out in hour 2, another's
    // api tier scales in during hour 3 — the "bands appear/shrink" effects.
    let scaled = |n: usize| ((n as f64 * scale).round() as i32).max(1);
    let role = |name: &str| -> RoleId { topo.role_named(name).expect("preset role exists").id };
    cfg.churn = ChurnPlan::none().with(70, role("tenant0-web"), scaled(8)).with(
        130,
        role("tenant1-api"),
        -scaled(6),
    );
    eprintln!("[fig5] simulating {hours} hours of K8s PaaS at scale {scale} …");
    let mut sim = Simulator::new(topo, cfg).expect("preset is valid");

    let monitored: std::collections::HashSet<std::net::Ipv4Addr> =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();
    let mut pipeline = Pipeline::new(PipelineConfig {
        facet: Facet::Ip,
        window_len: 3600,
        monitored: Some(monitored),
        ..Default::default()
    });
    sim.run(hours * 60, |_, batch| pipeline.ingest(batch));
    let out = pipeline.finish().expect("windows arrive in order");
    let seq = out.sequence;

    println!("\nFigure 5 — hourly timelapse of the K8s PaaS byte matrix");
    println!(
        "{:<8} {:>8} {:>8} {:>14} {:>14} {:>12} {:>12}",
        "hour", "nodes", "edges", "node-jaccard", "edge-jaccard", "new edges", "gone edges"
    );
    let mut rows = Vec::new();
    for (i, g) in seq.graphs().iter().enumerate() {
        let (nj, ej, added, removed) = if i == 0 {
            (1.0, 1.0, 0, 0)
        } else {
            let d = seq.diff_adjacent(i - 1, 2.0).expect("adjacent windows exist");
            (d.node_jaccard, d.edge_jaccard, d.added_edges.len(), d.removed_edges.len())
        };
        println!(
            "{:<8} {:>8} {:>8} {:>14.3} {:>14.3} {:>12} {:>12}",
            format!("+{i}"),
            g.node_count(),
            g.edge_count(),
            nj,
            ej,
            added,
            removed
        );
        // Persist each hour's matrix for plotting, node order fixed to hour 0
        // membership is not enforced; CSVs are per-hour snapshots.
        let raw = Matrix::from_rows(g.byte_matrix(8192).expect("collapsed-scale graphs"));
        write_artifact("fig5", &format!("hour_{i}.csv"), &to_csv(&log_normalize(&raw, 6.0)));
        rows.push(json!({
            "hour": i,
            "nodes": g.node_count(),
            "edges": g.edge_count(),
            "node_jaccard_vs_prev": nj,
            "edge_jaccard_vs_prev": ej,
            "added_edges": added,
            "removed_edges": removed,
        }));
    }
    let p = seq.persistence(2.0);
    println!("\n  mean adjacent edge-jaccard: {:.3}", p.mean_edge_jaccard);
    if let Some(t) = p.most_changed_transition {
        println!("  most-changed transition:    hour +{} → +{}", t, t + 1);
    }
    println!("\npaper shape: 'while there are some changes — some bands shrink or grow in");
    println!("intensity and a few appear only during some hours — many patterns are");
    println!("consistent' ⇒ expect high (but not perfect) hour-over-hour similarity.");

    write_artifact(
        "fig5",
        "fig5.json",
        &serde_json::to_string_pretty(&json!({
            "hours": rows,
            "mean_edge_jaccard": p.mean_edge_jaccard,
            "most_changed_transition": p.most_changed_transition,
        }))
        .expect("serializable"),
    );
    eprintln!("[fig5] artifacts in target/experiments/fig5/");
}
