//! Experiment F6 — regenerate Figure 6: the byte CCDF ("where to invest
//! more capacity?").
//!
//! For K8s PaaS, Portal, and µserviceBench: the CCDF of bytes exchanged
//! versus the fraction of nodes participating, heaviest nodes first. The
//! paper's point: the curve collapses almost immediately — a few nodes
//! account for most of the traffic — so capacity investment (bigger SKUs,
//! proximity placement) should target that head. Also emits the concrete
//! advice the counterfactual module derives from the same data.

use algos::stats::{byte_ccdf, byte_gini, top_share};
use benchkit::{arg_f64, arg_u64, collapsed_ip_graph, simulate, write_artifact};
use cloudsim::ClusterPreset;
use commgraph::counterfactual::{capacity_plan, flow_sizes, proximity_plan_filtered};
use serde_json::json;

fn main() {
    let scale = arg_f64("scale", 1.0);
    let minutes = arg_u64("minutes", 60);
    println!("\nFigure 6 — CCDF of bytes vs fraction of participating nodes");
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "Cluster", "nodes", "top1% share", "top5% share", "top10% share", "gini"
    );
    let mut artifacts = Vec::new();
    for preset in [ClusterPreset::K8sPaas, ClusterPreset::Portal, ClusterPreset::MicroserviceBench]
    {
        eprintln!("[fig6] simulating {} at scale {scale} for {minutes} min …", preset.name());
        let run = simulate(preset, scale, minutes);
        let g = collapsed_ip_graph(&run);
        let ccdf = byte_ccdf(&g);
        let (t1, t5, t10) = (top_share(&g, 0.01), top_share(&g, 0.05), top_share(&g, 0.10));
        let gini = byte_gini(&g);
        println!(
            "{:<16} {:>8} {:>11.1}% {:>11.1}% {:>11.1}% {:>8.3}",
            preset.name(),
            g.node_count(),
            t1 * 100.0,
            t5 * 100.0,
            t10 * 100.0,
            gini
        );

        let slug = preset.name().to_lowercase().replace(' ', "_");
        let csv: String = std::iter::once("frac_nodes,ccdf".to_string())
            .chain(ccdf.iter().map(|p| format!("{:.6},{:.6e}", p.frac_nodes, p.ccdf)))
            .collect::<Vec<_>>()
            .join("\n");
        write_artifact("fig6", &format!("{slug}_ccdf.csv"), &csv);

        // The §2.3 advisors on the same hour.
        let cap = capacity_plan(&g, 0.02);
        let prox = proximity_plan_filtered(&g, 5, |n| {
            n.ip().map(|ip| run.monitored.contains(&ip)).unwrap_or(false)
        });
        let sizes = flow_sizes(&run.records);
        artifacts.push(json!({
            "cluster": preset.name(),
            "nodes": g.node_count(),
            "top_1pct_share": t1,
            "top_5pct_share": t5,
            "top_10pct_share": t10,
            "gini": gini,
            "capacity_advice": cap,
            "proximity_advice": prox,
            "flow_size_quantiles": sizes.quantiles,
        }));
    }
    println!("\npaper shape: steep CCDF drop — a few nodes account for most of the traffic;");
    println!("the curves let an admin decide where to change VM SKUs or co-locate peers.");

    write_artifact(
        "fig6",
        "fig6.json",
        &serde_json::to_string_pretty(&artifacts).expect("serializable"),
    );
    eprintln!("[fig6] artifacts in target/experiments/fig6/");
}
