//! Experiment E-PCA — §2.2's succinct-summaries result.
//!
//! "In the K8s PaaS dataset, using just k = 25 eigen vectors (n > 500 in
//! this case) leads to a less than 0.05 error" — and footnote 6: "similar
//! results hold when using independent components (FastICA) instead."
//!
//! Sweeps the PCA reconstruction error over k on the hourly K8s PaaS byte
//! matrix, reports the smallest k reaching 5% error, cross-checks with
//! FastICA, and contrasts with a randomly rewired matrix of the same byte
//! mass (which is NOT low-rank — showing the structure is real, not an
//! artifact of sparsity).

use benchkit::{arg_f64, arg_u64, collapsed_ip_graph, simulate, write_artifact};
use cloudsim::ClusterPreset;
use linalg::ica::fast_ica;
use linalg::pca::{pca_sweep, recon_err};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde_json::json;

fn main() {
    let scale = arg_f64("scale", 1.0);
    let minutes = arg_u64("minutes", 60);
    eprintln!("[pca] simulating K8s PaaS at scale {scale} for {minutes} min …");
    let run = simulate(ClusterPreset::K8sPaas, scale, minutes);
    let g = collapsed_ip_graph(&run);
    let n = g.node_count();
    let m = Matrix::from_rows(g.byte_matrix(8192).expect("collapsed graph is dense-able"));
    eprintln!("[pca] decomposing the {n} x {n} byte matrix …");

    let ks: Vec<usize> = vec![1, 2, 5, 10, 15, 20, 25, 30, 40, 50, 75, 100, 150, 200];
    let sweep = pca_sweep(&m, &ks).expect("symmetric byte matrix decomposes");

    println!("\nE-PCA — low-rank reconstruction of the K8s PaaS byte matrix (n = {n})");
    println!("{:>6} {:>12}", "k", "ReconErr");
    for e in &sweep.errors {
        let marker = if e.k == 25 { "  ← paper's k" } else { "" };
        println!("{:>6} {:>12.4}{}", e.k, e.err, marker);
    }
    match sweep.k_for_5_percent {
        Some(k) => println!("\n  smallest k with error < 0.05: {k}"),
        None => println!("\n  error never reaches 0.05"),
    }
    let err25 = sweep.errors.iter().find(|e| e.k == 25).map(|e| e.err);
    if let Some(err) = err25 {
        println!(
            "  paper: k = 25 of n > 500 gives error < 0.05 — measured {err:.4} ({})",
            if err < 0.05 { "REPRODUCED" } else { "NOT reproduced" }
        );
    }

    // FastICA cross-check (footnote 6) at the paper's k.
    eprintln!("[pca] FastICA cross-check …");
    let ica_err = fast_ica(&m, 25.min(n), 200)
        .and_then(|d| d.reconstruct())
        .and_then(|r| recon_err(&m, &r))
        .expect("ICA on the byte matrix");
    println!("  FastICA, 25 components: error {ica_err:.4} (footnote 6: 'similar results')");

    // Null model: same total mass sprayed over random node pairs.
    eprintln!("[pca] random null model …");
    let total_bytes = m.abs_sum() / 2.0;
    let mut rng = StdRng::seed_from_u64(42);
    let mut null = Matrix::zeros(n, n);
    let edges = g.edge_count();
    for _ in 0..edges {
        let (i, j) = (rng.random_range(0..n), rng.random_range(0..n));
        if i == j {
            continue;
        }
        let w = total_bytes / edges as f64;
        null[(i, j)] += w;
        null[(j, i)] += w;
    }
    let null_sweep = pca_sweep(&null, &[25]).expect("null matrix decomposes");
    println!(
        "  random null model at k = 25: error {:.4} — structure, not sparsity, is low-rank",
        null_sweep.errors[0].err
    );

    write_artifact(
        "pca",
        "pca.json",
        &serde_json::to_string_pretty(&json!({
            "n": n,
            "errors": sweep.errors,
            "k_for_5_percent": sweep.k_for_5_percent,
            "err_at_25": err25,
            "fastica_err_at_25": ica_err,
            "null_model_err_at_25": null_sweep.errors[0].err,
        }))
        .expect("serializable"),
    );
    eprintln!("[pca] artifacts in target/experiments/pca/");
}
