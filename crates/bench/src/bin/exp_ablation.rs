//! Experiment E-ABL — ablations for the design choices DESIGN.md calls out.
//!
//! 1. **IP vs IP-port facets for multi-service VMs** (§2.1 concern #2:
//!    "Resources may have multiple roles … segmenting IP-port graphs may be
//!    more useful"). A hand-built deployment where six VMs each host a web
//!    service *and* a cache service with disjoint peer sets: the IP facet
//!    is structurally unable to separate the two roles; the IP-port facet
//!    recovers them exactly.
//! 2. **Hierarchical vs flat Louvain** (the Figure 1 caption's word
//!    "hierarchical", quantified on K8s PaaS).
//! 3. **Direction-qualified vs plain Jaccard tokens** (the "nature of the
//!    conversation" signal of §2.1, quantified on K8s PaaS).

use algos::jaccard::{jaccard_matrix, jaccard_matrix_of_sets};
use algos::louvain::{hierarchical_louvain, louvain, HierarchicalConfig};
use algos::metrics::adjusted_rand_index;
use algos::roles::{directional_neighbor_sets, infer_roles, SegmentationMethod};
use algos::wgraph::WeightedGraph;
use benchkit::{arg_f64, arg_u64, collapsed_ip_graph, simulate, truth_labels, write_artifact};
use cloudsim::ClusterPreset;
use commgraph_graph::{CommGraph, Facet, NodeId};
use flowlog::record::{ConnSummary, FlowKey};
use serde_json::json;
use std::net::Ipv4Addr;

/// Build the multi-service deployment's records: six dual-role VMs
/// (web:8080 serving 20 clients, cache:6379 serving 8 workers), workers
/// also hitting two DBs.
fn multi_service_records() -> Vec<ConnSummary> {
    let dual = |i: u8| Ipv4Addr::new(10, 9, 0, i + 1); // 6 dual-role VMs
    let worker = |i: u8| Ipv4Addr::new(10, 9, 1, i + 1); // 8 workers
    let db = |i: u8| Ipv4Addr::new(10, 9, 2, i + 1); // 2 dbs
    let client = |i: u8| Ipv4Addr::new(198, 18, 9, i + 1); // 20 ext clients
    fn rec2(
        out: &mut Vec<ConnSummary>,
        l: Ipv4Addr,
        lp: u16,
        r: Ipv4Addr,
        rp: u16,
        sent: u64,
        rcvd: u64,
    ) {
        out.push(ConnSummary {
            ts: 0,
            key: FlowKey::tcp(l, lp, r, rp),
            pkts_sent: sent / 1000 + 1,
            pkts_rcvd: rcvd / 1000 + 1,
            bytes_sent: sent,
            bytes_rcvd: rcvd,
        });
    }
    let mut out = Vec::new();
    // Clients hit every dual VM's web port.
    for c in 0..20u8 {
        for v in 0..6u8 {
            rec2(&mut out, dual(v), 8080, client(c), 40_000 + c as u16, 30_000, 7_500);
        }
    }
    // Workers hit every dual VM's cache port and both DBs.
    for w in 0..8u8 {
        for v in 0..6u8 {
            rec2(&mut out, worker(w), 41_000 + v as u16, dual(v), 6379, 12_000, 3_000);
            rec2(&mut out, dual(v), 6379, worker(w), 41_000 + v as u16, 3_000, 12_000);
        }
        for d in 0..2u8 {
            // DB reads: tiny queries, bulky result sets — the conversation
            // leans the opposite way from the cache writes, which is what
            // lets role inference tell the two server endpoints apart.
            rec2(&mut out, worker(w), 42_000 + d as u16, db(d), 5432, 2_000, 120_000);
            rec2(&mut out, db(d), 5432, worker(w), 42_000 + d as u16, 120_000, 2_000);
        }
    }
    // DBs additionally ship WAL backups to the backup host — the behavior
    // that distinguishes them from the caches, whose worker-facing traffic
    // is otherwise identical in shape.
    let backup = Ipv4Addr::new(10, 9, 3, 1);
    for d in 0..2u8 {
        rec2(&mut out, db(d), 43_000 + d as u16, backup, 873, 900_000, 9_000);
    }
    out
}

/// Service-level ground truth for a service endpoint.
fn endpoint_truth(n: &NodeId) -> Option<usize> {
    match n {
        NodeId::IpPort(ip, port) if *port < 32_768 => {
            let o = ip.octets();
            Some(match (o[2], port) {
                (0, 8080) => 0, // web service
                (0, 6379) => 1, // cache service
                (2, 5432) => 2, // db service
                _ => 3,
            })
        }
        _ => None,
    }
}

fn facet_ablation() -> serde_json::Value {
    let records = multi_service_records();
    let build = |facet: Facet| {
        let mut b = commgraph_graph::GraphBuilder::new(facet, 0, 3600);
        b.add_all(&records);
        b.finish()
    };
    let ip_graph = build(Facet::Ip);
    let ipport_graph = build(Facet::IpPort);
    let svc_graph = build(Facet::IpServicePort);

    // Infer roles on all three facets.
    let ip_inf = infer_roles(&ip_graph, &SegmentationMethod::paper_default());
    let ipport_inf = infer_roles(&ipport_graph, &SegmentationMethod::paper_default());
    let svc_inf = infer_roles(&svc_graph, &SegmentationMethod::paper_default());

    // Score at the *service endpoint* granularity (the ip-service-port
    // node set). IP-facet endpoints inherit their host's cluster; raw
    // IP-port endpoints are looked up directly.
    let mut truth = Vec::new();
    let (mut ip_labels, mut ipport_labels, mut svc_labels) = (Vec::new(), Vec::new(), Vec::new());
    for (idx, n) in svc_graph.nodes().iter().enumerate() {
        let Some(t) = endpoint_truth(n) else { continue };
        truth.push(t);
        svc_labels.push(svc_inf.labels[idx]);
        let host = NodeId::Ip(n.ip().expect("service endpoints have IPs"));
        let host_idx = ip_graph.index_of(&host).expect("host present in ip graph");
        ip_labels.push(ip_inf.labels[host_idx as usize]);
        let raw_idx = ipport_graph.index_of(n).expect("endpoint present in ip-port graph");
        ipport_labels.push(ipport_inf.labels[raw_idx as usize]);
    }
    let ari_ip = adjusted_rand_index(&ip_labels, &truth).expect("aligned");
    let ari_ipport = adjusted_rand_index(&ipport_labels, &truth).expect("aligned");
    let ari_svc = adjusted_rand_index(&svc_labels, &truth).expect("aligned");

    println!("\nE-ABL/1 — multi-service VMs: which facet can see two roles on one host?");
    println!("  deployment: 6 VMs each hosting web:8080 (clients) AND cache:6379 (workers)");
    println!(
        "  IP facet:              {:>4} nodes, ARI vs service truth = {ari_ip:.3}   (roles blended)",
        ip_graph.node_count()
    );
    println!(
        "  raw IP-port facet:     {:>4} nodes, ARI vs service truth = {ari_ipport:.3}   (ephemeral ports shred overlap)",
        ipport_graph.node_count()
    );
    println!(
        "  ip-service-port facet: {:>4} nodes, ARI vs service truth = {ari_svc:.3}   (ephemeral side collapsed)",
        svc_graph.node_count()
    );
    println!("  ⇒ §2.1/§3.2: port granularity helps only with ephemeral-port collapsing.");
    json!({
        "ip_nodes": ip_graph.node_count(),
        "ipport_nodes": ipport_graph.node_count(),
        "svc_nodes": svc_graph.node_count(),
        "ari_ip_facet": ari_ip,
        "ari_ipport_facet": ari_ipport,
        "ari_ip_service_port_facet": ari_svc,
    })
}

fn k8s_ablations(scale: f64, minutes: u64) -> serde_json::Value {
    eprintln!("[ablation] simulating K8s PaaS at scale {scale} for {minutes} min …");
    let run = simulate(ClusterPreset::K8sPaas, scale, minutes);
    let g: CommGraph = collapsed_ip_graph(&run);
    let truth = truth_labels(&g, &run.truth);

    // -- hierarchical vs flat clustering on the directional Jaccard clique.
    let sets = directional_neighbor_sets(&g);
    let scores = jaccard_matrix_of_sets(&sets);
    let clique = WeightedGraph::from_similarity(&scores, 0.1);
    let flat = louvain(&clique);
    let hier = hierarchical_louvain(&clique, HierarchicalConfig::default());
    let ari_flat = adjusted_rand_index(&flat.labels, &truth).expect("aligned");
    let ari_hier = adjusted_rand_index(&hier.labels, &truth).expect("aligned");
    let n_flat = flat.labels.iter().max().map_or(0, |m| m + 1);
    let n_hier = hier.labels.iter().max().map_or(0, |m| m + 1);
    println!("\nE-ABL/2 — flat vs hierarchical Louvain (K8s PaaS, {} nodes)", g.node_count());
    println!("  flat louvain:         {n_flat:>3} roles, ARI {ari_flat:.3}");
    println!("  hierarchical louvain: {n_hier:>3} roles, ARI {ari_hier:.3}");
    println!("  ⇒ the recursion separates same-kind roles glued by shared hubs (Fig. 1 caption).");

    // -- directional vs plain neighbor tokens, both hierarchical.
    let structure = WeightedGraph::from_comm_graph(&g, |_| 1.0);
    let plain_scores = jaccard_matrix(&structure);
    let plain_clique = WeightedGraph::from_similarity(&plain_scores, 0.1);
    let plain = hierarchical_louvain(&plain_clique, HierarchicalConfig::default());
    let ari_plain = adjusted_rand_index(&plain.labels, &truth).expect("aligned");
    println!("\nE-ABL/3 — plain vs direction-qualified Jaccard tokens");
    println!("  plain neighbor sets:       ARI {ari_plain:.3}");
    println!("  direction-qualified sets:  ARI {ari_hier:.3}");
    println!("  ⇒ §2.1's 'nature of the conversation' signal, quantified.");

    json!({
        "nodes": g.node_count(),
        "flat": {"roles": n_flat, "ari": ari_flat},
        "hierarchical": {"roles": n_hier, "ari": ari_hier},
        "plain_jaccard_ari": ari_plain,
        "directional_jaccard_ari": ari_hier,
    })
}

fn main() {
    let scale = arg_f64("scale", 1.0);
    let minutes = arg_u64("minutes", 60);
    let facet = facet_ablation();
    let k8s = k8s_ablations(scale, minutes);
    write_artifact(
        "ablation",
        "ablation.json",
        &serde_json::to_string_pretty(&json!({"facet": facet, "k8s": k8s})).expect("serializable"),
    );
    eprintln!("[ablation] artifacts in target/experiments/ablation/");
}
