//! Experiment F4 — regenerate Figure 4: byte adjacency-matrix heatmaps.
//!
//! For K8s PaaS, µserviceBench, and Portal: one hour's collapsed IP graph
//! rendered as a log-scale byte matrix (rows/columns are IPs in address
//! order, which is role-major). Emits the normalized matrices as CSV plus
//! the two patterns the paper calls out, detected programmatically:
//! **chatty cliques** and **hub-and-spoke** structure.

use algos::stats::{detect_chatty_cliques, detect_hubs};
use benchkit::{arg_f64, arg_u64, collapsed_ip_graph, simulate, write_artifact};
use cloudsim::ClusterPreset;
use linalg::quantize::{log_normalize, to_ascii, to_csv};
use linalg::Matrix;
use serde_json::json;

fn main() {
    let scale = arg_f64("scale", 1.0);
    let minutes = arg_u64("minutes", 60);
    let mut artifacts = Vec::new();
    println!("\nFigure 4 — adjacency matrices of bytes exchanged (log scale)");
    for preset in [ClusterPreset::K8sPaas, ClusterPreset::MicroserviceBench, ClusterPreset::Portal]
    {
        eprintln!("[fig4] simulating {} at scale {scale} for {minutes} min …", preset.name());
        let run = simulate(preset, scale, minutes);
        let g = collapsed_ip_graph(&run);
        let n = g.node_count();
        let raw = Matrix::from_rows(g.byte_matrix(8192).expect("collapsed graphs are small"));
        let norm = log_normalize(&raw, 6.0);
        let nonzero =
            raw.data().iter().filter(|&&v| v > 0.0).count() as f64 / (n * n).max(1) as f64;

        let hubs = detect_hubs(&g, 5.0);
        let cliques = detect_chatty_cliques(&g, 4, 0.5);
        println!(
            "\n  {} — {} x {} matrix, {:.2}% entries non-zero",
            preset.name(),
            n,
            n,
            nonzero * 100.0
        );
        println!(
            "    hub-and-spoke: {} hubs (top: {})",
            hubs.len(),
            hubs.first()
                .map(|h| format!("{} deg {}", h.label, h.degree))
                .unwrap_or_else(|| "-".into())
        );
        println!(
            "    chatty cliques: {} (largest: {} nodes, density {:.2})",
            cliques.len(),
            cliques.first().map(|c| c.members.len()).unwrap_or(0),
            cliques.first().map(|c| c.density).unwrap_or(0.0)
        );

        let slug = preset.name().to_lowercase().replace(' ', "_");
        write_artifact("fig4", &format!("{slug}_matrix.csv"), &to_csv(&norm));
        // Coarse ASCII preview of the banded structure (downsampled).
        let preview = downsample(&norm, 64);
        write_artifact("fig4", &format!("{slug}_preview.txt"), &to_ascii(&preview));
        artifacts.push(json!({
            "cluster": preset.name(),
            "n": n,
            "nonzero_frac": nonzero,
            "hubs": hubs.len(),
            "hub_labels": hubs.iter().take(5).map(|h| h.label.clone()).collect::<Vec<_>>(),
            "chatty_cliques": cliques.len(),
            "largest_clique": cliques.first().map(|c| c.members.len()).unwrap_or(0),
        }));
    }
    println!("\npaper shape: clear banded structure; chatty cliques (blocks) and hub rows/");
    println!("columns (control-plane components: API servers, telemetry sinks, stores).");

    write_artifact(
        "fig4",
        "fig4.json",
        &serde_json::to_string_pretty(&artifacts).expect("serializable"),
    );
    eprintln!("[fig4] artifacts in target/experiments/fig4/");
}

/// Max-pool a normalized matrix down to at most `target` rows/cols so the
/// ASCII preview fits a terminal.
fn downsample(m: &Matrix, target: usize) -> Matrix {
    let n = m.rows();
    if n <= target {
        return m.clone();
    }
    let stride = n.div_ceil(target);
    let out_n = n.div_ceil(stride);
    let mut out = Matrix::zeros(out_n, out_n);
    for i in 0..n {
        for j in 0..n {
            let (oi, oj) = (i / stride, j / stride);
            if m[(i, j)] > out[(oi, oj)] {
                out[(oi, oj)] = m[(i, j)];
            }
        }
    }
    out
}
