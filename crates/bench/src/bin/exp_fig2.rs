//! Experiment F2 — regenerate Figure 2: unsegmented IP graphs, all clusters.
//!
//! Builds the hourly collapsed IP graph of every reference cluster and
//! emits structural profiles plus DOT renderings. The point of the figure:
//! raw communication graphs are visually and structurally very different
//! across deployments (sparse star for Portal, dense mesh for
//! µserviceBench, hub-and-spoke plus tenant stacks for K8s PaaS, a giant
//! shuffle clique for KQuery) — and none of them is segmentable by eye.

use benchkit::{arg_f64, arg_u64, collapsed_ip_graph, simulate, write_artifact};
use cloudsim::ClusterPreset;
use serde_json::json;

fn main() {
    // Fig 2 renders all four clusters; KQuery at reduced scale by default so
    // the DOT file stays plottable (override with --kquery-scale 1).
    let scale = arg_f64("scale", 1.0);
    let kquery_scale = arg_f64("kquery-scale", 0.1);
    let minutes = arg_u64("minutes", 60);

    println!("\nFigure 2 — unsegmented IP-graphs of the four clusters");
    println!(
        "{:<16} {:>8} {:>9} {:>12} {:>12} {:>14}",
        "Cluster", "nodes", "edges", "mean degree", "max degree", "density"
    );
    let mut artifacts = Vec::new();
    for preset in ClusterPreset::all() {
        let s = if preset == ClusterPreset::KQuery { kquery_scale } else { scale };
        eprintln!("[fig2] simulating {} at scale {s} for {minutes} min …", preset.name());
        let run = simulate(preset, s, minutes);
        let g = collapsed_ip_graph(&run);
        let n = g.node_count();
        let degrees: Vec<u32> = (0..n as u32).map(|i| g.node_stats(i).degree).collect();
        let mean_deg = degrees.iter().map(|&d| d as f64).sum::<f64>() / n.max(1) as f64;
        let max_deg = degrees.iter().copied().max().unwrap_or(0);
        let density =
            if n > 1 { 2.0 * g.edge_count() as f64 / (n as f64 * (n as f64 - 1.0)) } else { 0.0 };
        println!(
            "{:<16} {:>8} {:>9} {:>12.1} {:>12} {:>14.5}",
            preset.name(),
            n,
            g.edge_count(),
            mean_deg,
            max_deg,
            density
        );
        let slug = preset.name().to_lowercase().replace(' ', "_");
        write_artifact("fig2", &format!("{slug}.dot"), &g.to_dot(None));
        write_artifact(
            "fig2",
            &format!("{slug}.json"),
            &serde_json::to_string_pretty(&g.summary_json(15)).expect("serializable"),
        );
        artifacts.push(json!({
            "cluster": preset.name(),
            "scale": s,
            "nodes": n,
            "edges": g.edge_count(),
            "mean_degree": mean_deg,
            "max_degree": max_deg,
            "density": density,
        }));
    }
    println!("\npaper shape: Portal near-star (clients→4 servers); uServiceBench dense mesh");
    println!("(edges >> nodes); K8s PaaS hubs + tenant stacks; KQuery one huge clique.");

    write_artifact(
        "fig2",
        "fig2.json",
        &serde_json::to_string_pretty(&artifacts).expect("serializable"),
    );
    eprintln!("[fig2] artifacts in target/experiments/fig2/");
}
