//! Experiment F3 — regenerate Figure 3: alternative segmentation strategies
//! on the K8s PaaS IP graph.
//!
//! Runs SimRank, SimRank++, connection-weighted modularity, and
//! byte-weighted modularity on the same graph as Figure 1 and compares all
//! five partitions. The paper's observation to reproduce: *"the results
//! clearly differ"* from the Jaccard+Louvain segmentation, because
//! modularity groups nodes that exchange data while same-role nodes may
//! never talk to each other. With ground truth available we can also rank
//! them: the paper's method should score best on ARI/NMI.

use algos::metrics::{adjusted_rand_index, normalized_mutual_information, purity};
use algos::roles::{infer_roles, SegmentationMethod};
use algos::simrank::SimRankConfig;
use benchkit::{arg_f64, arg_u64, collapsed_ip_graph, simulate, truth_labels, write_artifact};
use cloudsim::ClusterPreset;
use serde_json::json;
use std::time::Instant;

fn main() {
    let scale = arg_f64("scale", 1.0);
    let minutes = arg_u64("minutes", 60);
    eprintln!("[fig3] simulating K8s PaaS at scale {scale} for {minutes} min …");
    let run = simulate(ClusterPreset::K8sPaas, scale, minutes);
    let g = collapsed_ip_graph(&run);
    let truth = truth_labels(&g, &run.truth);
    eprintln!("[fig3] graph: {} nodes, {} edges", g.node_count(), g.edge_count());

    let methods: Vec<(&str, SegmentationMethod)> = vec![
        ("fig1: jaccard+louvain", SegmentationMethod::paper_default()),
        (
            "fig3a: simrank",
            SegmentationMethod::SimRank { config: SimRankConfig::default(), min_score: 0.05 },
        ),
        (
            "fig3b: simrank++",
            SegmentationMethod::SimRankPP { config: SimRankConfig::default(), min_score: 0.05 },
        ),
        ("fig3c: conn-weighted modularity", SegmentationMethod::ModularityConns),
        ("fig3d: byte-weighted modularity", SegmentationMethod::ModularityBytes),
        // Extension: the RolX-style baseline the paper's role-inference
        // citation [51] suggests.
        (
            "ext: feature k-means (RolX-style)",
            SegmentationMethod::FeatureKMeans { k: None, k_max: 64, seed: 7 },
        ),
    ];

    println!("\nFigure 3 — segmentation strategies on the K8s PaaS IP-graph");
    println!(
        "{:<32} {:>7} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "Method", "roles", "ARI", "NMI", "purity", "time", "vs fig1 ARI"
    );
    let mut results = Vec::new();
    let mut fig1_labels: Option<Vec<usize>> = None;
    for (label, method) in &methods {
        let t0 = Instant::now();
        let inf = infer_roles(&g, method);
        let elapsed = t0.elapsed().as_secs_f64();
        let ari = adjusted_rand_index(&inf.labels, &truth).expect("same length");
        let nmi = normalized_mutual_information(&inf.labels, &truth).expect("same length");
        let pur = purity(&inf.labels, &truth).expect("same length");
        let vs_fig1 = match &fig1_labels {
            None => {
                fig1_labels = Some(inf.labels.clone());
                1.0
            }
            Some(base) => adjusted_rand_index(&inf.labels, base).expect("same length"),
        };
        println!(
            "{:<32} {:>7} {:>8.3} {:>8.3} {:>8.3} {:>9.2}s {:>12.3}",
            label, inf.n_roles, ari, nmi, pur, elapsed, vs_fig1
        );
        let slug = inf.method.replace('+', "_");
        write_artifact("fig3", &format!("{slug}.dot"), &g.to_dot(Some(&inf.labels)));
        results.push(json!({
            "label": label,
            "method": inf.method,
            "n_roles": inf.n_roles,
            "ari": ari, "nmi": nmi, "purity": pur,
            "seconds": elapsed,
            "agreement_with_fig1": vs_fig1,
        }));
    }
    println!("\npaper shape: the four alternatives clearly differ from Figure 1 (low vs-fig1");
    println!("agreement) and, against ground truth, score worse — modularity groups talkers,");
    println!("not same-role peers; SimRank variants cost more without better quality.");

    write_artifact(
        "fig3",
        "fig3.json",
        &serde_json::to_string_pretty(&results).expect("serializable"),
    );
    eprintln!("[fig3] artifacts in target/experiments/fig3/");
}
