//! Experiment F1 — regenerate Figure 1: the role-segmented K8s PaaS IP graph.
//!
//! One hour of the K8s PaaS cluster, segmented with the paper's method
//! (Jaccard score on neighbor-set overlap, Louvain on the scored clique).
//! Because the simulator knows ground-truth roles, this experiment also
//! reports what the paper could only probe through developer interviews:
//! how *right* the labels are (ARI / NMI / purity), plus the role-count
//! compression the paper predicts ("many fewer roles than resources").
//!
//! Artifacts: DOT rendering with role colors (the figure itself), the role
//! table, and quality metrics.

use algos::metrics::{adjusted_rand_index, cluster_count, normalized_mutual_information, purity};
use algos::roles::{infer_roles, SegmentationMethod};
use benchkit::{arg_f64, arg_u64, collapsed_ip_graph, simulate, truth_labels, write_artifact};
use cloudsim::ClusterPreset;
use serde_json::json;

fn main() {
    let scale = arg_f64("scale", 1.0);
    let minutes = arg_u64("minutes", 60);
    eprintln!("[fig1] simulating K8s PaaS at scale {scale} for {minutes} min …");
    let run = simulate(ClusterPreset::K8sPaas, scale, minutes);
    let g = collapsed_ip_graph(&run);
    eprintln!(
        "[fig1] graph: {} nodes, {} edges; inferring roles …",
        g.node_count(),
        g.edge_count()
    );

    let inference = infer_roles(&g, &SegmentationMethod::paper_default());
    let truth = truth_labels(&g, &run.truth);

    let ari = adjusted_rand_index(&inference.labels, &truth).expect("same length");
    let nmi = normalized_mutual_information(&inference.labels, &truth).expect("same length");
    let pur = purity(&inference.labels, &truth).expect("same length");

    println!("\nFigure 1 — K8s PaaS IP-graph with roles inferred by jaccard+louvain");
    println!("  nodes:            {}", g.node_count());
    println!("  edges:            {}", g.edge_count());
    println!("  inferred roles:   {}", inference.n_roles);
    println!("  true roles:       {}", cluster_count(&truth));
    println!("  resources/role:   {:.1}", g.node_count() as f64 / inference.n_roles.max(1) as f64);
    println!("  ARI vs truth:     {ari:.3}");
    println!("  NMI vs truth:     {nmi:.3}");
    println!("  purity vs truth:  {pur:.3}");
    println!("\npaper: nodes that share a color have the same role and can share a µsegment;");
    println!("       'fundamentally, there are many fewer roles than resources'.");

    // Role table: size of each inferred role with its dominant true role.
    let mut role_sizes: Vec<(usize, usize)> = Vec::new();
    for role in 0..inference.n_roles {
        let members = inference.labels.iter().filter(|&&l| l == role).count();
        role_sizes.push((role, members));
    }
    role_sizes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\n  top inferred roles by size:");
    for (role, members) in role_sizes.iter().take(10) {
        println!("    role {role:>3}: {members:>4} resources");
    }

    write_artifact("fig1", "k8s_roles.dot", &g.to_dot(Some(&inference.labels)));
    let table: Vec<_> = g
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| {
            json!({
                "node": n.to_string(),
                "inferred_role": inference.labels[i],
                "true_role": truth[i],
            })
        })
        .collect();
    write_artifact(
        "fig1",
        "roles.json",
        &serde_json::to_string_pretty(&json!({
            "method": inference.method,
            "n_roles": inference.n_roles,
            "ari": ari, "nmi": nmi, "purity": pur,
            "clustering_modularity": inference.clustering_modularity,
            "nodes": table,
        }))
        .expect("serializable"),
    );
    eprintln!("[fig1] artifacts in target/experiments/fig1/");
}
