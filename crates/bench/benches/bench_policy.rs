//! Policy-path benchmarks: learning allow rules from a window, checking
//! records at enforcement time (the per-flow hot path), compiling rules,
//! and computing blast radii.

use benchkit::simulate;
use cloudsim::ClusterPreset;
use commgraph::workbench::Workbench;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use segment::blast::fleet_blast_report;
use segment::compile::compile;
use segment::policy::SegmentPolicy;
use segment::ViolationDetector;
use std::hint::black_box;

fn bench_policy_path(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 5);
    let mut wb = Workbench::new(run.records.clone(), run.monitored.clone());
    let seg = wb.segmentation().clone();
    let policy = wb.policy().clone();
    let records = &run.records;

    let mut group = c.benchmark_group("policy");
    group.sample_size(20);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("learn_port_scoped", |b| {
        b.iter(|| black_box(SegmentPolicy::learn(black_box(records), &seg, true)))
    });
    group.bench_function("check_stream", |b| {
        b.iter(|| {
            let mut det = ViolationDetector::new(seg.clone(), policy.clone());
            black_box(det.check_all(black_box(records)))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("policy_static");
    group.bench_function("compile_rules", |b| {
        b.iter(|| black_box(compile(black_box(&seg), black_box(&policy), 1000)))
    });
    group.bench_function("fleet_blast_report", |b| {
        b.iter(|| black_box(fleet_blast_report(black_box(&seg), black_box(&policy))))
    });
    group.finish();
}

criterion_group!(benches, bench_policy_path);
criterion_main!(benches);
