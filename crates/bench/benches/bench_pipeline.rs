//! End-to-end ingest throughput of the streaming analytics engine — the
//! number that feeds the COGS model: records/second per process at various
//! worker counts.

use analytics::engine::{EngineConfig, StreamEngine};
use benchkit::simulate;
use cloudsim::ClusterPreset;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 5);
    let records = &run.records;

    let mut group = c.benchmark_group("engine_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let mut engine = StreamEngine::new(EngineConfig {
                    workers: w,
                    monitored: Some(run.monitored.clone()),
                    ..Default::default()
                })
                .expect("valid config");
                for chunk in records.chunks(65_536) {
                    engine.ingest(black_box(chunk)).expect("ingest succeeds");
                }
                black_box(engine.finish().expect("drains"))
            })
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    // The simulator itself must be fast enough to drive KQuery-scale
    // experiments; benchmark record generation per minute of cluster time.
    let mut group = c.benchmark_group("simulator_minute");
    group.sample_size(10);
    for (name, preset, scale) in [
        ("usvc_full", ClusterPreset::MicroserviceBench, 1.0),
        ("k8s_half", ClusterPreset::K8sPaas, 0.5),
        ("kquery_tenth", ClusterPreset::KQuery, 0.1),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let topo = preset.topology_scaled(scale);
                let mut sim =
                    cloudsim::Simulator::new(topo, preset.default_sim_config()).expect("valid");
                black_box(sim.collect(1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_simulator);
criterion_main!(benches);
