//! Segmentation-cost benchmarks: the paper flags its own method's
//! "super-quadratic complexity" as an open issue and positions MinHash
//! sketching as the remedy, and SimRank as strictly costlier. These benches
//! quantify all of that on one K8s PaaS graph.

use algos::jaccard::{jaccard_matrix_of_sets, jaccard_matrix_of_sets_with, MinHasher};
use algos::louvain::{hierarchical_louvain, louvain, HierarchicalConfig};
use algos::roles::{directional_neighbor_sets, infer_roles, SegmentationMethod};
use algos::simrank::{simrank, simrank_with, SimRankConfig};
use algos::wgraph::WeightedGraph;
use algos::Parallelism;
use benchkit::{collapsed_ip_graph, simulate};
use cloudsim::ClusterPreset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_similarity(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 5);
    let g = collapsed_ip_graph(&run);
    let sets = directional_neighbor_sets(&g);
    let structure = WeightedGraph::from_comm_graph(&g, |_| 1.0);

    let mut group = c.benchmark_group("similarity");
    group.sample_size(20);
    group.bench_function("jaccard_exact", |b| {
        b.iter(|| black_box(jaccard_matrix_of_sets(black_box(&sets))))
    });
    group.bench_function("jaccard_minhash_128", |b| {
        let mh = MinHasher::new(128, 7);
        b.iter(|| black_box(mh.similarity_matrix_of_sets(black_box(&sets))))
    });
    group.bench_function("simrank_5_iters", |b| {
        b.iter(|| black_box(simrank(black_box(&structure), SimRankConfig::default())))
    });
    group.finish();
}

/// Serial vs parallel variants of the similarity kernels, same inputs — the
/// speedup story satellite to the `commgraph-algos::par` scheduler.
fn bench_similarity_parallel(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 5);
    let g = collapsed_ip_graph(&run);
    let sets = directional_neighbor_sets(&g);
    let structure = WeightedGraph::from_comm_graph(&g, |_| 1.0);

    let mut group = c.benchmark_group("similarity_parallel");
    group.sample_size(20);
    for (label, par) in [("serial", Parallelism::serial()), ("parallel", Parallelism::default())] {
        group.bench_function(format!("jaccard_exact/{label}"), |b| {
            b.iter(|| black_box(jaccard_matrix_of_sets_with(black_box(&sets), par)))
        });
        group.bench_function(format!("simrank_5_iters/{label}"), |b| {
            b.iter(|| black_box(simrank_with(black_box(&structure), SimRankConfig::default(), par)))
        });
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 5);
    let g = collapsed_ip_graph(&run);
    let scores = jaccard_matrix_of_sets(&directional_neighbor_sets(&g));
    let clique = WeightedGraph::from_similarity(&scores, 0.1);

    let mut group = c.benchmark_group("clustering");
    group.sample_size(20);
    group.bench_function("louvain_flat", |b| b.iter(|| black_box(louvain(black_box(&clique)))));
    group.bench_function("louvain_hierarchical", |b| {
        b.iter(|| {
            black_box(hierarchical_louvain(black_box(&clique), HierarchicalConfig::default()))
        })
    });
    group.finish();
}

fn bench_end_to_end_methods(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 5);
    let g = collapsed_ip_graph(&run);

    let mut group = c.benchmark_group("infer_roles");
    group.sample_size(10);
    group.bench_function("paper_jaccard_louvain", |b| {
        b.iter(|| black_box(infer_roles(black_box(&g), &SegmentationMethod::paper_default())))
    });
    group.bench_function("minhash_louvain", |b| {
        b.iter(|| {
            black_box(infer_roles(
                black_box(&g),
                &SegmentationMethod::MinHashLouvain { hashes: 128, min_score: 0.1, seed: 7 },
            ))
        })
    });
    group.bench_function("simrank", |b| {
        b.iter(|| {
            black_box(infer_roles(
                black_box(&g),
                &SegmentationMethod::SimRank { config: SimRankConfig::default(), min_score: 0.05 },
            ))
        })
    });
    group.bench_function("modularity_bytes", |b| {
        b.iter(|| black_box(infer_roles(black_box(&g), &SegmentationMethod::ModularityBytes)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_similarity,
    bench_similarity_parallel,
    bench_clustering,
    bench_end_to_end_methods
);
criterion_main!(benches);
