//! Linear-algebra benchmarks: the Jacobi eigensolver and PCA sweep behind
//! the §2.2 summaries, at communication-matrix sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use linalg::eigen::{eigen_symmetric, eigen_symmetric_with};
use linalg::ica::fast_ica;
use linalg::pca::{pca_sweep, pca_sweep_with, recon_err_profile};
use linalg::quantize::log_normalize;
use linalg::{Matrix, Parallelism};
use std::hint::black_box;

/// A synthetic block-structured "communication matrix" of dimension n with
/// `roles` blocks — low-rank like the real ones.
fn block_matrix(n: usize, roles: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 40) as f64 / 16_777_216.0
    };
    let block = |i: usize| i * roles / n;
    for i in 0..n {
        for j in (i + 1)..n {
            let (bi, bj) = (block(i), block(j));
            // Role-pair base volume plus small noise.
            let base = if (bi + bj) % 3 == 0 {
                1e6
            } else if bi == bj {
                0.0
            } else {
                1e4
            };
            let v = base * (0.9 + 0.2 * next());
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

fn bench_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigen_jacobi");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let m = block_matrix(n, 16);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(eigen_symmetric(black_box(m), 1e-10).expect("symmetric")))
        });
    }
    group.finish();
}

fn bench_pca(c: &mut Criterion) {
    let m = block_matrix(128, 16);
    let d = eigen_symmetric(&m, 1e-10).expect("symmetric");
    let mut group = c.benchmark_group("pca");
    group.sample_size(10);
    group.bench_function("sweep_128", |b| {
        b.iter(|| black_box(pca_sweep(black_box(&m), &[1, 5, 10, 25, 50]).expect("square")))
    });
    group.bench_function("err_profile_128", |b| {
        b.iter(|| black_box(recon_err_profile(black_box(&d), black_box(&m)).expect("aligned")))
    });
    group.finish();
}

/// Serial vs parallel eigensolve and PCA sweep on the same inputs.
fn bench_linalg_parallel(c: &mut Criterion) {
    let m = block_matrix(128, 16);
    let mut group = c.benchmark_group("linalg_parallel");
    group.sample_size(10);
    for (label, par) in [("serial", Parallelism::serial()), ("parallel", Parallelism::default())] {
        group.bench_function(format!("eigen_128/{label}"), |b| {
            b.iter(|| {
                black_box(eigen_symmetric_with(black_box(&m), 1e-10, par).expect("symmetric"))
            })
        });
        group.bench_function(format!("pca_sweep_128/{label}"), |b| {
            b.iter(|| {
                black_box(pca_sweep_with(black_box(&m), &[1, 5, 10, 25, 50], par).expect("square"))
            })
        });
    }
    group.finish();
}

fn bench_ica_and_quantize(c: &mut Criterion) {
    let m = block_matrix(96, 12);
    let mut group = c.benchmark_group("ica_quantize");
    group.sample_size(10);
    group.bench_function("fastica_10_comps", |b| {
        b.iter(|| black_box(fast_ica(black_box(&m), 10, 200).expect("valid input")))
    });
    group.bench_function("log_normalize_96", |b| {
        b.iter(|| black_box(log_normalize(black_box(&m), 6.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_eigen, bench_pca, bench_linalg_parallel, bench_ica_and_quantize);
criterion_main!(benches);
