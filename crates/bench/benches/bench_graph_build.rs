//! Graph-construction microbenchmarks: the group-by-aggregate inner loop
//! that the COGS case study (§3.2) depends on, plus heavy-hitter collapsing
//! and graph diffing.

use benchkit::simulate;
use cloudsim::ClusterPreset;
use commgraph_graph::collapse::collapse_default;
use commgraph_graph::diff::diff;
use commgraph_graph::{Facet, GraphBuilder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_builder(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 5);
    let records = &run.records;

    let mut group = c.benchmark_group("graph_build");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("ip_facet", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::new(Facet::Ip, 0, 3600);
            builder.add_all(black_box(records));
            black_box(builder.finish())
        })
    });
    group.bench_function("ip_facet_with_dedup", |b| {
        b.iter(|| {
            let mut builder =
                GraphBuilder::new(Facet::Ip, 0, 3600).with_monitored(run.monitored.clone());
            builder.add_all(black_box(records));
            black_box(builder.finish())
        })
    });
    group.bench_function("ipport_facet", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::new(Facet::IpPort, 0, 3600);
            builder.add_all(black_box(records));
            black_box(builder.finish())
        })
    });
    group.finish();
}

fn bench_collapse_and_diff(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 5);
    let graph = {
        let mut b = GraphBuilder::new(Facet::Ip, 0, 3600);
        b.add_all(&run.records);
        b.finish()
    };
    let run2 = simulate(ClusterPreset::K8sPaas, 0.3, 6);
    let graph2 = {
        let mut b = GraphBuilder::new(Facet::Ip, 0, 3600);
        b.add_all(&run2.records);
        b.finish()
    };

    let mut group = c.benchmark_group("graph_transform");
    group.bench_function("collapse_0.1pct", |b| {
        b.iter(|| black_box(collapse_default(black_box(&graph))))
    });
    group.bench_function("diff_hourly", |b| {
        b.iter(|| black_box(diff(black_box(&graph), black_box(&graph2), 2.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_builder, bench_collapse_and_diff);
criterion_main!(benches);
