//! Sketch and telemetry-stage benchmarks: HyperLogLog cardinality,
//! SpaceSaving heavy hitters, flow sampling, codecs, and the simulated
//! smartNIC flow-table path.

use analytics::sketch::SpaceSaving;
use benchkit::simulate;
use cloudsim::ClusterPreset;
use commgraph_graph::cardinality::{GraphCardinality, HyperLogLog};
use commgraph_graph::Facet;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flowlog::codec;
use flowlog::nic::{Direction, HostAgent};
use flowlog::sampling::{Sampler, SamplingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sketches(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 3);
    let records = &run.records;

    let mut group = c.benchmark_group("sketch");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("hll_graph_cardinality", |b| {
        b.iter(|| {
            let mut gc = GraphCardinality::new(Facet::IpPort);
            for r in records {
                gc.add(black_box(r));
            }
            black_box((gc.node_estimate(), gc.edge_estimate()))
        })
    });
    group.bench_function("hll_insert_estimate", |b| {
        b.iter(|| {
            let mut h = HyperLogLog::new();
            for i in 0..10_000u64 {
                h.insert(&i);
            }
            black_box(h.estimate())
        })
    });
    group.bench_function("spacesaving_heavy_edges", |b| {
        b.iter(|| {
            let mut s = SpaceSaving::new(1024);
            for r in records {
                s.insert(black_box(r.key.canonical()), r.bytes_total());
            }
            black_box(s.top(10))
        })
    });
    group.finish();
}

fn bench_telemetry_path(c: &mut Criterion) {
    let run = simulate(ClusterPreset::K8sPaas, 0.3, 3);
    let records = &run.records;

    let mut group = c.benchmark_group("telemetry");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("gcp_sampling", |b| {
        let sampler =
            Sampler::new(SamplingConfig::new(0.5, 0.03).expect("valid"), 7).expect("valid");
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let kept: usize =
                records.iter().filter_map(|r| sampler.sample(black_box(r), &mut rng)).count();
            black_box(kept)
        })
    });
    group.bench_function("binary_codec_roundtrip", |b| {
        b.iter(|| {
            let buf = codec::encode_binary(black_box(records));
            black_box(codec::decode_binary(buf).expect("round trip"))
        })
    });
    group.bench_function("nic_flow_table", |b| {
        b.iter(|| {
            let mut agent = HostAgent::new(4096, 60, 600);
            for (i, r) in records.iter().enumerate() {
                agent.observe(
                    r.ts + (i % 60) as u64,
                    r.key,
                    Direction::Tx,
                    r.pkts_sent,
                    r.bytes_sent,
                );
            }
            black_box(agent.flush(10_000))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sketches, bench_telemetry_path);
criterion_main!(benches);
