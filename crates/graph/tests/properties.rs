//! Property-based tests for graph construction and transforms.

use commgraph_graph::collapse::{collapse, MinuteSurvivors, NicLocalSurvivors};
use commgraph_graph::diff::diff;
use commgraph_graph::timeseries::{correlation, EdgeSeries, EdgeSeriesBuilder};
use commgraph_graph::{Facet, GraphBuilder};
use flowlog::record::{ConnSummary, FlowKey};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_record() -> impl Strategy<Value = ConnSummary> {
    (0u64..7200, 0u8..12, 0u8..12, 1u16..1024, 1u64..50, 1u64..200_000).prop_map(
        |(ts, l, r, port, pkts, bytes)| ConnSummary {
            ts,
            key: FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, l.wrapping_add(1)),
                40_000 + port,
                Ipv4Addr::new(10, 0, 1, r.wrapping_add(1)),
                (port % 7) * 100 + 22,
            ),
            pkts_sent: pkts,
            pkts_rcvd: pkts / 2,
            bytes_sent: bytes,
            bytes_rcvd: bytes / 3,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Builder conservation: graph totals equal the record stream's totals
    /// (no dedup configured).
    #[test]
    fn builder_conserves_traffic(records in prop::collection::vec(arb_record(), 1..120)) {
        let mut b = GraphBuilder::new(Facet::Ip, 0, 7200);
        b.add_all(&records);
        let g = b.finish();
        let bytes: u64 = records.iter().map(|r| r.bytes_total()).sum();
        let pkts: u64 = records.iter().map(|r| r.pkts_total()).sum();
        prop_assert_eq!(g.totals().bytes(), bytes);
        prop_assert_eq!(g.totals().pkts(), pkts);
        prop_assert_eq!(g.totals().conns, records.len() as u64);
    }

    /// Record order never matters: any permutation builds the same graph.
    #[test]
    fn builder_is_order_invariant(records in prop::collection::vec(arb_record(), 1..60)) {
        let build = |recs: &[ConnSummary]| {
            let mut b = GraphBuilder::new(Facet::Ip, 0, 7200);
            b.add_all(recs);
            b.finish()
        };
        let g1 = build(&records);
        let mut reversed = records.clone();
        reversed.reverse();
        let g2 = build(&reversed);
        prop_assert_eq!(g1.node_count(), g2.node_count());
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
        prop_assert_eq!(g1.totals(), g2.totals());
        for i in 0..g1.node_count() as u32 {
            for (j, stats) in g1.neighbors(i) {
                let a = g2.index_of(&g1.node(i)).expect("same node set");
                let b2 = g2.index_of(&g1.node(*j)).expect("same node set");
                prop_assert_eq!(g2.edge(a, b2).expect("same edge set"), *stats);
            }
        }
    }

    /// Collapsing at any threshold with any protection conserves totals.
    #[test]
    fn collapse_always_conserves(
        records in prop::collection::vec(arb_record(), 1..100),
        threshold in 0.0f64..=1.0,
        protect_low in any::<bool>(),
    ) {
        let mut b = GraphBuilder::new(Facet::Ip, 0, 7200);
        b.add_all(&records);
        let g = b.finish();
        let c = collapse(&g, threshold, |n| {
            protect_low && n.ip().map(|ip| ip.octets()[3] < 6).unwrap_or(false)
        });
        // Direction splits are orientation-relative and may flip when nodes
        // merge into Other (which sorts after Ip); undirected totals are the
        // invariant.
        prop_assert_eq!(c.totals().bytes(), g.totals().bytes());
        prop_assert_eq!(c.totals().pkts(), g.totals().pkts());
        prop_assert_eq!(c.totals().conns, g.totals().conns);
        prop_assert!(c.node_count() <= g.node_count());
    }

    /// Survivor trackers only ever shrink the graph, and both keep every
    /// reporting (local) endpoint... for the per-NIC tracker.
    #[test]
    fn survivor_trackers_are_sound(records in prop::collection::vec(arb_record(), 1..100)) {
        let mut minute = MinuteSurvivors::new(Facet::Ip, 0.001);
        let mut nic = NicLocalSurvivors::new(Facet::Ip, 0.001);
        minute.add_interval(&records);
        nic.add_interval(&records);
        let mut b = GraphBuilder::new(Facet::Ip, 0, 7200);
        b.add_all(&records);
        let g = b.finish();
        for tracker_graph in [minute.collapse(&g), nic.collapse(&g)] {
            prop_assert_eq!(tracker_graph.totals().bytes(), g.totals().bytes());
            prop_assert_eq!(tracker_graph.totals().conns, g.totals().conns);
            prop_assert!(tracker_graph.node_count() <= g.node_count());
        }
        // Every local (reporting) IP survives the per-NIC rule.
        for r in &records {
            prop_assert!(nic.is_survivor(&commgraph_graph::NodeId::Ip(r.key.local_ip)));
        }
    }

    /// Diff axioms: self-diff is quiet; diff(a,b) mirrors diff(b,a).
    #[test]
    fn diff_axioms(
        r1 in prop::collection::vec(arb_record(), 1..60),
        r2 in prop::collection::vec(arb_record(), 1..60),
    ) {
        let build = |recs: &[ConnSummary]| {
            let mut b = GraphBuilder::new(Facet::Ip, 0, 7200);
            b.add_all(recs);
            b.finish()
        };
        let (a, b) = (build(&r1), build(&r2));
        prop_assert!(diff(&a, &a, 2.0).is_quiet());
        let fwd = diff(&a, &b, 2.0);
        let back = diff(&b, &a, 2.0);
        prop_assert_eq!(fwd.added_nodes, back.removed_nodes);
        prop_assert_eq!(fwd.removed_edges, back.added_edges);
        prop_assert!((fwd.edge_jaccard - back.edge_jaccard).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&fwd.edge_jaccard));
    }

    /// Edge time series: slot sums equal edge totals, and correlation is a
    /// bounded, symmetric score.
    #[test]
    fn timeseries_axioms(records in prop::collection::vec(arb_record(), 1..80)) {
        let mut ts = EdgeSeriesBuilder::new(Facet::Ip, 0, 60, 120);
        ts.add_all(&records);
        let mut total_series: u64 = 0;
        for (_, s) in ts.iter() {
            total_series += s.total();
            prop_assert!((0.0..=1.0).contains(&s.activity()));
            prop_assert!(s.burstiness() >= 0.0);
        }
        let expect: u64 = records.iter().map(|r| r.bytes_total()).sum();
        prop_assert_eq!(total_series, expect, "every byte lands in a slot");

        let series: Vec<&EdgeSeries> = ts.iter().map(|(_, s)| s).collect();
        if series.len() >= 2 {
            let c = correlation(series[0], series[1]);
            let c2 = correlation(series[1], series[0]);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
            prop_assert!((c - c2).abs() < 1e-12);
        }
    }
}
