//! "What changed?" — comparing two graph snapshots.
//!
//! Continuous telemetry means an administrator can ask *what changed* between
//! any two windows, or *what happened during that past event*. A
//! [`GraphDiff`] captures the structural delta (nodes and edges appearing or
//! vanishing) and the traffic delta (edges whose volume moved materially),
//! plus scalar similarity metrics used by the Figure 5 persistence analysis.

use crate::graph::CommGraph;
use crate::node::NodeId;
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// One edge whose byte volume changed by more than the configured ratio.
#[derive(Debug, Clone, Serialize)]
pub struct EdgeChange {
    /// Lower endpoint.
    pub a: NodeId,
    /// Higher endpoint.
    pub b: NodeId,
    /// Bytes in the earlier graph.
    pub bytes_before: u64,
    /// Bytes in the later graph.
    pub bytes_after: u64,
}

impl EdgeChange {
    /// Multiplicative change, `after / before` (`inf` for new traffic).
    pub fn ratio(&self) -> f64 {
        if self.bytes_before == 0 {
            f64::INFINITY
        } else {
            self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

/// The delta between two snapshots of the same facet.
#[derive(Debug, Clone, Serialize)]
pub struct GraphDiff {
    /// Nodes present only in the later graph.
    pub added_nodes: Vec<NodeId>,
    /// Nodes present only in the earlier graph.
    pub removed_nodes: Vec<NodeId>,
    /// Edges present only in the later graph.
    pub added_edges: Vec<(NodeId, NodeId)>,
    /// Edges present only in the earlier graph.
    pub removed_edges: Vec<(NodeId, NodeId)>,
    /// Persisting edges whose byte volume changed beyond the ratio threshold.
    pub changed_edges: Vec<EdgeChange>,
    /// Jaccard similarity of the two edge sets, in `[0, 1]`.
    pub edge_jaccard: f64,
    /// Jaccard similarity of the two node sets, in `[0, 1]`.
    pub node_jaccard: f64,
}

fn edge_set(g: &CommGraph) -> HashMap<(NodeId, NodeId), u64> {
    let mut out = HashMap::with_capacity(g.edge_count());
    for i in 0..g.node_count() as u32 {
        for (j, stats) in g.neighbors(i) {
            if *j >= i {
                out.insert((g.node(i), g.node(*j)), stats.bytes());
            }
        }
    }
    out
}

/// Compute the diff from `before` to `after`.
///
/// `change_ratio` sets how big a multiplicative volume change on a
/// persisting edge must be to report it (e.g. `2.0` reports edges that at
/// least doubled or at most halved).
pub fn diff(before: &CommGraph, after: &CommGraph, change_ratio: f64) -> GraphDiff {
    assert!(change_ratio >= 1.0, "change ratio must be >= 1");
    let eb = edge_set(before);
    let ea = edge_set(after);
    let nb: HashSet<NodeId> = before.nodes().iter().copied().collect();
    let na: HashSet<NodeId> = after.nodes().iter().copied().collect();

    let mut added_nodes: Vec<NodeId> = na.difference(&nb).copied().collect();
    let mut removed_nodes: Vec<NodeId> = nb.difference(&na).copied().collect();
    added_nodes.sort_unstable();
    removed_nodes.sort_unstable();

    let mut added_edges = Vec::new();
    let mut removed_edges = Vec::new();
    let mut changed_edges = Vec::new();
    for (k, &bytes_after) in &ea {
        match eb.get(k) {
            None => added_edges.push(*k),
            Some(&bytes_before) => {
                let (lo, hi) = if bytes_before <= bytes_after {
                    (bytes_before, bytes_after)
                } else {
                    (bytes_after, bytes_before)
                };
                if lo == 0 && hi > 0 || (lo > 0 && hi as f64 / lo as f64 >= change_ratio) {
                    changed_edges.push(EdgeChange { a: k.0, b: k.1, bytes_before, bytes_after });
                }
            }
        }
    }
    for k in eb.keys() {
        if !ea.contains_key(k) {
            removed_edges.push(*k);
        }
    }
    added_edges.sort_unstable();
    removed_edges.sort_unstable();
    changed_edges.sort_by_key(|x| (x.a, x.b));

    let inter_e = ea.keys().filter(|k| eb.contains_key(*k)).count();
    let union_e = ea.len() + eb.len() - inter_e;
    let inter_n = na.intersection(&nb).count();
    let union_n = na.len() + nb.len() - inter_n;

    GraphDiff {
        added_nodes,
        removed_nodes,
        added_edges,
        removed_edges,
        changed_edges,
        edge_jaccard: if union_e == 0 { 1.0 } else { inter_e as f64 / union_e as f64 },
        node_jaccard: if union_n == 0 { 1.0 } else { inter_n as f64 / union_n as f64 },
    }
}

/// Nodes whose incident adjacency changed between two snapshots of the same
/// facet — the *dirty set* that incremental window maintenance recomputes.
///
/// A node is dirty iff it was added or removed between the snapshots, or any
/// incident edge differs in presence **or in any
/// [`EdgeStats`](crate::stats::EdgeStats) counter** (byte-direction classes
/// feed the similarity tokens downstream, so a pure volume change must
/// invalidate too). Every other node is *clean*: its neighbor list — ids and
/// stats — is identical in both graphs, which is what lets downstream
/// stages (Jaccard rows, policy synthesis) reuse prior results verbatim.
///
/// The returned ids are sorted and deduplicated.
pub fn dirty_nodes(before: &CommGraph, after: &CommGraph) -> Vec<NodeId> {
    let mut dirty = Vec::new();
    for (i, n) in after.nodes().iter().enumerate() {
        let clean = match before.index_of(n) {
            Some(bi) => incident_eq(before, bi, after, i as u32),
            None => false,
        };
        if !clean {
            dirty.push(*n);
        }
    }
    for n in before.nodes() {
        if after.index_of(n).is_none() {
            dirty.push(*n);
        }
    }
    dirty.sort_unstable();
    dirty.dedup();
    dirty
}

/// Whether a node's incident edges (neighbor identities and full stats) are
/// identical across the two snapshots. Neighbor lists are sorted by dense
/// index, and dense index order is NodeId order within each graph, so a
/// single zip compares like with like.
fn incident_eq(before: &CommGraph, bi: u32, after: &CommGraph, ai: u32) -> bool {
    let bl = before.neighbors(bi);
    let al = after.neighbors(ai);
    bl.len() == al.len()
        && bl
            .iter()
            .zip(al)
            .all(|((bj, bs), (aj, asx))| before.node(*bj) == after.node(*aj) && bs == asx)
}

impl GraphDiff {
    /// True when nothing structural changed and no edge moved past the ratio.
    pub fn is_quiet(&self) -> bool {
        self.added_nodes.is_empty()
            && self.removed_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.changed_edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::EdgeStats;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> NodeId {
        NodeId::Ip(Ipv4Addr::new(10, 0, 0, d))
    }

    fn es(bytes: u64) -> EdgeStats {
        EdgeStats { bytes_fwd: bytes, ..Default::default() }
    }

    fn graph(edges: &[(u8, u8, u64)]) -> CommGraph {
        let mut m = HashMap::new();
        for &(a, b, bytes) in edges {
            m.insert((ip(a), ip(b)), es(bytes));
        }
        CommGraph::from_edge_map("ip", 0, 3600, m)
    }

    #[test]
    fn identical_graphs_are_quiet() {
        let g = graph(&[(1, 2, 100), (2, 3, 50)]);
        let d = diff(&g, &g, 2.0);
        assert!(d.is_quiet());
        assert_eq!(d.edge_jaccard, 1.0);
        assert_eq!(d.node_jaccard, 1.0);
    }

    #[test]
    fn detects_added_and_removed_structure() {
        let before = graph(&[(1, 2, 100)]);
        let after = graph(&[(1, 2, 100), (1, 3, 10)]);
        let d = diff(&before, &after, 10.0);
        assert_eq!(d.added_nodes, vec![ip(3)]);
        assert_eq!(d.added_edges, vec![(ip(1), ip(3))]);
        assert!(d.removed_edges.is_empty());

        let back = diff(&after, &before, 10.0);
        assert_eq!(back.removed_nodes, vec![ip(3)]);
        assert_eq!(back.removed_edges, vec![(ip(1), ip(3))]);
    }

    #[test]
    fn change_ratio_gates_volume_reports() {
        let before = graph(&[(1, 2, 100), (2, 3, 100)]);
        let after = graph(&[(1, 2, 150), (2, 3, 500)]);
        let d = diff(&before, &after, 2.0);
        assert_eq!(d.changed_edges.len(), 1, "only the 5x edge is reported");
        assert_eq!(d.changed_edges[0].bytes_after, 500);
        assert_eq!(d.changed_edges[0].ratio(), 5.0);
    }

    #[test]
    fn shrinking_edges_also_reported() {
        let before = graph(&[(1, 2, 1000)]);
        let after = graph(&[(1, 2, 100)]);
        let d = diff(&before, &after, 2.0);
        assert_eq!(d.changed_edges.len(), 1);
        assert!(d.changed_edges[0].ratio() < 1.0);
    }

    #[test]
    fn jaccard_reflects_overlap() {
        let a = graph(&[(1, 2, 1), (2, 3, 1)]);
        let b = graph(&[(1, 2, 1), (3, 4, 1)]);
        let d = diff(&a, &b, 2.0);
        // Edges: {12,23} vs {12,34}: intersection 1, union 3.
        assert!((d.edge_jaccard - 1.0 / 3.0).abs() < 1e-12);
        // Nodes: {1,2,3} vs {1,2,3,4}: 3/4.
        assert!((d.node_jaccard - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_graphs_compare_cleanly() {
        let e = graph(&[]);
        let d = diff(&e, &e, 2.0);
        assert!(d.is_quiet());
        assert_eq!(d.edge_jaccard, 1.0);
    }

    #[test]
    fn dirty_nodes_empty_for_identical_graphs() {
        let g = graph(&[(1, 2, 100), (2, 3, 50)]);
        assert!(dirty_nodes(&g, &g).is_empty());
    }

    #[test]
    fn dirty_nodes_cover_added_and_removed_structure() {
        let before = graph(&[(1, 2, 100), (3, 4, 10)]);
        let after = graph(&[(1, 2, 100), (1, 5, 7)]);
        // Edge (3,4) vanished, edge (1,5) appeared: 1 gains a neighbor,
        // 3 and 4 disappear, 5 appears. 2's adjacency is untouched.
        assert_eq!(dirty_nodes(&before, &after), vec![ip(1), ip(3), ip(4), ip(5)]);
    }

    #[test]
    fn dirty_nodes_flag_pure_volume_changes() {
        let before = graph(&[(1, 2, 100), (2, 3, 50)]);
        let after = graph(&[(1, 2, 101), (2, 3, 50)]);
        // Only the (1,2) byte counter moved: both endpoints are dirty, 3 not.
        assert_eq!(dirty_nodes(&before, &after), vec![ip(1), ip(2)]);
    }

    #[test]
    fn clean_nodes_have_identical_incident_lists() {
        let before = graph(&[(1, 2, 100), (2, 3, 50), (4, 5, 9)]);
        let after = graph(&[(1, 2, 100), (2, 3, 75), (4, 5, 9)]);
        let dirty = dirty_nodes(&before, &after);
        for (i, n) in after.nodes().iter().enumerate() {
            if dirty.binary_search(n).is_ok() {
                continue;
            }
            let bi = before.index_of(n).expect("clean nodes exist in both graphs");
            let bl: Vec<_> =
                before.neighbors(bi).iter().map(|(j, s)| (before.node(*j), *s)).collect();
            let al: Vec<_> =
                after.neighbors(i as u32).iter().map(|(j, s)| (after.node(*j), *s)).collect();
            assert_eq!(bl, al, "clean node {n} must keep its exact adjacency");
        }
    }
}
