//! HyperLogLog cardinality estimation for graphs too large to materialize.
//!
//! Table 1 reports IP-port graphs with up to 12 M nodes and 79 M edges.
//! Materializing that graph needs gigabytes; *counting* it needs kilobytes.
//! [`GraphCardinality`] streams records and estimates distinct node and edge
//! counts under any facet with two HyperLogLog sketches — the approach a
//! low-COGS analytics tier would actually deploy.

use crate::node::{Facet, NodeId};
use flowlog::record::ConnSummary;

/// Default number of register-index bits; 2^14 = 16384 registers ≈ 0.8%
/// standard error, 16 KiB per sketch.
const P: u32 = 14;

/// Classic HyperLogLog distinct counter over 64-bit hashes.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    /// Register-index bits; the sketch holds `2^p` one-byte registers.
    p: u32,
    registers: Vec<u8>,
}

impl Default for HyperLogLog {
    fn default() -> Self {
        Self::new()
    }
}

impl HyperLogLog {
    /// Empty sketch at the default precision (14 bits, 16 KiB).
    pub fn new() -> Self {
        Self::with_precision(P)
    }

    /// Empty sketch with `2^p` registers. Standard error ≈ `1.04 / √(2^p)`,
    /// memory `2^p` bytes — `p = 10` (1 KiB, ~3.3% error) suits fleets of
    /// per-node sketches; the 16 KiB default suits one-per-stream counters.
    pub fn with_precision(p: u32) -> Self {
        assert!((4..=18).contains(&p), "precision must be in 4..=18, got {p}");
        HyperLogLog { p, registers: vec![0; 1 << p] }
    }

    /// Insert a pre-hashed item.
    pub fn insert_hash(&mut self, h: u64) {
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        // Rank: leading zeros of the remaining bits, plus one. A zero
        // remainder gets the maximum rank.
        let rank = if rest == 0 { (64 - self.p + 1) as u8 } else { rest.leading_zeros() as u8 + 1 };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Insert a hashable item (uses FNV-1a with avalanche finish).
    pub fn insert<T: std::hash::Hash>(&mut self, item: &T) {
        self.insert_hash(hash64(item));
    }

    /// Estimated distinct count, with small-range (linear counting) and
    /// standard bias corrections.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / (1u64 << r) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Linear counting for the small range.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Merge another sketch (union of the underlying sets). Both sketches
    /// must share a precision: registers only line up under one index split.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "cannot merge sketches of different precisions");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    /// Memory used by the sketch, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }
}

/// 64-bit FNV-1a over the `Hash` representation, finished with a splitmix64
/// avalanche so high bits (used for register selection) are well mixed.
pub fn hash64<T: std::hash::Hash>(item: &T) -> u64 {
    struct Fnv(u64);
    impl std::hash::Hasher for Fnv {
        fn finish(&self) -> u64 {
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    std::hash::Hash::hash(item, &mut h);
    std::hash::Hasher::finish(&h)
}

/// Streaming node/edge cardinality estimator for one facet.
#[derive(Debug, Clone)]
pub struct GraphCardinality {
    facet: Facet,
    nodes: HyperLogLog,
    edges: HyperLogLog,
    records: u64,
}

impl GraphCardinality {
    /// New estimator for `facet`.
    pub fn new(facet: Facet) -> Self {
        GraphCardinality { facet, nodes: HyperLogLog::new(), edges: HyperLogLog::new(), records: 0 }
    }

    /// Offer one record.
    pub fn add(&mut self, r: &ConnSummary) {
        self.records += 1;
        let (a, b) = self.facet.endpoints(r);
        self.nodes.insert(&a);
        self.nodes.insert(&b);
        let key: (NodeId, NodeId) = if a <= b { (a, b) } else { (b, a) };
        self.edges.insert(&key);
    }

    /// Estimated distinct node count.
    pub fn node_estimate(&self) -> f64 {
        self.nodes.estimate()
    }

    /// Estimated distinct edge count.
    pub fn edge_estimate(&self) -> f64 {
        self.edges.estimate()
    }

    /// Records offered so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total sketch memory in bytes — the COGS story: constant regardless of
    /// graph size.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.memory_bytes() + self.edges.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowlog::record::FlowKey;
    use std::net::Ipv4Addr;

    #[test]
    fn small_counts_are_near_exact() {
        let mut h = HyperLogLog::new();
        for i in 0..100u64 {
            h.insert(&i);
        }
        let e = h.estimate();
        assert!((e - 100.0).abs() < 3.0, "estimate {e} for 100 items");
    }

    #[test]
    fn large_counts_within_two_percent() {
        let mut h = HyperLogLog::new();
        let n = 1_000_000u64;
        for i in 0..n {
            h.insert(&i);
        }
        let e = h.estimate();
        let err = (e - n as f64).abs() / n as f64;
        assert!(err < 0.02, "relative error {err} at n={n}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new();
        for _ in 0..10 {
            for i in 0..1000u64 {
                h.insert(&i);
            }
        }
        let e = h.estimate();
        assert!((e - 1000.0).abs() / 1000.0 < 0.05, "estimate {e}");
    }

    #[test]
    fn merge_is_union() {
        let mut a = HyperLogLog::new();
        let mut b = HyperLogLog::new();
        for i in 0..5000u64 {
            a.insert(&i);
        }
        for i in 2500..7500u64 {
            b.insert(&i);
        }
        a.merge(&b);
        let e = a.estimate();
        assert!((e - 7500.0).abs() / 7500.0 < 0.03, "union estimate {e}");
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        assert_eq!(HyperLogLog::new().estimate(), 0.0);
    }

    #[test]
    fn graph_cardinality_tracks_facet() {
        let mut gc = GraphCardinality::new(Facet::IpPort);
        // 100 clients, each with 10 distinct ephemeral ports, one server.
        for c in 0..100u32 {
            for p in 0..10u16 {
                let r = ConnSummary {
                    ts: 0,
                    key: FlowKey::tcp(
                        Ipv4Addr::from(0x0a00_0000 + c),
                        40_000 + p,
                        Ipv4Addr::new(10, 1, 0, 1),
                        443,
                    ),
                    pkts_sent: 1,
                    pkts_rcvd: 1,
                    bytes_sent: 10,
                    bytes_rcvd: 10,
                };
                gc.add(&r);
            }
        }
        // 1000 client endpoints + 1 server endpoint; 1000 edges.
        let nodes = gc.node_estimate();
        let edges = gc.edge_estimate();
        assert!((nodes - 1001.0).abs() / 1001.0 < 0.05, "nodes {nodes}");
        assert!((edges - 1000.0).abs() / 1000.0 < 0.05, "edges {edges}");
        assert_eq!(gc.records(), 1000);
        assert!(gc.memory_bytes() <= 64 * 1024);
    }
}
