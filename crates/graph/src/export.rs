//! Graph exports beyond DOT: GraphML (Gephi/yEd/NetworkX) and edge-list CSV.
//!
//! The DOT export on [`crate::CommGraph`] serves quick `graphviz` renders;
//! larger graphs (the Figure 2 Portal graph has ~5K nodes) are better
//! explored in Gephi or programmatically — both of which speak GraphML.

use crate::graph::CommGraph;
use crate::node::NodeId;
use std::fmt::Write as _;

/// Escape the five XML special characters.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Render the graph as GraphML. `groups` optionally attaches a `role`
/// attribute per node (e.g. inferred role labels); edges carry `bytes`,
/// `pkts`, and `conns` attributes.
pub fn to_graphml(g: &CommGraph, groups: Option<&[usize]>) -> String {
    let mut o = String::with_capacity(g.node_count() * 96 + g.edge_count() * 128);
    o.push_str(r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    o.push('\n');
    o.push_str(r#"<graphml xmlns="http://graphml.graphdrawing.org/xmlns">"#);
    o.push('\n');
    o.push_str(r#"  <key id="label" for="node" attr.name="label" attr.type="string"/>"#);
    o.push('\n');
    o.push_str(r#"  <key id="role" for="node" attr.name="role" attr.type="int"/>"#);
    o.push('\n');
    o.push_str(r#"  <key id="bytes" for="edge" attr.name="bytes" attr.type="long"/>"#);
    o.push('\n');
    o.push_str(r#"  <key id="pkts" for="edge" attr.name="pkts" attr.type="long"/>"#);
    o.push('\n');
    o.push_str(r#"  <key id="conns" for="edge" attr.name="conns" attr.type="long"/>"#);
    o.push('\n');
    let _ = writeln!(o, r#"  <graph id="{}" edgedefault="undirected">"#, g.facet_name());
    for (i, n) in g.nodes().iter().enumerate() {
        let _ = write!(
            o,
            r#"    <node id="n{i}"><data key="label">{}</data>"#,
            xml_escape(&n.to_string())
        );
        if let Some(gr) = groups.and_then(|g2| g2.get(i)) {
            let _ = write!(o, r#"<data key="role">{gr}</data>"#);
        }
        o.push_str("</node>\n");
    }
    let mut edge_id = 0usize;
    for i in 0..g.node_count() as u32 {
        for (j, stats) in g.neighbors(i) {
            if *j < i {
                continue;
            }
            let _ = writeln!(
                o,
                r#"    <edge id="e{edge_id}" source="n{i}" target="n{j}"><data key="bytes">{}</data><data key="pkts">{}</data><data key="conns">{}</data></edge>"#,
                stats.bytes(),
                stats.pkts(),
                stats.conns
            );
            edge_id += 1;
        }
    }
    o.push_str("  </graph>\n</graphml>\n");
    o
}

/// Render the graph as an edge-list CSV:
/// `a,b,bytes,pkts,conns,bytes_fwd,bytes_rev`.
pub fn to_edge_csv(g: &CommGraph) -> String {
    let mut o = String::from("a,b,bytes,pkts,conns,bytes_fwd,bytes_rev\n");
    for i in 0..g.node_count() as u32 {
        for (j, stats) in g.neighbors(i) {
            if *j < i {
                continue;
            }
            let _ = writeln!(
                o,
                "{},{},{},{},{},{},{}",
                g.node(i),
                g.node(*j),
                stats.bytes(),
                stats.pkts(),
                stats.conns,
                stats.bytes_fwd,
                stats.bytes_rev
            );
        }
    }
    o
}

/// A minimal check that a NodeId's display form is CSV-safe (no commas);
/// all current variants are.
#[allow(dead_code)]
fn csv_safe(n: &NodeId) -> bool {
    !n.to_string().contains(',')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::EdgeStats;
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    fn graph() -> CommGraph {
        let mut edges = HashMap::new();
        edges.insert(
            (
                NodeId::Ip(Ipv4Addr::new(10, 0, 0, 1)),
                NodeId::IpPort(Ipv4Addr::new(10, 0, 0, 2), 443),
            ),
            EdgeStats { bytes_fwd: 1000, bytes_rev: 500, pkts_fwd: 3, pkts_rev: 2, conns: 4 },
        );
        edges.insert(
            (NodeId::Ip(Ipv4Addr::new(10, 0, 0, 1)), NodeId::Other),
            EdgeStats { bytes_fwd: 7, conns: 1, ..Default::default() },
        );
        CommGraph::from_edge_map("ip", 0, 3600, edges)
    }

    #[test]
    fn graphml_structure() {
        let g = graph();
        let xml = to_graphml(&g, Some(&[0, 1, 0]));
        assert!(xml.starts_with("<?xml"));
        assert_eq!(xml.matches("<node ").count(), 3);
        assert_eq!(xml.matches("<edge ").count(), 2);
        assert!(xml.contains(r#"<data key="bytes">1500</data>"#));
        assert!(xml.contains(r#"<data key="role">1</data>"#));
        assert!(xml.contains("10.0.0.2:443"));
        assert!(xml.ends_with("</graphml>\n"));
    }

    #[test]
    fn graphml_without_groups_omits_roles() {
        let xml = to_graphml(&graph(), None);
        assert!(!xml.contains(r#"<data key="role">"#));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
    }

    #[test]
    fn edge_csv_rows() {
        let g = graph();
        let csv = to_edge_csv(&g);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 edges");
        assert!(lines.iter().skip(1).any(|l| l.contains("1500,5,4,1000,500")));
        for n in g.nodes() {
            assert!(super::csv_safe(n));
        }
    }

    #[test]
    fn empty_graph_exports() {
        let g = CommGraph::from_edge_map("ip", 0, 60, HashMap::new());
        assert!(to_graphml(&g, None).contains("</graphml>"));
        assert_eq!(to_edge_csv(&g).lines().count(), 1);
    }
}
