//! The immutable communication-graph snapshot.

use crate::error::{Error, Result};
use crate::node::NodeId;
use crate::stats::{EdgeStats, NodeStats};
use serde::Serialize;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A communication graph over one time window: nodes under some facet,
/// undirected edges carrying byte/packet/connection counters.
///
/// Nodes are stored sorted by [`NodeId`], which — because the simulator
/// assigns addresses role-major — groups same-role replicas contiguously and
/// gives adjacency matrices their banded structure. Adjacency is CSR-style:
/// one sorted neighbor list per node, each edge present in both endpoint
/// lists with its stats oriented *outward* from the owning node.
#[derive(Debug, Clone, Serialize)]
pub struct CommGraph {
    facet_name: String,
    window_start: u64,
    window_len: u64,
    nodes: Vec<NodeId>,
    #[serde(skip)]
    index: HashMap<NodeId, u32>,
    adj: Vec<Vec<(u32, EdgeStats)>>,
    node_stats: Vec<NodeStats>,
    totals: EdgeStats,
    edge_count: usize,
}

impl CommGraph {
    /// Assemble a graph from an edge map. Used by the builder and by tests;
    /// edge keys must be `(lower, higher)` ordered pairs (self-loops allowed)
    /// with stats oriented lower→higher.
    pub fn from_edge_map(
        facet_name: impl Into<String>,
        window_start: u64,
        window_len: u64,
        edges: HashMap<(NodeId, NodeId), EdgeStats>,
    ) -> Self {
        let mut node_set: Vec<NodeId> = edges.keys().flat_map(|(a, b)| [*a, *b]).collect();
        node_set.sort_unstable();
        node_set.dedup();
        let index: HashMap<NodeId, u32> =
            node_set.iter().enumerate().map(|(i, n)| (*n, i as u32)).collect();

        let mut adj: Vec<Vec<(u32, EdgeStats)>> = vec![Vec::new(); node_set.len()];
        let mut node_stats: Vec<NodeStats> = vec![NodeStats::default(); node_set.len()];
        let mut totals = EdgeStats::default();
        let edge_count = edges.len();

        for ((a, b), stats) in &edges {
            let (ia, ib) = (index[a], index[b]);
            debug_assert!(a <= b, "edge keys must be ordered");
            totals.absorb(stats);
            if ia == ib {
                adj[ia as usize].push((ib, *stats));
                let ns = &mut node_stats[ia as usize];
                ns.bytes += stats.bytes();
                ns.pkts += stats.pkts();
                ns.conns += stats.conns;
                ns.degree += 1;
            } else {
                adj[ia as usize].push((ib, *stats));
                adj[ib as usize].push((ia, stats.reversed()));
                for (i, s) in [(ia, stats), (ib, stats)] {
                    let ns = &mut node_stats[i as usize];
                    ns.bytes += s.bytes();
                    ns.pkts += s.pkts();
                    ns.conns += s.conns;
                    ns.degree += 1;
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable_by_key(|(n, _)| *n);
        }
        CommGraph {
            facet_name: facet_name.into(),
            window_start,
            window_len,
            nodes: node_set,
            index,
            adj,
            node_stats,
            totals,
            edge_count,
        }
    }

    /// Name of the facet this graph was built under (`"ip"`, `"ip-port"`, …).
    pub fn facet_name(&self) -> &str {
        &self.facet_name
    }

    /// Start of the time window (seconds since epoch).
    pub fn window_start(&self) -> u64 {
        self.window_start
    }

    /// Length of the time window in seconds.
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges (self-loops count once).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// All nodes, sorted by id.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The node at a dense index.
    pub fn node(&self, idx: u32) -> NodeId {
        self.nodes[idx as usize]
    }

    /// Dense index of a node id.
    pub fn index_of(&self, node: &NodeId) -> Option<u32> {
        self.index.get(node).copied()
    }

    /// Neighbor list of a node: `(neighbor index, stats oriented outward)`.
    pub fn neighbors(&self, idx: u32) -> &[(u32, EdgeStats)] {
        &self.adj[idx as usize]
    }

    /// Stats of the edge between two nodes, oriented `a → b`, if present.
    pub fn edge(&self, a: u32, b: u32) -> Option<EdgeStats> {
        let list = &self.adj[a as usize];
        list.binary_search_by_key(&b, |(n, _)| *n).ok().map(|i| list[i].1)
    }

    /// Aggregate counters of a node.
    pub fn node_stats(&self, idx: u32) -> NodeStats {
        self.node_stats[idx as usize]
    }

    /// Whole-graph traffic totals.
    pub fn totals(&self) -> EdgeStats {
        self.totals
    }

    /// Node indices sorted by descending byte contribution.
    pub fn nodes_by_bytes(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.nodes.len() as u32).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.node_stats[i as usize].bytes));
        idx
    }

    /// Symmetric dense matrix of bytes exchanged between node pairs, in node
    /// order — the object Figures 4/5 visualize and PCA consumes.
    ///
    /// Returns an error for graphs too large to densify (guard against
    /// accidentally materializing an n² matrix for a 10⁶-node graph).
    pub fn byte_matrix(&self, max_nodes: usize) -> Result<Vec<Vec<f64>>> {
        let n = self.nodes.len();
        if n > max_nodes {
            return Err(Error::InvalidConfig(format!(
                "graph has {n} nodes, above the densification cap {max_nodes}"
            )));
        }
        let mut m = vec![vec![0.0f64; n]; n];
        for (i, list) in self.adj.iter().enumerate() {
            for (j, stats) in list {
                m[i][*j as usize] = stats.bytes() as f64;
            }
        }
        Ok(m)
    }

    /// Graphviz DOT rendering. `groups` optionally assigns each node a group
    /// (e.g. an inferred role); nodes in the same group share a color. Edge
    /// pen width scales with log-bytes.
    pub fn to_dot(&self, groups: Option<&[usize]>) -> String {
        const PALETTE: [&str; 12] = [
            "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
            "#9c755f", "#bab0ac", "#1f77b4", "#2ca02c",
        ];
        let mut out = String::new();
        out.push_str("graph commgraph {\n  overlap=false;\n  node [style=filled];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let color = groups
                .and_then(|g| g.get(i))
                .map(|&g| PALETTE[g % PALETTE.len()])
                .unwrap_or("#cccccc");
            let _ = writeln!(out, "  n{i} [label=\"{n}\", fillcolor=\"{color}\"];");
        }
        for (i, list) in self.adj.iter().enumerate() {
            for (j, stats) in list {
                if (*j as usize) < i {
                    continue; // emit each undirected edge once
                }
                let w = 0.3 + (stats.bytes().max(1) as f64).log10() * 0.4;
                let _ = writeln!(out, "  n{i} -- n{j} [penwidth={w:.2}];");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Compact JSON summary (counts, totals, top talkers) for experiment
    /// artifacts.
    pub fn summary_json(&self, top_k: usize) -> serde_json::Value {
        let top: Vec<serde_json::Value> = self
            .nodes_by_bytes()
            .into_iter()
            .take(top_k)
            .map(|i| {
                let ns = self.node_stats(i);
                serde_json::json!({
                    "node": self.node(i).to_string(),
                    "bytes": ns.bytes,
                    "degree": ns.degree,
                })
            })
            .collect();
        serde_json::json!({
            "facet": self.facet_name,
            "window_start": self.window_start,
            "window_len": self.window_len,
            "nodes": self.node_count(),
            "edges": self.edge_count(),
            "total_bytes": self.totals.bytes(),
            "total_conns": self.totals.conns,
            "top_talkers": top,
        })
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index pairs are clearest for symmetry checks
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> NodeId {
        NodeId::Ip(Ipv4Addr::new(10, 0, 0, d))
    }

    fn edge(bf: u64, br: u64, conns: u64) -> EdgeStats {
        EdgeStats { bytes_fwd: bf, bytes_rev: br, pkts_fwd: bf / 100, pkts_rev: br / 100, conns }
    }

    fn triangle() -> CommGraph {
        let mut edges = HashMap::new();
        edges.insert((ip(1), ip(2)), edge(1000, 500, 3));
        edges.insert((ip(2), ip(3)), edge(200, 100, 1));
        edges.insert((ip(1), ip(3)), edge(50, 25, 2));
        CommGraph::from_edge_map("ip", 0, 3600, edges)
    }

    #[test]
    fn counts_and_lookup() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.index_of(&ip(2)).is_some());
        assert!(g.index_of(&ip(9)).is_none());
    }

    #[test]
    fn adjacency_is_symmetric_with_oriented_stats() {
        let g = triangle();
        let (a, b) = (g.index_of(&ip(1)).unwrap(), g.index_of(&ip(2)).unwrap());
        let ab = g.edge(a, b).unwrap();
        let ba = g.edge(b, a).unwrap();
        assert_eq!(ab.bytes_fwd, 1000);
        assert_eq!(ba.bytes_fwd, 500, "stats flip when viewed from the other end");
        assert_eq!(ab.bytes(), ba.bytes());
    }

    #[test]
    fn node_stats_accumulate_incident_edges() {
        let g = triangle();
        let i1 = g.index_of(&ip(1)).unwrap();
        let ns = g.node_stats(i1);
        assert_eq!(ns.bytes, 1500 + 75);
        assert_eq!(ns.degree, 2);
        assert_eq!(ns.conns, 5);
    }

    #[test]
    fn totals_count_each_edge_once() {
        let g = triangle();
        assert_eq!(g.totals().bytes(), 1875);
        assert_eq!(g.totals().conns, 6);
    }

    #[test]
    fn byte_matrix_is_symmetric() {
        let g = triangle();
        let m = g.byte_matrix(10).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
            assert_eq!(m[i][i], 0.0);
        }
        assert!(g.byte_matrix(2).is_err(), "cap is enforced");
    }

    #[test]
    fn self_loop_counted_once() {
        let mut edges = HashMap::new();
        edges.insert((ip(1), ip(1)), edge(100, 0, 1));
        let g = CommGraph::from_edge_map("service", 0, 60, edges);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_stats(0).degree, 1);
        assert_eq!(g.totals().bytes(), 100);
        let m = g.byte_matrix(10).unwrap();
        assert_eq!(m[0][0], 100.0);
    }

    #[test]
    fn nodes_by_bytes_ranks_heaviest_first() {
        let g = triangle();
        let order = g.nodes_by_bytes();
        // ip(1) (1575) > ip(2) (1800)? ip(2): edges (1,2)=1500 + (2,3)=300 = 1800.
        assert_eq!(g.node(order[0]), ip(2));
    }

    #[test]
    fn dot_contains_nodes_edges_and_groups() {
        let g = triangle();
        let dot = g.to_dot(Some(&[0, 0, 1]));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("10.0.0.1"));
        assert_eq!(dot.matches(" -- ").count(), 3);
        // Same group ⇒ same color string appears at least twice.
        let color_count = dot.matches("#4e79a7").count();
        assert_eq!(color_count, 2);
    }

    #[test]
    fn summary_json_has_expected_fields() {
        let g = triangle();
        let j = g.summary_json(2);
        assert_eq!(j["nodes"], 3);
        assert_eq!(j["edges"], 3);
        assert_eq!(j["top_talkers"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CommGraph::from_edge_map("ip", 0, 60, HashMap::new());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.byte_matrix(10).unwrap().is_empty());
    }
}
