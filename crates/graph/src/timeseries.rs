//! Per-edge traffic time series — the paper's second graph representation:
//! "We can generate a time-series of graphs **or embed timeseries in the
//! node and edge attributes of one graph**."
//!
//! [`EdgeSeriesBuilder`] accumulates, per undirected node pair, a byte
//! series at the summary cadence. The series power analyses a scalar edge
//! weight cannot: correlating edges (do these two conversations breathe
//! together? — the temporal cousin of the proportionality policy), and
//! profiling an edge's activity shape (constant control-plane hum vs bursty
//! batch transfer).

use crate::node::{Facet, NodeId};
use flowlog::record::ConnSummary;
use flowlog::time::bucket_index;
use serde::Serialize;
use std::collections::HashMap;

/// A byte series for one edge: one slot per interval of the window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EdgeSeries {
    /// Bytes per interval (dense; quiet intervals are zero).
    pub bytes: Vec<u64>,
}

impl EdgeSeries {
    /// Total bytes over the window.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Fraction of intervals with any traffic.
    pub fn activity(&self) -> f64 {
        if self.bytes.is_empty() {
            return 0.0;
        }
        self.bytes.iter().filter(|&&b| b > 0).count() as f64 / self.bytes.len() as f64
    }

    /// Coefficient of variation (σ/µ) of the per-interval bytes: ~0 for a
    /// steady hum, large for bursts. Zero-mean series return 0.
    pub fn burstiness(&self) -> f64 {
        let n = self.bytes.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.total() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var =
            self.bytes.iter().map(|&b| (b as f64 - mean) * (b as f64 - mean)).sum::<f64>() / n;
        var.sqrt() / mean
    }
}

/// Pearson correlation of two equal-length series; 0 when either is
/// constant.
pub fn correlation(a: &EdgeSeries, b: &EdgeSeries) -> f64 {
    let n = a.bytes.len().min(b.bytes.len());
    if n < 2 {
        return 0.0;
    }
    let (ma, mb) = (
        a.bytes[..n].iter().sum::<u64>() as f64 / n as f64,
        b.bytes[..n].iter().sum::<u64>() as f64 / n as f64,
    );
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let (da, db) = (a.bytes[i] as f64 - ma, b.bytes[i] as f64 - mb);
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 1e-12 || vb <= 1e-12 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Accumulates per-edge byte series over a window of `intervals` slots of
/// `interval_secs` each, starting at `window_start`.
#[derive(Debug)]
pub struct EdgeSeriesBuilder {
    facet: Facet,
    window_start: u64,
    interval_secs: u64,
    intervals: usize,
    series: HashMap<(NodeId, NodeId), EdgeSeries>,
}

impl EdgeSeriesBuilder {
    /// New builder covering `[window_start, window_start + intervals×secs)`.
    ///
    /// # Panics
    /// Panics if `interval_secs` or `intervals` is zero.
    pub fn new(facet: Facet, window_start: u64, interval_secs: u64, intervals: usize) -> Self {
        assert!(interval_secs > 0, "interval must be positive");
        assert!(intervals > 0, "need at least one interval");
        EdgeSeriesBuilder { facet, window_start, interval_secs, intervals, series: HashMap::new() }
    }

    /// Offer one record; records outside the window are ignored.
    pub fn add(&mut self, r: &ConnSummary) {
        if r.ts < self.window_start {
            return;
        }
        let slot = (bucket_index(r.ts, self.interval_secs)
            - bucket_index(self.window_start, self.interval_secs)) as usize;
        if slot >= self.intervals {
            return;
        }
        let (a, b) = self.facet.endpoints(r);
        let key = if a <= b { (a, b) } else { (b, a) };
        let intervals = self.intervals;
        let s = self.series.entry(key).or_insert_with(|| EdgeSeries { bytes: vec![0; intervals] });
        s.bytes[slot] += r.bytes_total();
    }

    /// Offer a batch.
    pub fn add_all<'a>(&mut self, records: impl IntoIterator<Item = &'a ConnSummary>) {
        for r in records {
            self.add(r);
        }
    }

    /// Number of edges with series.
    pub fn edge_count(&self) -> usize {
        self.series.len()
    }

    /// The series of one edge (endpoints in either order).
    pub fn series(&self, a: &NodeId, b: &NodeId) -> Option<&EdgeSeries> {
        let key = if a <= b { (*a, *b) } else { (*b, *a) };
        self.series.get(&key)
    }

    /// Iterate all `(edge, series)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &EdgeSeries)> {
        self.series.iter()
    }

    /// The most-correlated other edge for `edge`, among edges above
    /// `min_total` bytes — "who breathes with whom".
    pub fn most_correlated(
        &self,
        edge: &(NodeId, NodeId),
        min_total: u64,
    ) -> Option<((NodeId, NodeId), f64)> {
        let base = self.series.get(edge)?;
        self.series
            .iter()
            .filter(|(k, s)| *k != edge && s.total() >= min_total)
            .map(|(k, s)| (*k, correlation(base, s)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowlog::record::FlowKey;
    use std::net::Ipv4Addr;

    fn rec(ts: u64, l: u8, r: u8, bytes: u64) -> ConnSummary {
        ConnSummary {
            ts,
            key: FlowKey::tcp(Ipv4Addr::new(10, 0, 0, l), 40_000, Ipv4Addr::new(10, 0, 0, r), 443),
            pkts_sent: bytes / 1000 + 1,
            pkts_rcvd: 0,
            bytes_sent: bytes,
            bytes_rcvd: 0,
        }
    }

    fn node(d: u8) -> NodeId {
        NodeId::Ip(Ipv4Addr::new(10, 0, 0, d))
    }

    #[test]
    fn series_accumulate_per_slot() {
        let mut b = EdgeSeriesBuilder::new(Facet::Ip, 0, 60, 5);
        b.add(&rec(0, 1, 2, 100));
        b.add(&rec(30, 1, 2, 50));
        b.add(&rec(240, 1, 2, 10));
        let s = b.series(&node(1), &node(2)).expect("edge exists");
        assert_eq!(s.bytes, vec![150, 0, 0, 0, 10]);
        assert_eq!(s.total(), 160);
        assert!((s.activity() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn direction_independent_lookup() {
        let mut b = EdgeSeriesBuilder::new(Facet::Ip, 0, 60, 2);
        b.add(&rec(0, 2, 1, 100)); // reported from the higher endpoint
        assert!(b.series(&node(1), &node(2)).is_some());
        assert!(b.series(&node(2), &node(1)).is_some());
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn out_of_window_records_ignored() {
        let mut b = EdgeSeriesBuilder::new(Facet::Ip, 3600, 60, 2);
        b.add(&rec(0, 1, 2, 100)); // before
        b.add(&rec(7300, 1, 2, 100)); // after
        assert_eq!(b.edge_count(), 0);
    }

    #[test]
    fn burstiness_separates_hum_from_bursts() {
        let hum = EdgeSeries { bytes: vec![100, 100, 100, 100] };
        let burst = EdgeSeries { bytes: vec![0, 0, 400, 0] };
        assert!(hum.burstiness() < 0.01);
        assert!(burst.burstiness() > 1.5);
        assert_eq!(EdgeSeries { bytes: vec![] }.burstiness(), 0.0);
    }

    #[test]
    fn correlation_tracks_co_breathing() {
        let a = EdgeSeries { bytes: vec![10, 20, 30, 20, 10] };
        let b = EdgeSeries { bytes: vec![100, 200, 300, 200, 100] };
        let c = EdgeSeries { bytes: vec![300, 200, 100, 200, 300] };
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-9, "scaled copy ⇒ +1");
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-9, "mirrored ⇒ −1");
        let flat = EdgeSeries { bytes: vec![5, 5, 5, 5, 5] };
        assert_eq!(correlation(&a, &flat), 0.0, "constant series correlate with nothing");
    }

    #[test]
    fn most_correlated_finds_the_coupled_edge() {
        let mut b = EdgeSeriesBuilder::new(Facet::Ip, 0, 60, 4);
        // Edge (1,2) and (3,4) rise together; (5,6) is flat.
        for (slot, volume) in [(0u64, 10u64), (1, 40), (2, 90), (3, 20)] {
            b.add(&rec(slot * 60, 1, 2, volume));
            b.add(&rec(slot * 60, 3, 4, volume * 7));
            b.add(&rec(slot * 60, 5, 6, 50));
        }
        let (best, corr) = b.most_correlated(&(node(1), node(2)), 1).expect("other edges exist");
        assert_eq!(best, (node(3), node(4)));
        assert!(corr > 0.99);
    }
}
