//! Time series of graph snapshots (the *dynamic* in dynamic communication
//! graphs).
//!
//! A [`GraphSequence`] holds consecutive windows of one facet and answers the
//! questions the paper's Figure 5 timelapse poses: how persistent are the
//! communication patterns hour over hour, and which windows broke from the
//! pattern?

use crate::diff::{diff, GraphDiff};
use crate::error::{Error, Result};
use crate::graph::CommGraph;
use serde::Serialize;

/// Consecutive snapshots of the same facet, in time order.
#[derive(Debug, Default)]
pub struct GraphSequence {
    graphs: Vec<CommGraph>,
}

/// Scalar persistence metrics between adjacent windows.
#[derive(Debug, Clone, Serialize)]
pub struct PersistenceReport {
    /// Edge-set Jaccard similarity per adjacent pair.
    pub edge_jaccard: Vec<f64>,
    /// Node-set Jaccard similarity per adjacent pair.
    pub node_jaccard: Vec<f64>,
    /// Mean edge Jaccard across the sequence.
    pub mean_edge_jaccard: f64,
    /// Index (into adjacent pairs) of the least-similar transition, if any.
    pub most_changed_transition: Option<usize>,
}

impl GraphSequence {
    /// Empty sequence.
    pub fn new() -> Self {
        GraphSequence::default()
    }

    /// Build from pre-ordered snapshots, validating facet and time order.
    pub fn from_graphs(graphs: Vec<CommGraph>) -> Result<Self> {
        let mut s = GraphSequence::new();
        for g in graphs {
            s.push(g)?;
        }
        Ok(s)
    }

    /// Append the next window. It must share the facet of, and start no
    /// earlier than the end of, the previous window.
    pub fn push(&mut self, g: CommGraph) -> Result<()> {
        if let Some(last) = self.graphs.last() {
            if last.facet_name() != g.facet_name() {
                return Err(Error::Incompatible(format!(
                    "sequence is {}, pushed {}",
                    last.facet_name(),
                    g.facet_name()
                )));
            }
            if g.window_start() < last.window_start() + last.window_len() {
                return Err(Error::Incompatible(format!(
                    "window starting {} overlaps previous window",
                    g.window_start()
                )));
            }
        }
        self.graphs.push(g);
        Ok(())
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when no windows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The snapshots, in time order.
    pub fn graphs(&self) -> &[CommGraph] {
        &self.graphs
    }

    /// Diff between windows `i` and `i + 1`.
    pub fn diff_adjacent(&self, i: usize, change_ratio: f64) -> Result<GraphDiff> {
        if i + 1 >= self.graphs.len() {
            return Err(Error::InvalidConfig(format!(
                "no adjacent pair at index {i} in a {}-window sequence",
                self.graphs.len()
            )));
        }
        Ok(diff(&self.graphs[i], &self.graphs[i + 1], change_ratio))
    }

    /// Persistence metrics across all adjacent pairs.
    pub fn persistence(&self, change_ratio: f64) -> PersistenceReport {
        let mut edge_jaccard = Vec::new();
        let mut node_jaccard = Vec::new();
        for i in 0..self.graphs.len().saturating_sub(1) {
            let d = diff(&self.graphs[i], &self.graphs[i + 1], change_ratio);
            edge_jaccard.push(d.edge_jaccard);
            node_jaccard.push(d.node_jaccard);
        }
        let mean_edge_jaccard = if edge_jaccard.is_empty() {
            1.0
        } else {
            edge_jaccard.iter().sum::<f64>() / edge_jaccard.len() as f64
        };
        let most_changed_transition =
            edge_jaccard.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
        PersistenceReport { edge_jaccard, node_jaccard, mean_edge_jaccard, most_changed_transition }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::stats::EdgeStats;
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    fn graph(start: u64, edges: &[(u8, u8, u64)]) -> CommGraph {
        let mut m = HashMap::new();
        for &(a, b, bytes) in edges {
            m.insert(
                (NodeId::Ip(Ipv4Addr::new(10, 0, 0, a)), NodeId::Ip(Ipv4Addr::new(10, 0, 0, b))),
                EdgeStats { bytes_fwd: bytes, ..Default::default() },
            );
        }
        CommGraph::from_edge_map("ip", start, 3600, m)
    }

    #[test]
    fn push_enforces_time_order() {
        let mut s = GraphSequence::new();
        s.push(graph(0, &[(1, 2, 1)])).unwrap();
        s.push(graph(3600, &[(1, 2, 1)])).unwrap();
        assert!(s.push(graph(1800, &[(1, 2, 1)])).is_err(), "overlap rejected");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn push_enforces_same_facet() {
        let mut s = GraphSequence::new();
        s.push(graph(0, &[(1, 2, 1)])).unwrap();
        let other = CommGraph::from_edge_map("ip-port", 3600, 3600, HashMap::new());
        assert!(matches!(s.push(other), Err(Error::Incompatible(_))));
    }

    #[test]
    fn persistence_of_stable_sequence_is_high() {
        let s = GraphSequence::from_graphs(vec![
            graph(0, &[(1, 2, 100), (2, 3, 50)]),
            graph(3600, &[(1, 2, 110), (2, 3, 45)]),
            graph(7200, &[(1, 2, 95), (2, 3, 55)]),
        ])
        .unwrap();
        let p = s.persistence(10.0);
        assert_eq!(p.edge_jaccard, vec![1.0, 1.0]);
        assert_eq!(p.mean_edge_jaccard, 1.0);
    }

    #[test]
    fn persistence_flags_the_disrupted_hour() {
        let s = GraphSequence::from_graphs(vec![
            graph(0, &[(1, 2, 100), (2, 3, 50)]),
            graph(3600, &[(1, 2, 100), (2, 3, 50)]),
            graph(7200, &[(7, 8, 9)]), // everything changed
        ])
        .unwrap();
        let p = s.persistence(2.0);
        assert_eq!(p.most_changed_transition, Some(1));
        assert!(p.edge_jaccard[1] < p.edge_jaccard[0]);
    }

    #[test]
    fn diff_adjacent_bounds_checked() {
        let s = GraphSequence::from_graphs(vec![graph(0, &[(1, 2, 1)])]).unwrap();
        assert!(s.diff_adjacent(0, 2.0).is_err());
    }

    #[test]
    fn empty_sequence_is_consistent() {
        let s = GraphSequence::new();
        assert!(s.is_empty());
        let p = s.persistence(2.0);
        assert_eq!(p.mean_edge_jaccard, 1.0);
        assert!(p.most_changed_transition.is_none());
    }
}
