//! Dynamic, multi-faceted communication graphs.
//!
//! This crate turns a stream of connection summaries into the paper's core
//! artifact: a **complete communication graph** of everything that talks
//! inside a cloud subscription. Nodes can be IPs, `(IP, port)` tuples, or
//! services (the *multi-faceted* requirement); edges carry byte, packet, and
//! connection counters; a windowed builder produces a *time series* of
//! graphs (the *dynamic* requirement).
//!
//! Key pieces:
//! * [`node`] — node identities and the facet abstraction.
//! * [`stats`] — edge and node counters.
//! * [`builder`] — streaming group-by-aggregate construction, including the
//!   double-report dedup rule for per-NIC telemetry and windowing.
//! * [`graph`] — the immutable snapshot with CSR adjacency, matrix export,
//!   and DOT/JSON serialization.
//! * [`collapse`] — heavy-hitter collapsing: nodes below a traffic-share
//!   threshold fold into one `Other` node, the paper's §3.2 mitigation that
//!   bounds memory on graphs with many small remote peers.
//! * [`export`] — GraphML and edge-list CSV renders for external tooling.
//! * [`diff`] — "what changed?" comparisons between snapshots.
//! * [`series`] — hourly snapshot sequences and persistence metrics
//!   (Figure 5's timelapse analysis).
//! * [`cardinality`] — HyperLogLog estimation of node/edge counts for
//!   facets too large to materialize (the KQuery IP-port graph).
//! * [`timeseries`] — per-edge byte series at the summary cadence: the
//!   paper's "embed timeseries in the node and edge attributes" variant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cardinality;
pub mod collapse;
pub mod diff;
pub mod error;
pub mod export;
pub mod graph;
pub mod node;
pub mod series;
pub mod stats;
pub mod timeseries;

pub use builder::{GraphBuilder, WindowedBuilder};
pub use error::{Error, Result};
pub use graph::CommGraph;
pub use node::{Facet, NodeId};
pub use stats::{EdgeStats, NodeStats};
