//! Node identities and graph facets.
//!
//! The same telemetry can be rendered as many different graphs: the paper
//! stresses that *choosing which graph to construct requires networking
//! insight* — IP graphs are compact, IP-port graphs separate co-located
//! services, and service graphs aggregate replicas. A [`Facet`] is that
//! choice, mapping each record endpoint to a [`NodeId`].

use flowlog::record::ConnSummary;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Identity of a graph node under some facet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeId {
    /// A bare IP address (the IP-graph facet).
    Ip(Ipv4Addr),
    /// An `(IP, port)` endpoint (the IP-port-graph facet). The port is the
    /// *service* port for acceptors and the ephemeral port for initiators.
    IpPort(Ipv4Addr, u16),
    /// A named service/role (the service-graph facet); the id indexes the
    /// facet's service table.
    Service(u32),
    /// The aggregate node that heavy-hitter collapsing folds small
    /// contributors into.
    Other,
}

impl NodeId {
    /// The IP behind this node, when it has one.
    pub fn ip(&self) -> Option<Ipv4Addr> {
        match self {
            NodeId::Ip(ip) | NodeId::IpPort(ip, _) => Some(*ip),
            _ => None,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Ip(ip) => write!(f, "{ip}"),
            NodeId::IpPort(ip, port) => write!(f, "{ip}:{port}"),
            NodeId::Service(id) => write!(f, "svc#{id}"),
            NodeId::Other => write!(f, "OTHER"),
        }
    }
}

/// First ephemeral port; ports at or above never name a service.
const EPHEMERAL_START: u16 = 32_768;

/// A mapping from record endpoints to node identities.
#[derive(Debug, Clone, PartialEq)]
pub enum Facet {
    /// Nodes are IP addresses.
    Ip,
    /// Nodes are `(IP, port)` endpoints.
    IpPort,
    /// Nodes are `(IP, port)` for *service* ports but bare IPs for
    /// ephemeral ports — §3.2's "ephemeral ports … are collapsed". This is
    /// the facet that separates co-hosted services without letting
    /// ephemeral client ports shred neighbor-set overlap.
    IpServicePort,
    /// Nodes are services, resolved from IP through the given table; IPs not
    /// in the table appear as plain [`NodeId::Ip`] nodes (unknown externals).
    Service {
        /// IP → service-id resolution table.
        resolver: HashMap<Ipv4Addr, u32>,
        /// Display names indexed by service id.
        names: Vec<String>,
    },
}

impl Facet {
    /// Short name used in exports and experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Facet::Ip => "ip",
            Facet::IpPort => "ip-port",
            Facet::IpServicePort => "ip-service-port",
            Facet::Service { .. } => "service",
        }
    }

    /// The (local, remote) node pair a record contributes to.
    pub fn endpoints(&self, r: &ConnSummary) -> (NodeId, NodeId) {
        match self {
            Facet::Ip => (NodeId::Ip(r.key.local_ip), NodeId::Ip(r.key.remote_ip)),
            Facet::IpPort => (
                NodeId::IpPort(r.key.local_ip, r.key.local_port),
                NodeId::IpPort(r.key.remote_ip, r.key.remote_port),
            ),
            Facet::IpServicePort => {
                let collapse = |ip: std::net::Ipv4Addr, port: u16| {
                    if port < EPHEMERAL_START {
                        NodeId::IpPort(ip, port)
                    } else {
                        NodeId::Ip(ip)
                    }
                };
                (
                    collapse(r.key.local_ip, r.key.local_port),
                    collapse(r.key.remote_ip, r.key.remote_port),
                )
            }
            Facet::Service { resolver, .. } => {
                let resolve = |ip: Ipv4Addr| match resolver.get(&ip) {
                    Some(id) => NodeId::Service(*id),
                    None => NodeId::Ip(ip),
                };
                (resolve(r.key.local_ip), resolve(r.key.remote_ip))
            }
        }
    }

    /// Human-readable label for a node under this facet.
    pub fn label(&self, node: &NodeId) -> String {
        match (self, node) {
            (Facet::Service { names, .. }, NodeId::Service(id)) => {
                names.get(*id as usize).cloned().unwrap_or_else(|| format!("svc#{id}"))
            }
            _ => node.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowlog::record::FlowKey;

    fn rec() -> ConnSummary {
        ConnSummary {
            ts: 0,
            key: FlowKey::tcp(Ipv4Addr::new(10, 0, 0, 1), 44_000, Ipv4Addr::new(10, 0, 1, 2), 443),
            pkts_sent: 1,
            pkts_rcvd: 1,
            bytes_sent: 100,
            bytes_rcvd: 100,
        }
    }

    #[test]
    fn ip_facet_ignores_ports() {
        let (a, b) = Facet::Ip.endpoints(&rec());
        assert_eq!(a, NodeId::Ip(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(b, NodeId::Ip(Ipv4Addr::new(10, 0, 1, 2)));
    }

    #[test]
    fn ipport_facet_keeps_ports() {
        let (a, b) = Facet::IpPort.endpoints(&rec());
        assert_eq!(a, NodeId::IpPort(Ipv4Addr::new(10, 0, 0, 1), 44_000));
        assert_eq!(b, NodeId::IpPort(Ipv4Addr::new(10, 0, 1, 2), 443));
    }

    #[test]
    fn ip_service_port_facet_collapses_ephemeral_side() {
        let (a, b) = Facet::IpServicePort.endpoints(&rec());
        // Local 44000 is ephemeral → bare IP; remote 443 keeps its port.
        assert_eq!(a, NodeId::Ip(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(b, NodeId::IpPort(Ipv4Addr::new(10, 0, 1, 2), 443));
    }

    #[test]
    fn ip_service_port_keeps_both_service_sides() {
        let mut r = rec();
        r.key.local_port = 8080;
        let (a, b) = Facet::IpServicePort.endpoints(&r);
        assert_eq!(a, NodeId::IpPort(Ipv4Addr::new(10, 0, 0, 1), 8080));
        assert_eq!(b, NodeId::IpPort(Ipv4Addr::new(10, 0, 1, 2), 443));
    }

    #[test]
    fn service_facet_resolves_known_ips_only() {
        let mut resolver = HashMap::new();
        resolver.insert(Ipv4Addr::new(10, 0, 0, 1), 3u32);
        let facet = Facet::Service { resolver, names: vec![String::new(); 4] };
        let (a, b) = facet.endpoints(&rec());
        assert_eq!(a, NodeId::Service(3));
        assert_eq!(b, NodeId::Ip(Ipv4Addr::new(10, 0, 1, 2)), "unknown IP stays an IP node");
    }

    #[test]
    fn service_labels_use_names() {
        let facet = Facet::Service {
            resolver: HashMap::new(),
            names: vec!["frontend".into(), "db".into()],
        };
        assert_eq!(facet.label(&NodeId::Service(1)), "db");
        assert_eq!(facet.label(&NodeId::Service(9)), "svc#9", "out-of-table id degrades");
        assert_eq!(facet.label(&NodeId::Other), "OTHER");
    }

    #[test]
    fn node_ordering_groups_by_ip() {
        // Role-major IP assignment + Ord on NodeId ⇒ sorting nodes groups
        // same-role replicas next to each other, which is what gives the
        // adjacency matrices of Figure 4 their banded look.
        let mut v = vec![
            NodeId::Ip(Ipv4Addr::new(10, 0, 1, 9)),
            NodeId::Ip(Ipv4Addr::new(10, 0, 0, 2)),
            NodeId::Ip(Ipv4Addr::new(10, 0, 0, 10)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                NodeId::Ip(Ipv4Addr::new(10, 0, 0, 2)),
                NodeId::Ip(Ipv4Addr::new(10, 0, 0, 10)),
                NodeId::Ip(Ipv4Addr::new(10, 0, 1, 9)),
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId::Ip(Ipv4Addr::new(1, 2, 3, 4)).to_string(), "1.2.3.4");
        assert_eq!(NodeId::IpPort(Ipv4Addr::new(1, 2, 3, 4), 80).to_string(), "1.2.3.4:80");
        assert_eq!(NodeId::Other.to_string(), "OTHER");
    }
}
