//! Streaming graph construction: the group-by-aggregate of §3.2.
//!
//! The builder consumes connection summaries one at a time and accumulates
//! per-node-pair counters — memory proportional to the number of node pairs,
//! exactly the cost model the paper analyzes. Two subtleties:
//!
//! * **Vantage dedup.** Per-NIC collection reports a flow from *both*
//!   endpoints when both are inside the subscription. Given the monitored
//!   set, the builder keeps only the canonical endpoint's report for
//!   double-covered flows, so edge counters are not doubled.
//! * **Connection counting.** `conns` counts deduped flow-reports
//!   (flow-minutes). For sub-minute flows — the overwhelming majority in
//!   cloud RPC workloads — this equals the number of connections; long-lived
//!   flows contribute one count per interval they span.

use crate::cardinality::HyperLogLog;
use crate::diff::dirty_nodes;
use crate::graph::CommGraph;
use crate::node::{Facet, NodeId};
use crate::stats::EdgeStats;
use flowlog::record::ConnSummary;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Accumulates one window's records into a [`CommGraph`].
///
/// ```
/// use commgraph_graph::{Facet, GraphBuilder};
/// use flowlog::record::{ConnSummary, FlowKey};
/// use std::net::Ipv4Addr;
///
/// let mut b = GraphBuilder::new(Facet::Ip, 0, 3600);
/// b.add(&ConnSummary {
///     ts: 0,
///     key: FlowKey::tcp("10.0.0.1".parse().unwrap(), 40000,
///                       "10.0.0.2".parse().unwrap(), 443),
///     pkts_sent: 2, pkts_rcvd: 1, bytes_sent: 900, bytes_rcvd: 100,
/// });
/// let g = b.finish();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.totals().bytes(), 1000);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    facet: Facet,
    /// When `Some`, flows between two monitored IPs are deduped to the
    /// canonical vantage. When `None`, every record counts (single-vantage
    /// telemetry, e.g. chokepoint captures).
    monitored: Option<HashSet<Ipv4Addr>>,
    edges: HashMap<(NodeId, NodeId), EdgeStats>,
    window_start: u64,
    window_len: u64,
    records_seen: u64,
    records_kept: u64,
}

impl GraphBuilder {
    /// New builder for a window starting at `window_start` lasting
    /// `window_len` seconds.
    pub fn new(facet: Facet, window_start: u64, window_len: u64) -> Self {
        GraphBuilder {
            facet,
            monitored: None,
            edges: HashMap::new(),
            window_start,
            window_len,
            records_seen: 0,
            records_kept: 0,
        }
    }

    /// Enable vantage dedup against the given monitored-IP inventory.
    pub fn with_monitored(mut self, monitored: HashSet<Ipv4Addr>) -> Self {
        self.monitored = Some(monitored);
        self
    }

    /// The facet this builder aggregates under.
    pub fn facet(&self) -> &Facet {
        &self.facet
    }

    /// Records offered / records kept after dedup.
    pub fn record_counts(&self) -> (u64, u64) {
        (self.records_seen, self.records_kept)
    }

    /// Current number of distinct node pairs (the memory driver).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether this record survives vantage dedup.
    fn keep(&self, r: &ConnSummary) -> bool {
        match &self.monitored {
            // Both endpoints monitored ⇒ this flow was reported twice;
            // keep only the canonical endpoint's copy.
            Some(set) if set.contains(&r.key.remote_ip) && set.contains(&r.key.local_ip) => {
                r.key.is_canonical()
            }
            _ => true,
        }
    }

    /// Offer one record.
    pub fn add(&mut self, r: &ConnSummary) {
        self.records_seen += 1;
        if !self.keep(r) {
            return;
        }
        self.records_kept += 1;
        let (local, remote) = self.facet.endpoints(r);
        // Orient the undirected edge key and the byte direction split.
        let (key, fwd_bytes, rev_bytes, fwd_pkts, rev_pkts) = if local <= remote {
            ((local, remote), r.bytes_sent, r.bytes_rcvd, r.pkts_sent, r.pkts_rcvd)
        } else {
            ((remote, local), r.bytes_rcvd, r.bytes_sent, r.pkts_rcvd, r.pkts_sent)
        };
        let e = self.edges.entry(key).or_default();
        e.bytes_fwd = e.bytes_fwd.saturating_add(fwd_bytes);
        e.bytes_rev = e.bytes_rev.saturating_add(rev_bytes);
        e.pkts_fwd = e.pkts_fwd.saturating_add(fwd_pkts);
        e.pkts_rev = e.pkts_rev.saturating_add(rev_pkts);
        e.conns += 1;
    }

    /// Offer a batch.
    pub fn add_all<'a>(&mut self, records: impl IntoIterator<Item = &'a ConnSummary>) {
        for r in records {
            self.add(r);
        }
    }

    /// Finish the window into an immutable snapshot.
    pub fn finish(self) -> CommGraph {
        CommGraph::from_edge_map(self.facet.name(), self.window_start, self.window_len, self.edges)
    }
}

/// Splits a record stream into fixed windows, emitting one [`CommGraph`]
/// per window — the "time-series of graphs" the paper's dynamic analyses
/// consume. Timestamps may jitter *within* the currently open window
/// (vantage duplicates and mildly reordered delivery land correctly), but a
/// record whose window has already closed is **dropped deterministically**
/// and counted in [`WindowedBuilder::dropped_behind`] — re-opening a closed
/// window would emit it twice and corrupt the time series.
#[derive(Debug)]
pub struct WindowedBuilder {
    facet: Facet,
    monitored: Option<HashSet<Ipv4Addr>>,
    window_len: u64,
    current: Option<GraphBuilder>,
    finished: Vec<CommGraph>,
    /// Records rejected because their window closed before they arrived.
    dropped_behind: u64,
    /// When true, each closed window is diffed against its predecessor and
    /// the dirty node set (see [`crate::diff::dirty_nodes`]) is retained,
    /// aligned with `finished`.
    track_dirty: bool,
    dirty: Vec<Vec<NodeId>>,
    last_closed: Option<CommGraph>,
    peer_sketches: HashMap<NodeId, HyperLogLog>,
}

impl WindowedBuilder {
    /// Builder emitting one graph per `window_len` seconds (3600 for the
    /// paper's hourly graphs).
    pub fn new(facet: Facet, window_len: u64) -> Self {
        assert!(window_len > 0, "window length must be positive");
        WindowedBuilder {
            facet,
            monitored: None,
            window_len,
            current: None,
            finished: Vec::new(),
            dropped_behind: 0,
            track_dirty: false,
            dirty: Vec::new(),
            last_closed: None,
            peer_sketches: HashMap::new(),
        }
    }

    /// Enable vantage dedup (see [`GraphBuilder::with_monitored`]).
    pub fn with_monitored(mut self, monitored: HashSet<Ipv4Addr>) -> Self {
        self.monitored = Some(monitored);
        self
    }

    /// Track dirty nodes across window rolls. Each closed window is diffed
    /// against the previous one; downstream consumers use the dirty set to
    /// recompute only what actually changed. The first window is entirely
    /// dirty (there is no baseline). Tracking also maintains per-node
    /// distinct-peer sketches, delta-updated only for dirty nodes — clean
    /// nodes keep identical adjacency, so skipping them loses nothing.
    pub fn with_dirty_tracking(mut self) -> Self {
        self.track_dirty = true;
        self
    }

    fn fresh(&self, window_start: u64) -> GraphBuilder {
        let b = GraphBuilder::new(self.facet.clone(), window_start, self.window_len);
        match &self.monitored {
            Some(m) => b.with_monitored(m.clone()),
            None => b,
        }
    }

    /// Close one window: finish the graph and, when tracking, record its
    /// dirty set and fold dirty adjacency into the peer sketches.
    fn close(&mut self, b: GraphBuilder) {
        let g = b.finish();
        if self.track_dirty {
            let d = match &self.last_closed {
                Some(prev) => dirty_nodes(prev, &g),
                None => g.nodes().to_vec(),
            };
            for n in &d {
                if let Some(idx) = g.index_of(n) {
                    // Compact sketches: one per node, so 1 KiB (~3.3% error)
                    // beats the 16 KiB stream default by memory × fleet size.
                    let sketch = self
                        .peer_sketches
                        .entry(*n)
                        .or_insert_with(|| HyperLogLog::with_precision(10));
                    for (j, _) in g.neighbors(idx) {
                        sketch.insert(&g.node(*j));
                    }
                }
            }
            self.dirty.push(d);
            self.last_closed = Some(g.clone());
        }
        self.finished.push(g);
    }

    /// Whether `r` would survive vantage dedup under this builder's
    /// monitored inventory (the [`GraphBuilder::with_monitored`] rule):
    /// flows reported by both monitored endpoints keep only the canonical
    /// vantage's copy. Callers use this to attribute lateness and drops to
    /// records that actually contribute to graphs, not to vantage copies
    /// dedup discards anyway.
    pub fn survives_dedup(&self, r: &ConnSummary) -> bool {
        match &self.monitored {
            Some(set) if set.contains(&r.key.remote_ip) && set.contains(&r.key.local_ip) => {
                r.key.is_canonical()
            }
            _ => true,
        }
    }

    /// Records rejected so far because their window had already closed when
    /// they arrived (see [`WindowedBuilder::add`]).
    pub fn dropped_behind(&self) -> u64 {
        self.dropped_behind
    }

    /// Offer one record, rolling windows as timestamps advance. Returns
    /// whether the record was applied: a record whose window start is behind
    /// the currently open window lands in a graph that already closed, so it
    /// is dropped (counted in [`WindowedBuilder::dropped_behind`]) instead
    /// of re-opening — and double-emitting — that window.
    pub fn add(&mut self, r: &ConnSummary) -> bool {
        let w = flowlog::time::bucket_start(r.ts, self.window_len);
        let builder = match self.current.take() {
            Some(b) if b.window_start == w => b,
            Some(b) if w > b.window_start => {
                self.close(b);
                self.fresh(w)
            }
            Some(b) => {
                self.current = Some(b);
                self.dropped_behind += 1;
                return false;
            }
            None => self.fresh(w),
        };
        self.current.insert(builder).add(r);
        true
    }

    /// Offer a batch.
    pub fn add_all<'a>(&mut self, records: impl IntoIterator<Item = &'a ConnSummary>) {
        for r in records {
            self.add(r);
        }
    }

    /// Drain graphs for windows that have closed so far.
    pub fn drain_finished(&mut self) -> Vec<CommGraph> {
        self.dirty.clear();
        std::mem::take(&mut self.finished)
    }

    /// Drain closed windows paired with their dirty node sets. Without
    /// [`WindowedBuilder::with_dirty_tracking`] every node is conservatively
    /// reported dirty (no baseline ⇒ nothing can be reused).
    pub fn drain_finished_with_dirty(&mut self) -> Vec<(CommGraph, Vec<NodeId>)> {
        let graphs = std::mem::take(&mut self.finished);
        let mut dirty = std::mem::take(&mut self.dirty);
        graphs
            .into_iter()
            .enumerate()
            .map(|(i, g)| {
                let d = match dirty.get_mut(i) {
                    Some(d) => std::mem::take(d),
                    None => g.nodes().to_vec(),
                };
                (g, d)
            })
            .collect()
    }

    /// Estimated distinct peers a node has talked to across all closed
    /// windows, from its delta-maintained sketch. `None` when the node has
    /// not appeared dirty yet or tracking is off.
    pub fn peer_cardinality(&self, node: &NodeId) -> Option<f64> {
        self.peer_sketches.get(node).map(|s| s.estimate())
    }

    /// Finish the stream: close the open window and return all remaining
    /// graphs in time order.
    pub fn finish(mut self) -> Vec<CommGraph> {
        if let Some(b) = self.current.take() {
            self.close(b);
        }
        self.finished
    }

    /// Finish the stream, pairing every remaining graph with its dirty set
    /// (see [`WindowedBuilder::drain_finished_with_dirty`]).
    pub fn finish_with_dirty(mut self) -> Vec<(CommGraph, Vec<NodeId>)> {
        if let Some(b) = self.current.take() {
            self.close(b);
        }
        self.drain_finished_with_dirty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowlog::record::FlowKey;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    fn rec(ts: u64, l: u8, lp: u16, r: u8, rp: u16, sent: u64, rcvd: u64) -> ConnSummary {
        ConnSummary {
            ts,
            key: FlowKey::tcp(ip(l), lp, ip(r), rp),
            pkts_sent: sent.div_ceil(1000).max(1),
            pkts_rcvd: rcvd.div_ceil(1000).max(1),
            bytes_sent: sent,
            bytes_rcvd: rcvd,
        }
    }

    #[test]
    fn aggregates_records_into_edges() {
        let mut b = GraphBuilder::new(Facet::Ip, 0, 3600);
        b.add(&rec(0, 1, 40_000, 2, 443, 1000, 200));
        b.add(&rec(60, 1, 40_001, 2, 443, 500, 100));
        let g = b.finish();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let e = g.edge(0, 1).unwrap();
        assert_eq!(e.bytes(), 1800);
        assert_eq!(e.conns, 2);
    }

    #[test]
    fn direction_split_follows_node_order() {
        let mut b = GraphBuilder::new(Facet::Ip, 0, 3600);
        // Reporter is the *higher* IP: its sent bytes flow higher→lower.
        b.add(&rec(0, 2, 40_000, 1, 443, 700, 50));
        let g = b.finish();
        let lo = g.index_of(&NodeId::Ip(ip(1))).unwrap();
        let hi = g.index_of(&NodeId::Ip(ip(2))).unwrap();
        let e = g.edge(lo, hi).unwrap();
        assert_eq!(e.bytes_fwd, 50, "lower→higher is what ip1 sent (reported as rcvd)");
        assert_eq!(e.bytes_rev, 700);
    }

    #[test]
    fn dedup_halves_double_reported_flows() {
        let flow = rec(0, 1, 40_000, 2, 443, 1000, 200);
        let monitored: HashSet<Ipv4Addr> = [ip(1), ip(2)].into_iter().collect();

        let mut with = GraphBuilder::new(Facet::Ip, 0, 3600).with_monitored(monitored);
        with.add(&flow);
        with.add(&flow.mirrored());
        let g = with.finish();
        assert_eq!(g.edge(0, 1).unwrap().bytes(), 1200, "each byte counted once");
        assert_eq!(g.edge(0, 1).unwrap().conns, 1);

        let mut without = GraphBuilder::new(Facet::Ip, 0, 3600);
        without.add(&flow);
        without.add(&flow.mirrored());
        let g2 = without.finish();
        assert_eq!(g2.edge(0, 1).unwrap().bytes(), 2400, "no inventory ⇒ no dedup");
    }

    #[test]
    fn dedup_keeps_single_vantage_flows() {
        // Remote is NOT monitored: the single report must be kept even
        // though it is non-canonical.
        let monitored: HashSet<Ipv4Addr> = [ip(2)].into_iter().collect();
        let mut b = GraphBuilder::new(Facet::Ip, 0, 3600).with_monitored(monitored);
        b.add(&rec(0, 2, 40_000, 1, 443, 700, 50)); // local 10.0.0.2 > remote 10.0.0.1
        let g = b.finish();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.totals().bytes(), 750);
    }

    #[test]
    fn ipport_facet_separates_services_on_one_host() {
        let mut b = GraphBuilder::new(Facet::IpPort, 0, 3600);
        b.add(&rec(0, 1, 40_000, 2, 443, 100, 10));
        b.add(&rec(0, 1, 40_001, 2, 8080, 100, 10));
        let g = b.finish();
        // Same hosts, two service ports ⇒ 4 nodes, 2 edges.
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn windowed_builder_rolls_hourly() {
        let mut wb = WindowedBuilder::new(Facet::Ip, 3600);
        wb.add(&rec(0, 1, 40_000, 2, 443, 100, 10));
        wb.add(&rec(3599, 1, 40_001, 2, 443, 100, 10));
        wb.add(&rec(3600, 1, 40_002, 2, 443, 100, 10));
        wb.add(&rec(7300, 1, 40_003, 2, 443, 100, 10));
        let graphs = wb.finish();
        assert_eq!(graphs.len(), 3);
        assert_eq!(graphs[0].window_start(), 0);
        assert_eq!(graphs[0].totals().conns, 2);
        assert_eq!(graphs[1].window_start(), 3600);
        assert_eq!(graphs[2].window_start(), 7200);
    }

    #[test]
    fn records_behind_closed_windows_drop_deterministically() {
        let mut wb = WindowedBuilder::new(Facet::Ip, 60);
        assert!(wb.add(&rec(0, 1, 40_000, 2, 443, 100, 10)));
        assert!(wb.add(&rec(65, 1, 40_001, 2, 443, 100, 10)), "rolls to window 60");
        // Window 0 closed when ts 65 rolled; a straggler from it must not
        // re-open window 0 (which would emit it twice), nor land in 60.
        assert!(!wb.add(&rec(59, 1, 40_002, 2, 443, 700, 70)));
        assert_eq!(wb.dropped_behind(), 1);
        // Jitter *within* the open window is still accepted.
        assert!(wb.add(&rec(61, 1, 40_003, 2, 443, 100, 10)));
        let graphs = wb.finish();
        assert_eq!(graphs.len(), 2, "each window emitted exactly once");
        assert_eq!(graphs[0].window_start(), 0);
        assert_eq!(graphs[0].totals().conns, 1, "the straggler is excluded");
        assert_eq!(graphs[1].totals().conns, 2);
    }

    #[test]
    fn survives_dedup_matches_builder_keep_rule() {
        let monitored: HashSet<Ipv4Addr> = [ip(1), ip(2)].into_iter().collect();
        let wb = WindowedBuilder::new(Facet::Ip, 60).with_monitored(monitored);
        let flow = rec(0, 1, 40_000, 2, 443, 100, 10);
        assert_ne!(wb.survives_dedup(&flow), wb.survives_dedup(&flow.mirrored()));
        // Only one endpoint monitored ⇒ single vantage, both orientations kept.
        let half: HashSet<Ipv4Addr> = [ip(2)].into_iter().collect();
        let wb2 = WindowedBuilder::new(Facet::Ip, 60).with_monitored(half);
        assert!(wb2.survives_dedup(&flow) && wb2.survives_dedup(&flow.mirrored()));
        // No inventory ⇒ everything survives.
        let wb3 = WindowedBuilder::new(Facet::Ip, 60);
        assert!(wb3.survives_dedup(&flow) && wb3.survives_dedup(&flow.mirrored()));
    }

    #[test]
    fn drain_finished_is_incremental() {
        let mut wb = WindowedBuilder::new(Facet::Ip, 60);
        wb.add(&rec(0, 1, 40_000, 2, 443, 1, 1));
        assert!(wb.drain_finished().is_empty(), "window still open");
        wb.add(&rec(60, 1, 40_001, 2, 443, 1, 1));
        let done = wb.drain_finished();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].window_start(), 0);
    }

    #[test]
    fn dirty_tracking_marks_first_window_fully_dirty() {
        let mut wb = WindowedBuilder::new(Facet::Ip, 60).with_dirty_tracking();
        wb.add(&rec(0, 1, 40_000, 2, 443, 100, 10));
        wb.add(&rec(60, 1, 40_001, 2, 443, 100, 10));
        let out = wb.finish_with_dirty();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, out[0].0.nodes().to_vec(), "no baseline ⇒ all dirty");
        assert!(out[1].1.is_empty(), "identical second window ⇒ clean");
    }

    #[test]
    fn dirty_tracking_flags_only_changed_nodes() {
        let mut wb = WindowedBuilder::new(Facet::Ip, 60).with_dirty_tracking();
        // Window 0: edges (1,2) and (3,4). Window 1: (1,2) identical, (3,4)
        // replaced by (3,5).
        wb.add(&rec(0, 1, 40_000, 2, 443, 100, 10));
        wb.add(&rec(0, 3, 40_000, 4, 443, 100, 10));
        wb.add(&rec(60, 1, 40_000, 2, 443, 100, 10));
        wb.add(&rec(60, 3, 40_000, 5, 443, 100, 10));
        let out = wb.finish_with_dirty();
        let dirty = &out[1].1;
        let want: Vec<NodeId> = [3, 4, 5].into_iter().map(|d| NodeId::Ip(ip(d))).collect();
        assert_eq!(dirty, &want);
    }

    #[test]
    fn untracked_drain_reports_everything_dirty() {
        let mut wb = WindowedBuilder::new(Facet::Ip, 60);
        wb.add(&rec(0, 1, 40_000, 2, 443, 100, 10));
        let out = wb.finish_with_dirty();
        assert_eq!(out[0].1.len(), 2);
    }

    #[test]
    fn peer_sketches_accumulate_across_windows() {
        let mut wb = WindowedBuilder::new(Facet::Ip, 60).with_dirty_tracking();
        // Node 1 talks to 2 in window 0 and to 3 in window 1.
        wb.add(&rec(0, 1, 40_000, 2, 443, 100, 10));
        wb.add(&rec(60, 1, 40_000, 3, 443, 100, 10));
        wb.add(&rec(120, 9, 40_000, 8, 443, 1, 1)); // close window 1
        let est = wb.peer_cardinality(&NodeId::Ip(ip(1))).unwrap();
        assert!((est - 2.0).abs() < 0.5, "two distinct peers, estimate {est}");
        assert!(wb.peer_cardinality(&NodeId::Ip(ip(7))).is_none());
    }

    #[test]
    fn record_counts_track_dedup() {
        let flow = rec(0, 1, 40_000, 2, 443, 1000, 200);
        let monitored: HashSet<Ipv4Addr> = [ip(1), ip(2)].into_iter().collect();
        let mut b = GraphBuilder::new(Facet::Ip, 0, 3600).with_monitored(monitored);
        b.add(&flow);
        b.add(&flow.mirrored());
        assert_eq!(b.record_counts(), (2, 1));
    }
}
