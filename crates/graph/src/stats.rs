//! Edge and node counters.

use serde::{Deserialize, Serialize};

/// Traffic counters on one undirected edge.
///
/// `fwd` is traffic flowing from the edge's lower-ordered node to the
/// higher-ordered one; `rev` is the opposite direction. Keeping the split
/// costs little and lets analyses reason about asymmetry (e.g. exfiltration
/// is extremely lopsided).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeStats {
    /// Bytes from lower node to higher node.
    pub bytes_fwd: u64,
    /// Bytes from higher node to lower node.
    pub bytes_rev: u64,
    /// Packets from lower node to higher node.
    pub pkts_fwd: u64,
    /// Packets from higher node to lower node.
    pub pkts_rev: u64,
    /// Distinct connections observed on this edge in the window.
    pub conns: u64,
}

impl EdgeStats {
    /// Total bytes both ways.
    pub fn bytes(&self) -> u64 {
        self.bytes_fwd + self.bytes_rev
    }

    /// Total packets both ways.
    pub fn pkts(&self) -> u64 {
        self.pkts_fwd + self.pkts_rev
    }

    /// Merge another edge's counters into this one (saturating).
    pub fn absorb(&mut self, other: &EdgeStats) {
        self.bytes_fwd = self.bytes_fwd.saturating_add(other.bytes_fwd);
        self.bytes_rev = self.bytes_rev.saturating_add(other.bytes_rev);
        self.pkts_fwd = self.pkts_fwd.saturating_add(other.pkts_fwd);
        self.pkts_rev = self.pkts_rev.saturating_add(other.pkts_rev);
        self.conns = self.conns.saturating_add(other.conns);
    }

    /// The same edge seen with its endpoints swapped.
    pub fn reversed(&self) -> EdgeStats {
        EdgeStats {
            bytes_fwd: self.bytes_rev,
            bytes_rev: self.bytes_fwd,
            pkts_fwd: self.pkts_rev,
            pkts_rev: self.pkts_fwd,
            conns: self.conns,
        }
    }

    /// Directional byte asymmetry in `[0, 1]`: 0 for perfectly balanced,
    /// approaching 1 when all bytes flow one way. Zero-byte edges are 0.
    pub fn asymmetry(&self) -> f64 {
        let total = self.bytes();
        if total == 0 {
            return 0.0;
        }
        (self.bytes_fwd as f64 - self.bytes_rev as f64).abs() / total as f64
    }
}

/// Aggregate traffic counters for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Bytes on all incident edges (each edge counted once).
    pub bytes: u64,
    /// Packets on all incident edges.
    pub pkts: u64,
    /// Connections on all incident edges.
    pub conns: u64,
    /// Number of distinct neighbors.
    pub degree: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(bf: u64, br: u64) -> EdgeStats {
        EdgeStats { bytes_fwd: bf, bytes_rev: br, pkts_fwd: bf / 100, pkts_rev: br / 100, conns: 1 }
    }

    #[test]
    fn totals_sum_directions() {
        let e = edge(300, 100);
        assert_eq!(e.bytes(), 400);
        assert_eq!(e.pkts(), 4);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = edge(100, 50);
        a.absorb(&edge(10, 5));
        assert_eq!(a.bytes_fwd, 110);
        assert_eq!(a.bytes_rev, 55);
        assert_eq!(a.conns, 2);
    }

    #[test]
    fn absorb_saturates() {
        let mut a = EdgeStats { bytes_fwd: u64::MAX, ..Default::default() };
        a.absorb(&edge(10, 0));
        assert_eq!(a.bytes_fwd, u64::MAX);
    }

    #[test]
    fn reversed_swaps_directions() {
        let e = edge(300, 100);
        let r = e.reversed();
        assert_eq!(r.bytes_fwd, 100);
        assert_eq!(r.bytes_rev, 300);
        assert_eq!(r.reversed(), e, "involution");
    }

    #[test]
    fn asymmetry_ranges() {
        assert_eq!(edge(100, 100).asymmetry(), 0.0);
        assert_eq!(edge(100, 0).asymmetry(), 1.0);
        assert_eq!(EdgeStats::default().asymmetry(), 0.0);
        let mid = edge(300, 100).asymmetry();
        assert!((mid - 0.5).abs() < 1e-12);
    }
}
