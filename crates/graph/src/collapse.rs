//! Heavy-hitter collapsing (§3.2's memory mitigation).
//!
//! "Remote IPs and ephemeral ports that do not individually account for a
//! sizable share of traffic are collapsed together. In fact, the graph sizes
//! in Table 1 collapse IPs contributing less than 0.1% of bytes, packets or
//! connections into one node."
//!
//! [`collapse`] implements exactly that rule: a node survives if it reaches
//! the threshold share on *any* of the three metrics, or if a caller-supplied
//! predicate protects it (experiments protect the monitored inventory, since
//! the subscription's own resources are always of interest). Everything else
//! folds into the single [`NodeId::Other`] node; edge counters are merged,
//! never dropped, so graph-wide totals are invariant under collapsing.

use crate::graph::CommGraph;
use crate::node::NodeId;
use crate::stats::EdgeStats;
use std::collections::HashMap;

/// The paper's Table 1 threshold: 0.1% of bytes, packets, or connections.
pub const PAPER_THRESHOLD: f64 = 0.001;

/// Collapse small contributors of `g` into [`NodeId::Other`].
///
/// A node is kept if its share of total bytes, packets, **or** connections
/// is at least `threshold`, or if `protect(node)` returns true. Edges whose
/// endpoints both collapse become a self-loop on `Other`.
///
/// # Panics
/// Panics if `threshold` is not in `[0, 1]`.
pub fn collapse(g: &CommGraph, threshold: f64, protect: impl Fn(&NodeId) -> bool) -> CommGraph {
    assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0, 1]");
    let totals = g.totals();
    // Shares are relative to *twice* the edge totals because each edge's
    // traffic is incident to two nodes — equivalently, a node's share of the
    // sum of all node totals.
    let (tb, tp, tc) = (
        (totals.bytes() as f64 * 2.0).max(1.0),
        (totals.pkts() as f64 * 2.0).max(1.0),
        (totals.conns as f64 * 2.0).max(1.0),
    );
    let survives = |idx: u32| -> bool {
        let node = g.node(idx);
        if protect(&node) {
            return true;
        }
        let ns = g.node_stats(idx);
        ns.bytes as f64 / tb >= threshold
            || ns.pkts as f64 / tp >= threshold
            || ns.conns as f64 / tc >= threshold
    };

    let mut mapped: Vec<NodeId> = Vec::with_capacity(g.node_count());
    for idx in 0..g.node_count() as u32 {
        mapped.push(if survives(idx) { g.node(idx) } else { NodeId::Other });
    }

    let mut edges: HashMap<(NodeId, NodeId), EdgeStats> = HashMap::new();
    for i in 0..g.node_count() as u32 {
        for (j, stats) in g.neighbors(i) {
            if *j < i {
                continue; // visit each undirected edge once (self-loops: j == i)
            }
            let (a, b) = (mapped[i as usize], mapped[*j as usize]);
            // `stats` is oriented i→j; re-orient for the mapped key order.
            let (key, oriented) =
                if a <= b { ((a, b), *stats) } else { ((b, a), stats.reversed()) };
            edges.entry(key).or_default().absorb(&oriented);
        }
    }
    CommGraph::from_edge_map(g.facet_name().to_string(), g.window_start(), g.window_len(), edges)
}

/// Collapse with the paper's 0.1% threshold and no protected nodes.
pub fn collapse_default(g: &CommGraph) -> CommGraph {
    collapse(g, PAPER_THRESHOLD, |_| false)
}

/// Streaming survivor tracking at the summary cadence.
///
/// The hourly-total reading of the 0.1% rule folds *every* external client
/// of a large cluster into `Other` — a client that is active for one minute
/// of the hour can never accumulate 0.1% of the hour. Applied at the
/// telemetry's native cadence instead — a node survives if in **any single
/// interval** it reached the threshold share of that interval's bytes,
/// packets, or connections — the rule keeps exactly the nodes a streaming
/// heavy-hitter stage would keep, and reproduces Table 1's node counts.
#[derive(Debug)]
pub struct MinuteSurvivors {
    facet: crate::node::Facet,
    threshold: f64,
    survivors: std::collections::HashSet<NodeId>,
}

impl MinuteSurvivors {
    /// Track survivors under `facet` at `threshold` (0.001 = paper).
    pub fn new(facet: crate::node::Facet, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0, 1]");
        MinuteSurvivors { facet, threshold, survivors: std::collections::HashSet::new() }
    }

    /// Offer one interval's records (one minute batch, typically).
    pub fn add_interval(&mut self, records: &[flowlog::record::ConnSummary]) {
        let mut per_node: HashMap<NodeId, (u64, u64, u64)> = HashMap::new();
        let (mut tb, mut tp, mut tc) = (0u64, 0u64, 0u64);
        for r in records {
            let (a, b) = self.facet.endpoints(r);
            let (bytes, pkts) = (r.bytes_total(), r.pkts_total());
            tb += bytes;
            tp += pkts;
            tc += 1;
            for n in [a, b] {
                let e = per_node.entry(n).or_default();
                e.0 += bytes;
                e.1 += pkts;
                e.2 += 1;
            }
        }
        // Node totals double-count interval totals (two endpoints each).
        let (tb, tp, tc) = ((tb * 2).max(1) as f64, (tp * 2).max(1) as f64, (tc * 2).max(1) as f64);
        for (n, (b, p, c)) in per_node {
            if self.survivors.contains(&n) {
                continue;
            }
            if b as f64 / tb >= self.threshold
                || p as f64 / tp >= self.threshold
                || c as f64 / tc >= self.threshold
            {
                self.survivors.insert(n);
            }
        }
    }

    /// Whether a node ever reached the threshold in some interval.
    pub fn is_survivor(&self, n: &NodeId) -> bool {
        self.survivors.contains(n)
    }

    /// Drain the tracker into its survivor set.
    pub fn into_survivors(self) -> std::collections::HashSet<NodeId> {
        self.survivors
    }

    /// Number of survivors so far.
    pub fn len(&self) -> usize {
        self.survivors.len()
    }

    /// True when no node has survived yet.
    pub fn is_empty(&self) -> bool {
        self.survivors.is_empty()
    }

    /// Collapse a graph, keeping exactly the survivors.
    pub fn collapse(&self, g: &CommGraph) -> CommGraph {
        // Threshold 0 here: survival is decided by the tracked set alone.
        collapse(g, 1.0, |n| self.is_survivor(n))
    }
}

/// Per-NIC heavy-hitter survival — the vantage the paper's §3.2 describes:
/// "**remote IPs** and ephemeral ports that do not individually account for
/// a sizable share of traffic are collapsed together."
///
/// Telemetry is collected per VM NIC, so "share of traffic" is naturally the
/// remote peer's share of *that reporting VM's* traffic in the interval. A
/// remote endpoint survives if, on **any** reporting VM in **any** interval,
/// it accounted for at least `threshold` of that VM's bytes, packets, or
/// connections. Reporting (local) endpoints always survive — the
/// subscription's own inventory is never folded.
///
/// This reading reproduces all four Table 1 node counts: a portal client is
/// a sizable share of one web server's minute even though it is invisible at
/// cluster scale, while one of 250 light clients behind a busy ingress tier
/// is not.
#[derive(Debug)]
pub struct NicLocalSurvivors {
    facet: crate::node::Facet,
    threshold: f64,
    survivors: std::collections::HashSet<NodeId>,
}

impl NicLocalSurvivors {
    /// Track per-NIC survivors under `facet` at `threshold` (0.001 = paper).
    pub fn new(facet: crate::node::Facet, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0, 1]");
        NicLocalSurvivors { facet, threshold, survivors: std::collections::HashSet::new() }
    }

    /// Offer one interval's records (one minute batch, typically).
    pub fn add_interval(&mut self, records: &[flowlog::record::ConnSummary]) {
        use std::net::Ipv4Addr;
        // Per reporting VM: total traffic and per-remote-node traffic.
        struct VmAcc {
            totals: (u64, u64, u64),
            per_remote: HashMap<NodeId, (u64, u64, u64)>,
        }
        let mut per_vm: HashMap<Ipv4Addr, VmAcc> = HashMap::new();
        for r in records {
            let (local_node, remote_node) = self.facet.endpoints(r);
            // The reporting endpoint always survives.
            self.survivors.insert(local_node);
            let acc = per_vm
                .entry(r.key.local_ip)
                .or_insert_with(|| VmAcc { totals: (0, 0, 0), per_remote: HashMap::new() });
            let (b, p) = (r.bytes_total(), r.pkts_total());
            acc.totals.0 += b;
            acc.totals.1 += p;
            acc.totals.2 += 1;
            let e = acc.per_remote.entry(remote_node).or_default();
            e.0 += b;
            e.1 += p;
            e.2 += 1;
        }
        for acc in per_vm.values() {
            let (tb, tp, tc) = (
                acc.totals.0.max(1) as f64,
                acc.totals.1.max(1) as f64,
                acc.totals.2.max(1) as f64,
            );
            for (n, (b, p, c)) in &acc.per_remote {
                if self.survivors.contains(n) {
                    continue;
                }
                if *b as f64 / tb >= self.threshold
                    || *p as f64 / tp >= self.threshold
                    || *c as f64 / tc >= self.threshold
                {
                    self.survivors.insert(*n);
                }
            }
        }
    }

    /// Whether a node survived on some vantage in some interval.
    pub fn is_survivor(&self, n: &NodeId) -> bool {
        self.survivors.contains(n)
    }

    /// Number of survivors so far.
    pub fn len(&self) -> usize {
        self.survivors.len()
    }

    /// True when nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.survivors.is_empty()
    }

    /// Collapse a graph, keeping exactly the survivors.
    pub fn collapse(&self, g: &CommGraph) -> CommGraph {
        collapse(g, 1.0, |n| self.is_survivor(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> NodeId {
        NodeId::Ip(Ipv4Addr::new(10, 0, 0, d))
    }

    fn edge(bytes: u64, conns: u64) -> EdgeStats {
        EdgeStats { bytes_fwd: bytes, bytes_rev: 0, pkts_fwd: bytes / 100, pkts_rev: 0, conns }
    }

    /// Hub with two big spokes and many tiny ones.
    fn hubby() -> CommGraph {
        let mut edges = HashMap::new();
        edges.insert((ip(1), ip(2)), edge(1_000_000, 10));
        edges.insert((ip(1), ip(3)), edge(900_000, 10));
        for d in 10..60u8 {
            edges.insert((ip(1), ip(d)), edge(10, 1));
        }
        CommGraph::from_edge_map("ip", 0, 3600, edges)
    }

    #[test]
    fn small_nodes_fold_into_other() {
        let g = hubby();
        let c = collapse(&g, 0.01, |_| false);
        // Survivors: hub, two big spokes, OTHER.
        assert_eq!(c.node_count(), 4);
        assert!(c.index_of(&NodeId::Other).is_some());
    }

    #[test]
    fn traffic_is_conserved() {
        let g = hubby();
        let c = collapse(&g, 0.01, |_| false);
        assert_eq!(c.totals().bytes(), g.totals().bytes());
        assert_eq!(c.totals().pkts(), g.totals().pkts());
        assert_eq!(c.totals().conns, g.totals().conns);
    }

    #[test]
    fn zero_threshold_is_identity_shape() {
        let g = hubby();
        let c = collapse(&g, 0.0, |_| false);
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
    }

    #[test]
    fn protection_overrides_threshold() {
        let g = hubby();
        let keep_all_ips = collapse(&g, 0.5, |n| matches!(n, NodeId::Ip(_)));
        assert_eq!(keep_all_ips.node_count(), g.node_count(), "everything protected");
    }

    #[test]
    fn connection_share_alone_can_save_a_node() {
        // A node tiny in bytes but dominating connections must survive.
        let mut edges = HashMap::new();
        edges.insert((ip(1), ip(2)), edge(1_000_000, 1));
        edges.insert((ip(3), ip(4)), edge(100, 1000));
        let g = CommGraph::from_edge_map("ip", 0, 3600, edges);
        let c = collapse(&g, 0.4, |_| false);
        assert!(c.index_of(&ip(3)).is_some(), "kept via connection share");
        assert!(c.index_of(&ip(4)).is_some());
    }

    #[test]
    fn edges_between_collapsed_nodes_become_self_loop() {
        let mut edges = HashMap::new();
        edges.insert((ip(1), ip(2)), edge(1_000_000, 10));
        edges.insert((ip(8), ip(9)), edge(5, 1));
        let g = CommGraph::from_edge_map("ip", 0, 3600, edges);
        let c = collapse(&g, 0.1, |_| false);
        let other = c.index_of(&NodeId::Other).expect("OTHER exists");
        assert_eq!(c.edge(other, other).expect("self loop").bytes(), 5);
        assert_eq!(c.totals().bytes(), g.totals().bytes());
    }

    #[test]
    fn paper_threshold_constant() {
        assert_eq!(PAPER_THRESHOLD, 0.001);
        let g = hubby();
        let c = collapse_default(&g);
        assert!(c.node_count() <= g.node_count());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn out_of_range_threshold_panics() {
        collapse(&hubby(), 1.5, |_| false);
    }

    mod minute_survivors {
        use super::*;
        use crate::node::Facet;
        use flowlog::record::{ConnSummary, FlowKey};
        use std::net::Ipv4Addr;

        fn rec(l: u8, r: u8, bytes: u64) -> ConnSummary {
            ConnSummary {
                ts: 0,
                key: FlowKey::tcp(
                    Ipv4Addr::new(10, 0, 0, l),
                    40_000,
                    Ipv4Addr::new(10, 0, 1, r),
                    443,
                ),
                pkts_sent: bytes / 1000 + 1,
                pkts_rcvd: 1,
                bytes_sent: bytes,
                bytes_rcvd: 0,
            }
        }

        #[test]
        fn briefly_hot_node_survives_the_hour() {
            let mut ms = MinuteSurvivors::new(Facet::Ip, PAPER_THRESHOLD);
            // Minute 1: node 10.0.0.9 carries 50% of the minute's bytes.
            ms.add_interval(&[rec(9, 1, 1000), rec(2, 1, 1000)]);
            // Minutes 2..60: it is silent while others move gigabytes.
            for _ in 0..59 {
                ms.add_interval(&[rec(2, 1, 1_000_000_000)]);
            }
            assert!(ms.is_survivor(&NodeId::Ip(Ipv4Addr::new(10, 0, 0, 9))));
        }

        #[test]
        fn connection_share_counts_per_interval() {
            let mut ms = MinuteSurvivors::new(Facet::Ip, 0.25);
            // One record out of two = 50% of connections ≥ 25%.
            ms.add_interval(&[rec(1, 1, 10), rec(2, 1, 10)]);
            assert!(ms.is_survivor(&NodeId::Ip(Ipv4Addr::new(10, 0, 0, 1))));
            assert_eq!(ms.len(), 3, "both sources and the shared server");
        }

        #[test]
        fn collapse_keeps_only_survivors() {
            let mut ms = MinuteSurvivors::new(Facet::Ip, 0.4);
            ms.add_interval(&[rec(1, 1, 1000), rec(2, 1, 1), rec(3, 1, 1)]);
            // Survivors: 10.0.0.1 (~50% bytes) and the server (100%).
            let mut edges = HashMap::new();
            for src in [1u8, 2, 3] {
                edges.insert(
                    (
                        NodeId::Ip(Ipv4Addr::new(10, 0, 0, src)),
                        NodeId::Ip(Ipv4Addr::new(10, 0, 1, 1)),
                    ),
                    edge(100, 1),
                );
            }
            let g = CommGraph::from_edge_map("ip", 0, 3600, edges);
            let c = ms.collapse(&g);
            assert!(c.index_of(&NodeId::Ip(Ipv4Addr::new(10, 0, 0, 1))).is_some());
            assert!(c.index_of(&NodeId::Ip(Ipv4Addr::new(10, 0, 0, 2))).is_none());
            assert!(c.index_of(&NodeId::Other).is_some());
            assert_eq!(c.totals().bytes(), g.totals().bytes(), "mass conserved");
        }

        #[test]
        fn empty_tracker() {
            let ms = MinuteSurvivors::new(Facet::Ip, 0.001);
            assert!(ms.is_empty());
            assert_eq!(ms.len(), 0);
        }
    }

    mod nic_local_survivors {
        use super::*;
        use crate::node::Facet;
        use flowlog::record::{ConnSummary, FlowKey};
        use std::net::Ipv4Addr;

        fn rec(l: Ipv4Addr, r: Ipv4Addr, bytes: u64) -> ConnSummary {
            ConnSummary {
                ts: 0,
                key: FlowKey::tcp(l, 40_000, r, 443),
                pkts_sent: bytes / 1000 + 1,
                pkts_rcvd: 1,
                bytes_sent: bytes,
                bytes_rcvd: 0,
            }
        }

        #[test]
        fn reporting_vms_always_survive() {
            let mut ns = NicLocalSurvivors::new(Facet::Ip, 0.5);
            let vm = Ipv4Addr::new(10, 0, 0, 1);
            ns.add_interval(&[rec(vm, Ipv4Addr::new(198, 18, 0, 1), 1)]);
            assert!(ns.is_survivor(&NodeId::Ip(vm)));
        }

        #[test]
        fn remote_share_is_per_vantage_not_global() {
            let mut ns = NicLocalSurvivors::new(Facet::Ip, 0.01);
            let quiet_vm = Ipv4Addr::new(10, 0, 0, 1);
            let busy_vm = Ipv4Addr::new(10, 0, 0, 2);
            let small_client = Ipv4Addr::new(198, 18, 0, 1);
            let tiny_client = Ipv4Addr::new(198, 18, 0, 2);
            // The small client is 100% of the quiet VM's traffic but would
            // be a vanishing share of the cluster's — per-NIC keeps it.
            let mut batch = vec![rec(quiet_vm, small_client, 10_000)];
            // The busy VM handles 999 heavy conversations; tiny_client's
            // single 1 KB flow is below threshold on every metric there.
            for i in 0..999u32 {
                batch.push(rec(
                    busy_vm,
                    Ipv4Addr::new(198, 19, (i / 250) as u8, (i % 250) as u8),
                    1_000_000,
                ));
            }
            batch.push(rec(busy_vm, tiny_client, 1_000));
            ns.add_interval(&batch);
            assert!(ns.is_survivor(&NodeId::Ip(small_client)));
            assert!(!ns.is_survivor(&NodeId::Ip(tiny_client)));
        }

        #[test]
        fn connection_share_counts() {
            let mut ns = NicLocalSurvivors::new(Facet::Ip, 0.5);
            let vm = Ipv4Addr::new(10, 0, 0, 1);
            let a = Ipv4Addr::new(198, 18, 0, 1);
            let b = Ipv4Addr::new(198, 18, 0, 2);
            // a has 1 of 2 connections = 50% ≥ 50%, despite tiny bytes.
            ns.add_interval(&[rec(vm, a, 1), rec(vm, b, 1_000_000)]);
            assert!(ns.is_survivor(&NodeId::Ip(a)));
        }

        #[test]
        fn collapse_respects_survivors() {
            let mut ns = NicLocalSurvivors::new(Facet::Ip, 0.2);
            let vm = Ipv4Addr::new(10, 0, 0, 1);
            let keep = Ipv4Addr::new(198, 18, 0, 1);
            let fold1 = Ipv4Addr::new(198, 18, 0, 2);
            let fold2 = Ipv4Addr::new(198, 18, 0, 3);
            // `keep` dominates bytes; the folded peers each carry one of
            // ten connections (10% < 20%) and negligible bytes.
            let mut batch = vec![rec(vm, keep, 1_000_000)];
            batch.push(rec(vm, fold1, 100));
            batch.push(rec(vm, fold2, 100));
            for i in 0..7u8 {
                batch.push(rec(vm, Ipv4Addr::new(198, 19, 0, i), 200_000));
            }
            ns.add_interval(&batch);
            let mut edges = HashMap::new();
            for r in [keep, fold1, fold2] {
                edges.insert((NodeId::Ip(vm), NodeId::Ip(r)), edge(100, 1));
            }
            let g = CommGraph::from_edge_map("ip", 0, 3600, edges);
            let c = ns.collapse(&g);
            assert!(c.index_of(&NodeId::Ip(keep)).is_some());
            assert!(c.index_of(&NodeId::Ip(fold1)).is_none());
            assert!(c.index_of(&NodeId::Other).is_some());
            assert_eq!(c.totals().bytes(), g.totals().bytes());
        }
    }
}
