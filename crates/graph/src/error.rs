//! Graph-construction error type.

use std::fmt;

/// Convenience alias using the crate [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building or transforming communication graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A parameter was out of range (thresholds, window sizes, …).
    InvalidConfig(String),
    /// A node referenced by an operation is not in the graph.
    UnknownNode(String),
    /// Two graphs expected to be comparable were not (e.g. different facets).
    Incompatible(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(m) => write!(f, "invalid graph config: {m}"),
            Error::UnknownNode(n) => write!(f, "unknown node: {n}"),
            Error::Incompatible(m) => write!(f, "incompatible graphs: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        assert!(Error::UnknownNode("10.0.0.1".into()).to_string().contains("10.0.0.1"));
    }
}
