//! Property-based tests for the telemetry substrate.

use flowlog::codec;
use flowlog::nic::{Direction, HostAgent};
use flowlog::record::{ConnSummary, FlowKey, Protocol};
use flowlog::sampling::{Sampler, SamplingConfig};
use flowlog::time;
use proptest::prelude::*;
use std::net::Ipv4Addr;

prop_compose! {
    fn arb_key()(
        lip in any::<u32>(),
        lport in any::<u16>(),
        rip in any::<u32>(),
        rport in any::<u16>(),
        proto in any::<u8>(),
    ) -> FlowKey {
        FlowKey {
            local_ip: Ipv4Addr::from(lip),
            local_port: lport,
            remote_ip: Ipv4Addr::from(rip),
            remote_port: rport,
            proto: Protocol::from_number(proto),
        }
    }
}

prop_compose! {
    fn arb_summary()(
        key in arb_key(),
        ts in 0u64..(1 << 40),
        ps in 0u64..(1 << 30),
        pr in 0u64..(1 << 30),
        bs in 0u64..(1 << 40),
        br in 0u64..(1 << 40),
    ) -> ConnSummary {
        ConnSummary { ts, key, pkts_sent: ps, pkts_rcvd: pr, bytes_sent: bs, bytes_rcvd: br }
    }
}

proptest! {
    /// Text codec round-trips every representable record.
    #[test]
    fn text_codec_round_trip(s in arb_summary()) {
        let line = codec::encode_line(&s);
        prop_assert_eq!(codec::decode_line(&line).unwrap(), s);
    }

    /// Binary codec round-trips batches.
    #[test]
    fn binary_codec_round_trip(recs in prop::collection::vec(arb_summary(), 0..64)) {
        let buf = codec::encode_binary(&recs);
        prop_assert_eq!(codec::decode_binary(buf).unwrap(), recs);
    }

    /// Canonicalization is idempotent and direction-independent.
    #[test]
    fn canonical_key_properties(k in arb_key()) {
        let c = k.canonical();
        prop_assert_eq!(c, c.canonical());
        prop_assert_eq!(c, k.reversed().canonical());
        prop_assert!(c.is_canonical());
    }

    /// Mirroring twice is the identity and preserves totals.
    #[test]
    fn mirror_involution(s in arb_summary()) {
        prop_assert_eq!(s.mirrored().mirrored(), s);
        prop_assert_eq!(s.mirrored().bytes_total(), s.bytes_total());
    }

    /// Bucketing: the bucket start is <= ts, within one interval, and stable.
    #[test]
    fn bucket_start_properties(ts in any::<u64>(), interval in 1u64..100_000) {
        let b = time::bucket_start(ts, interval);
        prop_assert!(b <= ts);
        prop_assert!(ts - b < interval);
        prop_assert_eq!(time::bucket_start(b, interval), b);
    }

    /// Flow-table mass conservation: every observed byte and packet appears
    /// in exactly one emitted summary, across evictions, polls, and flush.
    #[test]
    fn nic_conserves_mass(
        capacity in 1usize..32,
        events in prop::collection::vec(
            (0u64..1800, 0u32..64, any::<bool>(), 1u64..100, 1u64..100_000),
            1..200,
        ),
    ) {
        let mut agent = HostAgent::new(capacity, 60, 600);
        let mut events = events;
        events.sort_by_key(|e| e.0);
        let (mut obs_pkts, mut obs_bytes) = (0u64, 0u64);
        let mut emitted: Vec<ConnSummary> = Vec::new();
        for (ts, flow, is_tx, pkts, bytes) in events {
            let key = FlowKey::tcp(
                Ipv4Addr::from(0x0a00_0000 + flow),
                40000,
                Ipv4Addr::from(0x0a01_0000),
                443,
            );
            let dir = if is_tx { Direction::Tx } else { Direction::Rx };
            agent.observe(ts, key, dir, pkts, bytes);
            obs_pkts += pkts;
            obs_bytes += bytes;
            emitted.extend(agent.poll(ts));
        }
        emitted.extend(agent.flush(3600));
        let got_pkts: u64 = emitted.iter().map(|s| s.pkts_total()).sum();
        let got_bytes: u64 = emitted.iter().map(|s| s.bytes_total()).sum();
        prop_assert_eq!(got_pkts, obs_pkts);
        prop_assert_eq!(got_bytes, obs_bytes);
        for s in &emitted {
            prop_assert!(s.is_well_formed(), "emitted record must be well formed: {:?}", s);
        }
    }

    /// Sampling never invents traffic and keeps records well-formed.
    #[test]
    fn sampling_is_contractive(
        s in arb_summary(),
        flow_rate in 0.01f64..=1.0,
        packet_rate in 0.01f64..=1.0,
        seed in any::<u64>(),
    ) {
        // Constrain to well-formed inputs.
        prop_assume!(s.is_well_formed());
        let sampler = Sampler::new(SamplingConfig::new(flow_rate, packet_rate).unwrap(), 7).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(out) = sampler.sample(&s, &mut rng) {
            prop_assert!(out.pkts_sent <= s.pkts_sent);
            prop_assert!(out.pkts_rcvd <= s.pkts_rcvd);
            prop_assert!(out.bytes_sent <= s.bytes_sent);
            prop_assert!(out.bytes_rcvd <= s.bytes_rcvd);
            prop_assert!(out.is_well_formed());
            prop_assert!(out.pkts_total() > 0);
        }
    }
}

proptest! {
    /// Decoders never panic on arbitrary input — they return errors.
    #[test]
    fn text_decoder_never_panics(line in ".{0,200}") {
        let _ = codec::decode_line(&line);
    }

    #[test]
    fn binary_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::decode_binary(bytes::Bytes::from(bytes));
    }

    #[test]
    fn nsg_tuple_decoder_never_panics(tuple in ".{0,200}") {
        let _ = flowlog::nsg::from_flow_tuple(&tuple);
    }

    /// NSG round trip holds for every well-formed record with a clear
    /// initiator side (one ephemeral, one service port).
    #[test]
    fn nsg_round_trip(s in arb_summary()) {
        prop_assume!(s.is_well_formed());
        let tuple = flowlog::nsg::to_flow_tuple(&s);
        let back = flowlog::nsg::from_flow_tuple(&tuple).expect("own output parses");
        // The tuple format does not carry exotic protocol numbers; compare
        // everything else exactly.
        prop_assert_eq!(back.ts, s.ts);
        prop_assert_eq!(back.key.local_ip, s.key.local_ip);
        prop_assert_eq!(back.key.remote_ip, s.key.remote_ip);
        prop_assert_eq!(back.key.local_port, s.key.local_port);
        prop_assert_eq!(back.key.remote_port, s.key.remote_port);
        prop_assert_eq!(back.bytes_sent, s.bytes_sent);
        prop_assert_eq!(back.bytes_rcvd, s.bytes_rcvd);
        prop_assert_eq!(back.pkts_sent, s.pkts_sent);
        prop_assert_eq!(back.pkts_rcvd, s.pkts_rcvd);
    }
}
