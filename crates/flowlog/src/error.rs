//! Error type shared across the telemetry crate.

use std::fmt;

/// Convenience alias using the crate [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while generating, encoding, or decoding flow telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A text flow-log line did not have the expected number of fields.
    MalformedLine {
        /// 0-based line number within the parsed block, if known.
        line: usize,
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// A field failed to parse (bad IP, port, or counter).
    BadField {
        /// Name of the schema field.
        field: &'static str,
        /// The offending raw text.
        value: String,
    },
    /// A binary buffer was truncated or had a bad magic/version header.
    BadBinary(String),
    /// A configuration value was out of range (e.g. sampling rate > 1).
    InvalidConfig(String),
    /// The smartNIC flow table rejected an operation.
    FlowTable(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MalformedLine { line, reason } => {
                write!(f, "malformed flow-log line {line}: {reason}")
            }
            Error::BadField { field, value } => {
                write!(f, "bad value for field `{field}`: {value:?}")
            }
            Error::BadBinary(msg) => write!(f, "bad binary flow-log buffer: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid telemetry config: {msg}"),
            Error::FlowTable(msg) => write!(f, "flow table error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::BadField { field: "local_ip", value: "not-an-ip".into() };
        let s = e.to_string();
        assert!(s.contains("local_ip"));
        assert!(s.contains("not-an-ip"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
