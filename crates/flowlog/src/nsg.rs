//! Azure-NSG-flow-log-style JSON interchange.
//!
//! Real NSG flow logs arrive as JSON blobs: a list of per-minute records,
//! each carrying per-rule flow groups whose flows are comma-separated
//! "flow tuples". This module speaks a faithful subset of that format
//! (version-2 tuples, which carry byte/packet counters), so the pipeline
//! can ingest something shaped like production telemetry and emit it for
//! interchange:
//!
//! ```text
//! { "records": [ { "time": 1620000060, "category": "NetworkSecurityGroupFlowEvent",
//!     "properties": { "flows": [ { "rule": "...", "flows": [ { "mac": "...",
//!       "flowTuples": [ "<ts>,<srcIp>,<dstIp>,<srcPort>,<dstPort>,<proto>,<dir>,<state>,<pktsS>,<bytesS>,<pktsR>,<bytesR>" ] } ] } ] } } ] }
//! ```
//!
//! Tuples are emitted from the reporting VM's vantage: `I` (inbound) means
//! the remote initiated, `O` means the local VM initiated; either way the
//! `src*` fields name the initiator, as in the real format.

use crate::error::{Error, Result};
use crate::record::{ConnSummary, FlowKey, Protocol};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One NSG-style JSON document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NsgDocument {
    /// Per-minute event records.
    pub records: Vec<NsgRecord>,
}

/// One per-minute event record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NsgRecord {
    /// Epoch seconds of the aggregation minute.
    pub time: u64,
    /// Event category; always `NetworkSecurityGroupFlowEvent`.
    pub category: String,
    /// Payload.
    pub properties: NsgProperties,
}

/// Record payload: flow groups per rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NsgProperties {
    /// Flow-log schema version (2 carries counters).
    #[serde(rename = "Version")]
    pub version: u8,
    /// Per-rule groups.
    pub flows: Vec<NsgRuleFlows>,
}

/// Flows that matched one NSG rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NsgRuleFlows {
    /// Rule name the flows matched.
    pub rule: String,
    /// Per-NIC tuple groups.
    pub flows: Vec<NsgNicFlows>,
}

/// Flow tuples reported by one NIC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NsgNicFlows {
    /// MAC of the reporting NIC.
    pub mac: String,
    /// Comma-separated v2 flow tuples.
    #[serde(rename = "flowTuples")]
    pub flow_tuples: Vec<String>,
}

/// Render one summary as a v2 flow tuple, from the reporting VM's vantage.
///
/// The initiator is inferred from the ports (ephemeral side initiates); the
/// tuple's src fields always name the initiator per the NSG convention.
pub fn to_flow_tuple(s: &ConnSummary) -> String {
    let local_initiates = s.key.local_port >= 32_768 && s.key.remote_port < 32_768;
    let proto = match s.key.proto {
        Protocol::Tcp => "T",
        Protocol::Udp => "U",
        Protocol::Other(_) => "T",
    };
    if local_initiates {
        format!(
            "{},{},{},{},{},{proto},O,E,{},{},{},{}",
            s.ts,
            s.key.local_ip,
            s.key.remote_ip,
            s.key.local_port,
            s.key.remote_port,
            s.pkts_sent,
            s.bytes_sent,
            s.pkts_rcvd,
            s.bytes_rcvd
        )
    } else {
        format!(
            "{},{},{},{},{},{proto},I,E,{},{},{},{}",
            s.ts,
            s.key.remote_ip,
            s.key.local_ip,
            s.key.remote_port,
            s.key.local_port,
            s.pkts_rcvd,
            s.bytes_rcvd,
            s.pkts_sent,
            s.bytes_sent
        )
    }
}

/// Parse one v2 flow tuple back into a summary (reporting-VM vantage).
pub fn from_flow_tuple(tuple: &str) -> Result<ConnSummary> {
    let f: Vec<&str> = tuple.split(',').collect();
    if f.len() != 12 {
        return Err(Error::MalformedLine {
            line: 0,
            reason: format!("v2 flow tuple needs 12 fields, got {}", f.len()),
        });
    }
    fn num<T: std::str::FromStr>(field: &'static str, v: &str) -> Result<T> {
        v.parse().map_err(|_| Error::BadField { field, value: v.to_string() })
    }
    fn ip(field: &'static str, v: &str) -> Result<Ipv4Addr> {
        v.parse().map_err(|_| Error::BadField { field, value: v.to_string() })
    }
    let ts: u64 = num("ts", f[0])?;
    let src_ip = ip("src_ip", f[1])?;
    let dst_ip = ip("dst_ip", f[2])?;
    let src_port: u16 = num("src_port", f[3])?;
    let dst_port: u16 = num("dst_port", f[4])?;
    let proto = match f[5] {
        "T" => Protocol::Tcp,
        "U" => Protocol::Udp,
        other => return Err(Error::BadField { field: "proto", value: other.to_string() }),
    };
    let (pkts_fwd, bytes_fwd, pkts_rev, bytes_rev) = (
        num::<u64>("pkts_src_to_dst", f[8])?,
        num::<u64>("bytes_src_to_dst", f[9])?,
        num::<u64>("pkts_dst_to_src", f[10])?,
        num::<u64>("bytes_dst_to_src", f[11])?,
    );
    // Direction flag decides which side is the reporting VM.
    match f[6] {
        // Outbound: the local VM is the tuple's src.
        "O" => Ok(ConnSummary {
            ts,
            key: FlowKey {
                local_ip: src_ip,
                local_port: src_port,
                remote_ip: dst_ip,
                remote_port: dst_port,
                proto,
            },
            pkts_sent: pkts_fwd,
            bytes_sent: bytes_fwd,
            pkts_rcvd: pkts_rev,
            bytes_rcvd: bytes_rev,
        }),
        // Inbound: the local VM is the tuple's dst.
        "I" => Ok(ConnSummary {
            ts,
            key: FlowKey {
                local_ip: dst_ip,
                local_port: dst_port,
                remote_ip: src_ip,
                remote_port: src_port,
                proto,
            },
            pkts_sent: pkts_rev,
            bytes_sent: bytes_rev,
            pkts_rcvd: pkts_fwd,
            bytes_rcvd: bytes_fwd,
        }),
        other => Err(Error::BadField { field: "direction", value: other.to_string() }),
    }
}

/// Encode a batch of summaries as one NSG-style document. Records are
/// grouped into per-minute `records` entries; all flows are attributed to a
/// single allow rule and one NIC per reporting VM (a faithful simplification
/// — rule attribution does not exist in our pipeline).
pub fn encode_document(records: &[ConnSummary]) -> NsgDocument {
    use std::collections::BTreeMap;
    let mut by_minute: BTreeMap<u64, BTreeMap<Ipv4Addr, Vec<String>>> = BTreeMap::new();
    for r in records {
        let minute = crate::time::bucket_start(r.ts, 60);
        by_minute
            .entry(minute)
            .or_default()
            .entry(r.key.local_ip)
            .or_default()
            .push(to_flow_tuple(r));
    }
    let records = by_minute
        .into_iter()
        .map(|(time, per_vm)| NsgRecord {
            time,
            category: "NetworkSecurityGroupFlowEvent".to_string(),
            properties: NsgProperties {
                version: 2,
                flows: vec![NsgRuleFlows {
                    rule: "DefaultRule_AllowIntra".to_string(),
                    flows: per_vm
                        .into_iter()
                        .map(|(vm, flow_tuples)| NsgNicFlows { mac: mac_of(vm), flow_tuples })
                        .collect(),
                }],
            },
        })
        .collect();
    NsgDocument { records }
}

/// Decode an NSG-style document back into summaries (document order).
pub fn decode_document(doc: &NsgDocument) -> Result<Vec<ConnSummary>> {
    let mut out = Vec::new();
    for rec in &doc.records {
        if rec.properties.version != 2 {
            return Err(Error::BadBinary(format!(
                "unsupported NSG flow-log version {}",
                rec.properties.version
            )));
        }
        for rule in &rec.properties.flows {
            for nic in &rule.flows {
                for tuple in &nic.flow_tuples {
                    out.push(from_flow_tuple(tuple)?);
                }
            }
        }
    }
    Ok(out)
}

/// Encode straight to a JSON string. Serialization of the plain-struct
/// document cannot fail in practice; the `Err` arm surfaces a serde bug
/// instead of panicking.
pub fn encode_json(records: &[ConnSummary]) -> Result<String> {
    serde_json::to_string_pretty(&encode_document(records))
        .map_err(|e| Error::BadBinary(format!("NSG JSON encode error: {e}")))
}

/// Decode from a JSON string.
pub fn decode_json(json: &str) -> Result<Vec<ConnSummary>> {
    let doc: NsgDocument = serde_json::from_str(json)
        .map_err(|e| Error::BadBinary(format!("NSG JSON parse error: {e}")))?;
    decode_document(&doc)
}

/// A deterministic fake MAC for a VM's NIC, derived from its address.
fn mac_of(ip: Ipv4Addr) -> String {
    let o = ip.octets();
    format!("00-0D-3A-{:02X}-{:02X}-{:02X}", o[1], o[2], o[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_side(ts: u64, i: u8) -> ConnSummary {
        ConnSummary {
            ts,
            key: FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, i),
                40_000 + i as u16,
                Ipv4Addr::new(10, 0, 1, 1),
                443,
            ),
            pkts_sent: 10,
            pkts_rcvd: 8,
            bytes_sent: 1200,
            bytes_rcvd: 9000,
        }
    }

    #[test]
    fn outbound_tuple_round_trips() {
        let s = client_side(60, 1);
        let t = to_flow_tuple(&s);
        assert!(t.contains(",O,E,"), "client side reports outbound: {t}");
        assert_eq!(from_flow_tuple(&t).unwrap(), s);
    }

    #[test]
    fn inbound_tuple_round_trips() {
        // Server-side vantage: local port is the service port.
        let s = client_side(60, 2).mirrored();
        let t = to_flow_tuple(&s);
        assert!(t.contains(",I,E,"), "server side reports inbound: {t}");
        let back = from_flow_tuple(&t).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn tuple_src_is_always_the_initiator() {
        let client = client_side(0, 3);
        let server = client.mirrored();
        let tc = to_flow_tuple(&client);
        let ts_ = to_flow_tuple(&server);
        // Both vantages name the client (10.0.0.3) as tuple src.
        assert!(tc.starts_with("0,10.0.0.3,"));
        assert!(ts_.starts_with("0,10.0.0.3,"));
    }

    #[test]
    fn document_round_trip() {
        let records: Vec<ConnSummary> =
            (0..20).map(|i| client_side(60 * (i as u64 % 3), i)).collect();
        let json = encode_json(&records).unwrap();
        let mut decoded = decode_json(&json).unwrap();
        let mut expect = records.clone();
        decoded.sort_by_key(|r| (r.ts, r.key));
        expect.sort_by_key(|r| (r.ts, r.key));
        assert_eq!(decoded, expect);
    }

    #[test]
    fn document_groups_by_minute_and_vm() {
        let records = vec![client_side(0, 1), client_side(30, 1), client_side(60, 2)];
        let doc = encode_document(&records);
        assert_eq!(doc.records.len(), 2, "two minutes");
        assert_eq!(doc.records[0].time, 0);
        assert_eq!(doc.records[0].properties.flows[0].flows.len(), 1, "one reporting VM");
        assert_eq!(doc.records[0].properties.flows[0].flows[0].flow_tuples.len(), 2);
        assert!(doc.records[0].properties.flows[0].flows[0].mac.starts_with("00-0D-3A-"));
    }

    #[test]
    fn malformed_tuples_are_rejected_with_context() {
        assert!(matches!(from_flow_tuple("1,2,3"), Err(Error::MalformedLine { .. })));
        let bad_ip = "0,999.0.0.1,10.0.0.1,40000,443,T,O,E,1,1,1,1";
        assert!(matches!(from_flow_tuple(bad_ip), Err(Error::BadField { field: "src_ip", .. })));
        let bad_dir = "0,10.0.0.1,10.0.0.2,40000,443,T,X,E,1,1,1,1";
        assert!(matches!(
            from_flow_tuple(bad_dir),
            Err(Error::BadField { field: "direction", .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut doc = encode_document(&[client_side(0, 1)]);
        doc.records[0].properties.version = 1;
        assert!(decode_document(&doc).is_err());
    }

    #[test]
    fn bad_json_is_an_error_not_a_panic() {
        assert!(decode_json("{not json").is_err());
        assert!(decode_json("{\"records\": 7}").is_err());
    }
}
