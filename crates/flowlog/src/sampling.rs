//! Packet- and flow-sampling stages.
//!
//! GCP samples roughly 3% of packets and 50% of flows before emitting VPC
//! flow logs (Table 3). This module models both stages and the matching
//! unbiased upscaling that analytics apply before graph construction:
//!
//! * **Flow sampling** is *consistent*: a flow is either always reported or
//!   never, decided by a hash of its direction-independent identity. This
//!   matches how providers sample (per-flow coin flip), keeps time series of
//!   surviving flows intact, and makes both endpoints of a flow agree.
//! * **Packet sampling** thins a summary's packet and byte counters by
//!   binomial subsampling of packets (bytes follow proportionally).
//!
//! Upscaling divides surviving counters by the sampling rates, which is the
//! standard Horvitz–Thompson estimator: unbiased in expectation, noisy for
//! small flows — exactly the trade-off the paper notes providers accept to
//! reduce cost.

use crate::error::{Error, Result};
use crate::record::{ConnSummary, FlowKey};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Sampling rates applied by a telemetry source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Fraction of flows reported, in `(0, 1]`.
    pub flow_rate: f64,
    /// Fraction of packets of a reported flow that are counted, in `(0, 1]`.
    pub packet_rate: f64,
}

impl SamplingConfig {
    /// No sampling: every flow, every packet.
    pub fn none() -> Self {
        SamplingConfig { flow_rate: 1.0, packet_rate: 1.0 }
    }

    /// Create a config, validating both rates.
    pub fn new(flow_rate: f64, packet_rate: f64) -> Result<Self> {
        let c = SamplingConfig { flow_rate, packet_rate };
        c.validate()?;
        Ok(c)
    }

    /// Check both rates lie in `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        for (name, r) in [("flow_rate", self.flow_rate), ("packet_rate", self.packet_rate)] {
            if !(r.is_finite() && 0.0 < r && r <= 1.0) {
                return Err(Error::InvalidConfig(format!("{name} must be in (0, 1], got {r}")));
            }
        }
        Ok(())
    }

    /// True when no record or counter is ever dropped.
    pub fn is_complete(&self) -> bool {
        self.flow_rate >= 1.0 && self.packet_rate >= 1.0
    }
}

/// Stateless consistent flow sampler + packet thinner.
#[derive(Debug, Clone)]
pub struct Sampler {
    config: SamplingConfig,
    /// Salt mixed into the flow hash so different deployments sample
    /// different flow subsets.
    salt: u64,
}

impl Sampler {
    /// Build a sampler from a validated config and a hash salt.
    pub fn new(config: SamplingConfig, salt: u64) -> Result<Self> {
        config.validate()?;
        Ok(Sampler { config, salt })
    }

    /// The configured rates.
    pub fn config(&self) -> &SamplingConfig {
        &self.config
    }

    /// Consistent decision: is this flow in the reported subset?
    ///
    /// Uses the canonical (direction-independent) key so both endpoints of a
    /// flow make the same decision.
    pub fn keeps_flow(&self, key: &FlowKey) -> bool {
        if self.config.flow_rate >= 1.0 {
            return true;
        }
        let h = flow_hash(&key.canonical(), self.salt);
        // Map the hash to [0, 1) and compare against the rate.
        (h as f64 / (u64::MAX as f64 + 1.0)) < self.config.flow_rate
    }

    /// Apply both sampling stages to a summary.
    ///
    /// Returns `None` if the flow itself is not sampled; otherwise a summary
    /// with binomially thinned packet counters (bytes scaled proportionally,
    /// so average packet size is preserved). A thinned record that ends up
    /// with zero packets in both directions is dropped too — providers do
    /// not emit empty records.
    pub fn sample<R: RngExt + ?Sized>(&self, s: &ConnSummary, rng: &mut R) -> Option<ConnSummary> {
        if !self.keeps_flow(&s.key) {
            return None;
        }
        if self.config.packet_rate >= 1.0 {
            return Some(*s);
        }
        let (ps, bs) = thin(s.pkts_sent, s.bytes_sent, self.config.packet_rate, rng);
        let (pr, br) = thin(s.pkts_rcvd, s.bytes_rcvd, self.config.packet_rate, rng);
        if ps + pr == 0 {
            return None;
        }
        Some(ConnSummary { pkts_sent: ps, bytes_sent: bs, pkts_rcvd: pr, bytes_rcvd: br, ..*s })
    }

    /// Horvitz–Thompson upscaling: divide surviving counters by the sampling
    /// rates to obtain unbiased traffic estimates.
    pub fn upscale(&self, s: &ConnSummary) -> ConnSummary {
        let f = 1.0 / (self.config.flow_rate * self.config.packet_rate);
        let scale = |v: u64| ((v as f64) * f).round() as u64;
        ConnSummary {
            pkts_sent: scale(s.pkts_sent),
            pkts_rcvd: scale(s.pkts_rcvd),
            bytes_sent: scale(s.bytes_sent),
            bytes_rcvd: scale(s.bytes_rcvd),
            ..*s
        }
    }
}

/// Binomially subsample `pkts` at `rate`; scale `bytes` proportionally.
fn thin<R: RngExt + ?Sized>(pkts: u64, bytes: u64, rate: f64, rng: &mut R) -> (u64, u64) {
    if pkts == 0 {
        return (0, 0);
    }
    // Exact binomial for small counts; normal approximation for large ones to
    // stay O(1) per record at line rate.
    let kept = if pkts <= 1024 {
        let mut k = 0u64;
        for _ in 0..pkts {
            if rng.random_range(0.0..1.0) < rate {
                k += 1;
            }
        }
        k
    } else {
        let n = pkts as f64;
        let mean = n * rate;
        let sd = (n * rate * (1.0 - rate)).sqrt();
        // Box–Muller normal draw.
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mean + sd * z).round().clamp(0.0, n) as u64
    };
    let kept_bytes =
        if pkts == 0 { 0 } else { (bytes as f64 * kept as f64 / pkts as f64).round() as u64 };
    (kept, kept_bytes)
}

/// FNV-1a over the canonical flow identity, mixed with a salt.
fn flow_hash(key: &FlowKey, salt: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET ^ salt;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    };
    for b in key.local_ip.octets() {
        eat(b);
    }
    for b in key.local_port.to_be_bytes() {
        eat(b);
    }
    for b in key.remote_ip.octets() {
        eat(b);
    }
    for b in key.remote_port.to_be_bytes() {
        eat(b);
    }
    eat(key.proto.number());
    // Final avalanche (splitmix64 tail) so low bits are well mixed.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn key(i: u32) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from(0x0a00_0000 + i),
            40000 + (i % 1000) as u16,
            Ipv4Addr::from(0x0a01_0000 + (i * 7) % 256),
            443,
        )
    }

    fn summary(i: u32, pkts: u64, bytes: u64) -> ConnSummary {
        ConnSummary {
            ts: 0,
            key: key(i),
            pkts_sent: pkts,
            pkts_rcvd: pkts / 2,
            bytes_sent: bytes,
            bytes_rcvd: bytes / 2,
        }
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(SamplingConfig::new(0.0, 0.5).is_err());
        assert!(SamplingConfig::new(0.5, 1.5).is_err());
        assert!(SamplingConfig::new(f64::NAN, 0.5).is_err());
        assert!(SamplingConfig::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn no_sampling_is_identity() {
        let s = Sampler::new(SamplingConfig::none(), 7).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rec = summary(3, 100, 150_000);
        assert_eq!(s.sample(&rec, &mut rng), Some(rec));
        assert_eq!(s.upscale(&rec), rec);
    }

    #[test]
    fn flow_decision_is_consistent_and_direction_independent() {
        let s = Sampler::new(SamplingConfig::new(0.5, 1.0).unwrap(), 99).unwrap();
        for i in 0..200 {
            let k = key(i);
            assert_eq!(s.keeps_flow(&k), s.keeps_flow(&k.reversed()));
            assert_eq!(s.keeps_flow(&k), s.keeps_flow(&k), "same answer every call");
        }
    }

    #[test]
    fn flow_sampling_rate_is_approximately_honored() {
        let s = Sampler::new(SamplingConfig::new(0.5, 1.0).unwrap(), 1234).unwrap();
        let kept = (0..10_000).filter(|&i| s.keeps_flow(&key(i))).count();
        assert!((4500..5500).contains(&kept), "expected ~5000 of 10000 flows kept, got {kept}");
    }

    #[test]
    fn packet_thinning_preserves_mean_traffic() {
        let cfg = SamplingConfig::new(1.0, 0.03).unwrap();
        let s = Sampler::new(cfg, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let rec = summary(1, 10_000, 15_000_000);
        let (mut tot_pkts, mut tot_bytes, n) = (0u64, 0u64, 200);
        for _ in 0..n {
            if let Some(out) = s.sample(&rec, &mut rng) {
                let up = s.upscale(&out);
                tot_pkts += up.pkts_sent;
                tot_bytes += up.bytes_sent;
            }
        }
        let mean_pkts = tot_pkts as f64 / n as f64;
        let mean_bytes = tot_bytes as f64 / n as f64;
        assert!(
            (mean_pkts - 10_000.0).abs() / 10_000.0 < 0.05,
            "upscaled packet mean should be within 5%: {mean_pkts}"
        );
        assert!(
            (mean_bytes - 15_000_000.0).abs() / 15_000_000.0 < 0.05,
            "upscaled byte mean should be within 5%: {mean_bytes}"
        );
    }

    #[test]
    fn thinned_records_stay_well_formed() {
        let cfg = SamplingConfig::new(1.0, 0.1).unwrap();
        let s = Sampler::new(cfg, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..500 {
            let rec = summary(i, (i as u64 % 40) + 1, ((i as u64 % 40) + 1) * 800);
            if let Some(out) = s.sample(&rec, &mut rng) {
                assert!(out.is_well_formed(), "thinned record must stay well-formed: {out:?}");
                assert!(out.pkts_total() > 0, "empty records must be dropped");
            }
        }
    }

    #[test]
    fn different_salts_sample_different_subsets() {
        let a = Sampler::new(SamplingConfig::new(0.5, 1.0).unwrap(), 1).unwrap();
        let b = Sampler::new(SamplingConfig::new(0.5, 1.0).unwrap(), 2).unwrap();
        let diff = (0..1000).filter(|&i| a.keeps_flow(&key(i)) != b.keeps_flow(&key(i))).count();
        assert!(diff > 300, "salts should decorrelate decisions, only {diff} differed");
    }
}
