//! Aggregation-interval (bucket) arithmetic.
//!
//! Connection summaries are emitted on a fixed cadence (1 minute on Azure and
//! AWS, 5 seconds and up on GCP — Table 3). All bucketing in the repository
//! goes through these helpers so that every component agrees on interval
//! boundaries.

/// Seconds in one minute; the default aggregation interval.
pub const MINUTE: u64 = 60;

/// Seconds in one hour; the default graph-snapshot window.
pub const HOUR: u64 = 3600;

/// Floor a timestamp (seconds) to the start of its bucket of `interval` seconds.
///
/// # Panics
/// Panics if `interval` is zero.
pub fn bucket_start(ts: u64, interval: u64) -> u64 {
    assert!(interval > 0, "aggregation interval must be positive");
    ts - ts % interval
}

/// The bucket index of a timestamp, counting buckets of `interval` seconds
/// from the epoch.
pub fn bucket_index(ts: u64, interval: u64) -> u64 {
    assert!(interval > 0, "aggregation interval must be positive");
    ts / interval
}

/// Inclusive start and exclusive end of the bucket containing `ts`.
pub fn bucket_bounds(ts: u64, interval: u64) -> (u64, u64) {
    let start = bucket_start(ts, interval);
    (start, start + interval)
}

/// Iterator over bucket start times covering `[from, to)`.
///
/// Yields the start of every bucket that intersects the half-open range.
pub fn buckets_covering(from: u64, to: u64, interval: u64) -> impl Iterator<Item = u64> {
    assert!(interval > 0, "aggregation interval must be positive");
    let first = bucket_start(from, interval);
    (first..to).step_by(interval as usize).take_while(move |_| from < to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_start_floors() {
        assert_eq!(bucket_start(0, MINUTE), 0);
        assert_eq!(bucket_start(59, MINUTE), 0);
        assert_eq!(bucket_start(60, MINUTE), 60);
        assert_eq!(bucket_start(3601, HOUR), 3600);
    }

    #[test]
    fn bucket_index_counts_from_epoch() {
        assert_eq!(bucket_index(0, MINUTE), 0);
        assert_eq!(bucket_index(61, MINUTE), 1);
        assert_eq!(bucket_index(7200, HOUR), 2);
    }

    #[test]
    fn bounds_are_half_open() {
        let (s, e) = bucket_bounds(95, MINUTE);
        assert_eq!((s, e), (60, 120));
        assert!(s <= 95 && 95 < e);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        bucket_start(10, 0);
    }

    #[test]
    fn buckets_covering_spans_range() {
        let v: Vec<u64> = buckets_covering(30, 200, MINUTE).collect();
        assert_eq!(v, vec![0, 60, 120, 180]);
    }

    #[test]
    fn buckets_covering_empty_range() {
        let v: Vec<u64> = buckets_covering(100, 100, MINUTE).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn gcp_five_second_buckets() {
        assert_eq!(bucket_start(12, 5), 10);
        let v: Vec<u64> = buckets_covering(0, 20, 5).collect();
        assert_eq!(v, vec![0, 5, 10, 15]);
    }
}
