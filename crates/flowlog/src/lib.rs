//! Cloud flow telemetry: the substrate of dynamic communication graphs.
//!
//! Public clouds can record, for every VM, periodic summaries of every flow
//! that enters or leaves it — transparently to the customer and with
//! negligible overhead, because the programmable NIC (or the network
//! virtualization software stack) already keeps per-flow state. This crate
//! models that telemetry source end to end:
//!
//! * [`record`] — the connection-summary schema (Table 2 of the paper) and
//!   flow identity types.
//! * [`provider`] — per-provider collection presets (Table 3): aggregation
//!   interval, sampling, and collection price.
//! * [`sampling`] — packet- and flow-sampling stages with unbiased upscaling,
//!   as deployed by providers that sample to reduce cost.
//! * [`nic`] — a simulated smartNIC flow table plus the host agent that
//!   periodically drains it into connection summaries (Figure 7).
//! * [`codec`] — text (flow-log line) and binary codecs for summary streams.
//! * [`nsg`] — Azure-NSG-style JSON interchange (v2 flow tuples).
//! * [`burst`] — a NIC-resident burst-statistics sketch (§3.1's open issue).
//! * [`time`] — aggregation-bucket helpers.
//!
//! The design goal mirrors the paper's: everything downstream (graph
//! construction, segmentation, summaries, counterfactuals) consumes **only**
//! this schema, so swapping the simulated source for a real NSG/VPC flow-log
//! feed is a codec change, not an architecture change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod codec;
pub mod error;
pub mod nic;
pub mod nsg;
pub mod provider;
pub mod record;
pub mod sampling;
pub mod time;

pub use error::{Error, Result};
pub use record::{ConnSummary, FlowKey, Protocol};
