//! Wire codecs for connection-summary streams.
//!
//! Two formats, both lossless for the Table 2 schema:
//!
//! * **Text** — one comma-separated line per record, in the spirit of the
//!   NSG/VPC flow-log export formats, convenient for eyeballing and for
//!   interchange with plotting scripts.
//! * **Binary** — a fixed-width framed format (magic + version + count +
//!   records) used where the text overhead matters, e.g. replaying
//!   multi-million-record streams into benchmarks. Built on [`bytes`].
//!
//! Both codecs are exercised by round-trip property tests.

use crate::error::{Error, Result};
use crate::record::{ConnSummary, FlowKey, Protocol};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Header line describing the text format's columns.
pub const TEXT_HEADER: &str =
    "ts,proto,local_ip,local_port,remote_ip,remote_port,pkts_sent,pkts_rcvd,bytes_sent,bytes_rcvd";

/// Encode one record as a text line (no trailing newline).
pub fn encode_line(s: &ConnSummary) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{}",
        s.ts,
        s.key.proto.number(),
        s.key.local_ip,
        s.key.local_port,
        s.key.remote_ip,
        s.key.remote_port,
        s.pkts_sent,
        s.pkts_rcvd,
        s.bytes_sent,
        s.bytes_rcvd
    )
}

/// Decode one text line into a record.
pub fn decode_line(line: &str) -> Result<ConnSummary> {
    let fields: Vec<&str> = line.trim_end().split(',').collect();
    if fields.len() != 10 {
        return Err(Error::MalformedLine {
            line: 0,
            reason: format!("expected 10 fields, found {}", fields.len()),
        });
    }
    fn num<T: std::str::FromStr>(field: &'static str, v: &str) -> Result<T> {
        v.parse().map_err(|_| Error::BadField { field, value: v.to_string() })
    }
    fn ip(field: &'static str, v: &str) -> Result<Ipv4Addr> {
        v.parse().map_err(|_| Error::BadField { field, value: v.to_string() })
    }
    Ok(ConnSummary {
        ts: num("ts", fields[0])?,
        key: FlowKey {
            proto: Protocol::from_number(num("proto", fields[1])?),
            local_ip: ip("local_ip", fields[2])?,
            local_port: num("local_port", fields[3])?,
            remote_ip: ip("remote_ip", fields[4])?,
            remote_port: num("remote_port", fields[5])?,
        },
        pkts_sent: num("pkts_sent", fields[6])?,
        pkts_rcvd: num("pkts_rcvd", fields[7])?,
        bytes_sent: num("bytes_sent", fields[8])?,
        bytes_rcvd: num("bytes_rcvd", fields[9])?,
    })
}

/// Encode a batch as text: header line followed by one line per record.
pub fn encode_text(records: &[ConnSummary]) -> String {
    let mut out = String::with_capacity(TEXT_HEADER.len() + 1 + records.len() * 64);
    out.push_str(TEXT_HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&encode_line(r));
        out.push('\n');
    }
    out
}

/// Decode a text batch. The header line is required; blank lines are skipped.
pub fn decode_text(text: &str) -> Result<Vec<ConnSummary>> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim_end() == TEXT_HEADER => {}
        Some((_, h)) => {
            return Err(Error::MalformedLine {
                line: 0,
                reason: format!("missing or wrong header, got {h:?}"),
            })
        }
        None => return Ok(Vec::new()),
    }
    let mut out = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let rec = decode_line(line).map_err(|e| match e {
            Error::MalformedLine { reason, .. } => Error::MalformedLine { line: idx, reason },
            other => other,
        })?;
        out.push(rec);
    }
    Ok(out)
}

/// Magic bytes opening every binary frame.
pub const BINARY_MAGIC: &[u8; 4] = b"CGF\x01";

/// Fixed on-wire size of one binary record.
pub const BINARY_RECORD_SIZE: usize = 8 + 4 + 2 + 4 + 2 + 1 + 8 * 4;

/// Encode a batch into the framed binary format.
pub fn encode_binary(records: &[ConnSummary]) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(BINARY_MAGIC.len() + 4 + records.len() * BINARY_RECORD_SIZE);
    buf.put_slice(BINARY_MAGIC);
    buf.put_u32(records.len() as u32);
    for r in records {
        buf.put_u64(r.ts);
        buf.put_slice(&r.key.local_ip.octets());
        buf.put_u16(r.key.local_port);
        buf.put_slice(&r.key.remote_ip.octets());
        buf.put_u16(r.key.remote_port);
        buf.put_u8(r.key.proto.number());
        buf.put_u64(r.pkts_sent);
        buf.put_u64(r.pkts_rcvd);
        buf.put_u64(r.bytes_sent);
        buf.put_u64(r.bytes_rcvd);
    }
    buf.freeze()
}

/// Decode a framed binary batch.
pub fn decode_binary(mut buf: impl Buf) -> Result<Vec<ConnSummary>> {
    if buf.remaining() < BINARY_MAGIC.len() + 4 {
        return Err(Error::BadBinary("buffer shorter than frame header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != BINARY_MAGIC {
        return Err(Error::BadBinary(format!("bad magic {magic:02x?}")));
    }
    let count = buf.get_u32() as usize;
    if buf.remaining() < count * BINARY_RECORD_SIZE {
        return Err(Error::BadBinary(format!(
            "frame claims {count} records but only {} bytes remain",
            buf.remaining()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let ts = buf.get_u64();
        let mut ip4 = [0u8; 4];
        buf.copy_to_slice(&mut ip4);
        let local_ip = Ipv4Addr::from(ip4);
        let local_port = buf.get_u16();
        buf.copy_to_slice(&mut ip4);
        let remote_ip = Ipv4Addr::from(ip4);
        let remote_port = buf.get_u16();
        let proto = Protocol::from_number(buf.get_u8());
        out.push(ConnSummary {
            ts,
            key: FlowKey { local_ip, local_port, remote_ip, remote_port, proto },
            pkts_sent: buf.get_u64(),
            pkts_rcvd: buf.get_u64(),
            bytes_sent: buf.get_u64(),
            bytes_rcvd: buf.get_u64(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u32) -> ConnSummary {
        ConnSummary {
            ts: 60 * i as u64,
            key: FlowKey::tcp(
                Ipv4Addr::from(0x0a00_0001 + i),
                (1000 + i) as u16,
                Ipv4Addr::from(0x0a00_1000 + i),
                443,
            ),
            pkts_sent: 10 + i as u64,
            pkts_rcvd: 5,
            bytes_sent: 1_000 * i as u64,
            bytes_rcvd: 999,
        }
    }

    #[test]
    fn text_line_round_trip() {
        for i in 0..20 {
            let r = rec(i);
            assert_eq!(decode_line(&encode_line(&r)).unwrap(), r);
        }
    }

    #[test]
    fn text_batch_round_trip() {
        let recs: Vec<_> = (0..50).map(rec).collect();
        assert_eq!(decode_text(&encode_text(&recs)).unwrap(), recs);
    }

    #[test]
    fn text_rejects_wrong_field_count() {
        let err = decode_line("1,2,3").unwrap_err();
        assert!(matches!(err, Error::MalformedLine { .. }));
    }

    #[test]
    fn text_rejects_bad_ip_with_field_name() {
        let line = "0,6,999.0.0.1,80,10.0.0.2,443,1,1,1,1";
        match decode_line(line).unwrap_err() {
            Error::BadField { field, .. } => assert_eq!(field, "local_ip"),
            other => panic!("expected BadField, got {other:?}"),
        }
    }

    #[test]
    fn text_header_is_mandatory() {
        let body = encode_line(&rec(1));
        assert!(decode_text(&body).is_err());
    }

    #[test]
    fn text_error_reports_line_number() {
        let mut text = encode_text(&[rec(0), rec(1)]);
        text.push_str("this,is,broken\n");
        match decode_text(&text).unwrap_err() {
            Error::MalformedLine { line, .. } => assert_eq!(line, 3),
            other => panic!("expected MalformedLine, got {other:?}"),
        }
    }

    #[test]
    fn binary_round_trip() {
        let recs: Vec<_> = (0..100).map(rec).collect();
        let buf = encode_binary(&recs);
        assert_eq!(buf.len(), 8 + recs.len() * BINARY_RECORD_SIZE);
        assert_eq!(decode_binary(buf).unwrap(), recs);
    }

    #[test]
    fn binary_empty_batch() {
        let buf = encode_binary(&[]);
        assert_eq!(decode_binary(buf).unwrap(), Vec::new());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = BytesMut::from(&encode_binary(&[rec(0)])[..]);
        buf[0] ^= 0xff;
        assert!(matches!(decode_binary(buf.freeze()).unwrap_err(), Error::BadBinary(_)));
    }

    #[test]
    fn binary_rejects_truncation() {
        let full = encode_binary(&[rec(0), rec(1)]);
        let truncated = full.slice(..full.len() - 5);
        assert!(matches!(decode_binary(truncated).unwrap_err(), Error::BadBinary(_)));
    }

    #[test]
    fn binary_is_denser_than_text() {
        let recs: Vec<_> = (0..1000).map(rec).collect();
        let b = encode_binary(&recs).len();
        let t = encode_text(&recs).len();
        assert!(b < t, "binary ({b}) should beat text ({t})");
    }
}
