//! Provider collection presets (Table 3 of the paper).
//!
//! Three large public clouds already expose connection-summary telemetry;
//! they differ in aggregation interval, sampling, and price. A
//! [`ProviderPreset`] bundles those knobs so simulations and COGS estimates
//! can be run "as Azure", "as AWS", or "as GCP".

use crate::error::{Error, Result};
use crate::sampling::SamplingConfig;
use serde::{Deserialize, Serialize};

/// Which cloud's flow-log product is being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cloud {
    /// Azure NSG Flow Logs.
    Azure,
    /// AWS VPC Flow Logs.
    Aws,
    /// GCP VPC Flow Logs.
    Gcp,
}

impl Cloud {
    /// Product name as it appears in Table 3.
    pub fn product_name(self) -> &'static str {
        match self {
            Cloud::Azure => "NSG Flow Logs",
            Cloud::Aws => "VPC Flow Logs",
            Cloud::Gcp => "VPC Flow Logs",
        }
    }
}

/// A provider's telemetry collection configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderPreset {
    /// The cloud being modeled.
    pub cloud: Cloud,
    /// Aggregation interval in seconds between successive summaries of the
    /// same flow.
    pub agg_interval_secs: u64,
    /// Sampling applied before records are emitted.
    pub sampling: SamplingConfig,
    /// Collection price in dollars per gigabyte of telemetry.
    pub price_per_gb_usd: f64,
}

impl ProviderPreset {
    /// Azure NSG Flow Logs: 1-minute aggregation, no sampling (Table 3).
    pub fn azure() -> Self {
        ProviderPreset {
            cloud: Cloud::Azure,
            agg_interval_secs: 60,
            sampling: SamplingConfig::none(),
            price_per_gb_usd: 0.5,
        }
    }

    /// AWS VPC Flow Logs: 1-minute aggregation, no sampling (Table 3).
    pub fn aws() -> Self {
        ProviderPreset {
            cloud: Cloud::Aws,
            agg_interval_secs: 60,
            sampling: SamplingConfig::none(),
            price_per_gb_usd: 0.5,
        }
    }

    /// GCP VPC Flow Logs: 5-second (or higher) aggregation, sampling 3% of
    /// packets and 50% of flows (Table 3).
    pub fn gcp() -> Self {
        ProviderPreset {
            cloud: Cloud::Gcp,
            agg_interval_secs: 5,
            sampling: SamplingConfig { flow_rate: 0.50, packet_rate: 0.03 },
            price_per_gb_usd: 0.5,
        }
    }

    /// Validate the preset's invariants (positive interval, sane price).
    pub fn validate(&self) -> Result<()> {
        if self.agg_interval_secs == 0 {
            return Err(Error::InvalidConfig("aggregation interval must be positive".into()));
        }
        if !(self.price_per_gb_usd.is_finite() && self.price_per_gb_usd >= 0.0) {
            return Err(Error::InvalidConfig(format!(
                "price per GB must be a non-negative finite number, got {}",
                self.price_per_gb_usd
            )));
        }
        self.sampling.validate()
    }

    /// Dollars charged for collecting `bytes` of telemetry.
    pub fn collection_cost_usd(&self, bytes: u64) -> f64 {
        self.price_per_gb_usd * bytes as f64 / 1e9
    }

    /// How many summaries one continuously-active flow produces per hour
    /// under this preset (before sampling).
    pub fn summaries_per_flow_hour(&self) -> u64 {
        3600 / self.agg_interval_secs.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_presets_validate() {
        for p in [ProviderPreset::azure(), ProviderPreset::aws(), ProviderPreset::gcp()] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn table3_values_match_paper() {
        let az = ProviderPreset::azure();
        assert_eq!(az.agg_interval_secs, 60);
        assert!(az.sampling.is_complete());
        assert_eq!(az.product_name_matches(), "NSG Flow Logs");

        let gcp = ProviderPreset::gcp();
        assert_eq!(gcp.agg_interval_secs, 5);
        assert!((gcp.sampling.flow_rate - 0.50).abs() < 1e-12);
        assert!((gcp.sampling.packet_rate - 0.03).abs() < 1e-12);
    }

    impl ProviderPreset {
        fn product_name_matches(&self) -> &'static str {
            self.cloud.product_name()
        }
    }

    #[test]
    fn summaries_per_flow_hour() {
        assert_eq!(ProviderPreset::azure().summaries_per_flow_hour(), 60);
        assert_eq!(ProviderPreset::gcp().summaries_per_flow_hour(), 720);
    }

    #[test]
    fn collection_cost_scales_linearly() {
        let p = ProviderPreset::azure();
        assert!((p.collection_cost_usd(1_000_000_000) - 0.5).abs() < 1e-9);
        assert_eq!(p.collection_cost_usd(0), 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut p = ProviderPreset::azure();
        p.agg_interval_secs = 0;
        assert!(p.validate().is_err());

        let mut p = ProviderPreset::aws();
        p.price_per_gb_usd = f64::NAN;
        assert!(p.validate().is_err());
    }
}
