//! The connection-summary schema (Table 2 of the paper).
//!
//! Every record summarizes one flow's activity within one aggregation
//! interval, as observed from the *local* VM's vantage point:
//!
//! | Time | Local IP | Local Port | Remote IP | Remote Port | #Pkts Sent | #Pkts Rcvd | #Bytes Sent | #Bytes Rcvd |
//!
//! The paper's schema has no protocol column; real NSG/VPC flow logs carry
//! one, and segmentation policies need it, so we keep it as an extension
//! field that codecs round-trip.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol of a flow.
///
/// Real flow logs carry an IANA protocol number; we model the two that
/// dominate cloud east-west traffic plus a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    /// Transmission Control Protocol (IANA 6).
    Tcp,
    /// User Datagram Protocol (IANA 17).
    Udp,
    /// Any other IANA protocol number.
    Other(u8),
}

impl Protocol {
    /// The IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Construct from an IANA protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "TCP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Other(n) => write!(f, "P{n}"),
        }
    }
}

/// Identity of a flow as seen from the reporting (local) endpoint.
///
/// The same wire flow appears twice in a complete telemetry stream — once
/// from each endpoint's NIC — with local/remote swapped and sent/received
/// counters mirrored. [`FlowKey::canonical`] maps both observations to one
/// key so graph construction can de-duplicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// IP of the VM whose NIC produced the record.
    pub local_ip: Ipv4Addr,
    /// Local transport port.
    pub local_port: u16,
    /// IP of the peer.
    pub remote_ip: Ipv4Addr,
    /// Peer transport port.
    pub remote_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FlowKey {
    /// Create a TCP flow key (the common case in tests and examples).
    pub fn tcp(local_ip: Ipv4Addr, local_port: u16, remote_ip: Ipv4Addr, remote_port: u16) -> Self {
        FlowKey { local_ip, local_port, remote_ip, remote_port, proto: Protocol::Tcp }
    }

    /// The same flow as seen from the other endpoint.
    pub fn reversed(&self) -> Self {
        FlowKey {
            local_ip: self.remote_ip,
            local_port: self.remote_port,
            remote_ip: self.local_ip,
            remote_port: self.local_port,
            proto: self.proto,
        }
    }

    /// A direction-independent identity: the lexicographically smaller
    /// `(ip, port)` endpoint becomes `local`. Both observations of one wire
    /// flow canonicalize to the same key.
    pub fn canonical(&self) -> Self {
        if (self.local_ip, self.local_port) <= (self.remote_ip, self.remote_port) {
            *self
        } else {
            self.reversed()
        }
    }

    /// True if this key is already in canonical orientation.
    pub fn is_canonical(&self) -> bool {
        (self.local_ip, self.local_port) <= (self.remote_ip, self.remote_port)
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} <-> {}:{}",
            self.proto, self.local_ip, self.local_port, self.remote_ip, self.remote_port
        )
    }
}

/// One connection summary: a flow's counters over one aggregation interval.
///
/// This is the paper's Table 2 record, the *only* input to every analysis in
/// this repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConnSummary {
    /// Start of the aggregation interval, seconds since the epoch.
    pub ts: u64,
    /// Flow identity from the reporting endpoint's vantage point.
    pub key: FlowKey,
    /// Packets sent by the local endpoint during the interval.
    pub pkts_sent: u64,
    /// Packets received by the local endpoint during the interval.
    pub pkts_rcvd: u64,
    /// Bytes sent by the local endpoint during the interval.
    pub bytes_sent: u64,
    /// Bytes received by the local endpoint during the interval.
    pub bytes_rcvd: u64,
}

impl ConnSummary {
    /// Total packets in both directions.
    pub fn pkts_total(&self) -> u64 {
        self.pkts_sent + self.pkts_rcvd
    }

    /// Total bytes in both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_rcvd
    }

    /// The record re-expressed from the remote endpoint's vantage point
    /// (local/remote swapped, sent/received mirrored).
    pub fn mirrored(&self) -> Self {
        ConnSummary {
            ts: self.ts,
            key: self.key.reversed(),
            pkts_sent: self.pkts_rcvd,
            pkts_rcvd: self.pkts_sent,
            bytes_sent: self.bytes_rcvd,
            bytes_rcvd: self.bytes_sent,
        }
    }

    /// Sanity constraints a well-formed summary must satisfy: a non-zero
    /// interval of activity implies at least one packet, and bytes imply
    /// packets (a packet carries at least its headers, but bytes without any
    /// packet is impossible).
    #[allow(clippy::nonminimal_bool)] // the two rules read better stated separately
    pub fn is_well_formed(&self) -> bool {
        !(self.bytes_sent > 0 && self.pkts_sent == 0)
            && !(self.bytes_rcvd > 0 && self.pkts_rcvd == 0)
            && (self.pkts_total() > 0 || self.bytes_total() == 0)
    }

    /// Merge another summary for the same flow and interval into this one.
    ///
    /// Used when sampling or multi-vantage collection yields partial records.
    /// Saturating: counters never wrap.
    pub fn absorb(&mut self, other: &ConnSummary) {
        debug_assert_eq!(self.key, other.key, "absorb requires identical flow keys");
        self.pkts_sent = self.pkts_sent.saturating_add(other.pkts_sent);
        self.pkts_rcvd = self.pkts_rcvd.saturating_add(other.pkts_rcvd);
        self.bytes_sent = self.bytes_sent.saturating_add(other.bytes_sent);
        self.bytes_rcvd = self.bytes_rcvd.saturating_add(other.bytes_rcvd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn sample_key() -> FlowKey {
        FlowKey::tcp(ip(10, 0, 0, 5), 43512, ip(10, 0, 1, 9), 443)
    }

    #[test]
    fn protocol_numbers_round_trip() {
        for n in 0u8..=255 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn protocol_display() {
        assert_eq!(Protocol::Tcp.to_string(), "TCP");
        assert_eq!(Protocol::Udp.to_string(), "UDP");
        assert_eq!(Protocol::Other(47).to_string(), "P47");
    }

    #[test]
    fn reversed_twice_is_identity() {
        let k = sample_key();
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn canonical_is_direction_independent() {
        let k = sample_key();
        assert_eq!(k.canonical(), k.reversed().canonical());
        assert!(k.canonical().is_canonical());
    }

    #[test]
    fn canonical_orders_by_ip_then_port() {
        // Same IP both sides: port breaks the tie.
        let k = FlowKey::tcp(ip(10, 0, 0, 1), 9000, ip(10, 0, 0, 1), 80);
        let c = k.canonical();
        assert_eq!(c.local_port, 80);
        assert_eq!(c.remote_port, 9000);
    }

    #[test]
    fn mirrored_preserves_totals() {
        let s = ConnSummary {
            ts: 60,
            key: sample_key(),
            pkts_sent: 10,
            pkts_rcvd: 7,
            bytes_sent: 1400,
            bytes_rcvd: 900,
        };
        let m = s.mirrored();
        assert_eq!(m.bytes_sent, 900);
        assert_eq!(m.pkts_sent, 7);
        assert_eq!(m.bytes_total(), s.bytes_total());
        assert_eq!(m.pkts_total(), s.pkts_total());
        assert_eq!(m.key, s.key.reversed());
    }

    #[test]
    fn well_formedness_rules() {
        let mut s = ConnSummary {
            ts: 0,
            key: sample_key(),
            pkts_sent: 1,
            pkts_rcvd: 0,
            bytes_sent: 52,
            bytes_rcvd: 0,
        };
        assert!(s.is_well_formed());
        s.pkts_sent = 0;
        assert!(!s.is_well_formed(), "bytes without packets is impossible");
        s.bytes_sent = 0;
        assert!(s.is_well_formed(), "an all-zero record is vacuously fine");
    }

    #[test]
    fn absorb_accumulates_and_saturates() {
        let mut a = ConnSummary {
            ts: 0,
            key: sample_key(),
            pkts_sent: u64::MAX - 1,
            pkts_rcvd: 1,
            bytes_sent: 10,
            bytes_rcvd: 20,
        };
        let b = ConnSummary { pkts_sent: 5, pkts_rcvd: 2, bytes_sent: 1, bytes_rcvd: 2, ..a };
        a.absorb(&b);
        assert_eq!(a.pkts_sent, u64::MAX, "saturates instead of wrapping");
        assert_eq!(a.pkts_rcvd, 3);
        assert_eq!(a.bytes_sent, 11);
        assert_eq!(a.bytes_rcvd, 22);
    }
}
