//! Burst statistics sketch — §3.1's open issue, prototyped.
//!
//! "Pushing sketches into programmable NICs may be needed to capture
//! information that is absent in a connection summary such as burst
//! statistics." A connection summary says a flow moved 60 MB in a minute; it
//! cannot say whether that was a 1 MB/s hum or a single 400 ms burst — and
//! the difference decides buffer sizing and incast diagnosis.
//!
//! [`BurstSketch`] is the NIC-resident piece: per flow, O(1) state per
//! packet-batch observation tracking the peak bytes seen in any sub-second
//! tick plus the total, from which the host agent derives a per-interval
//! **burst ratio** (peak tick rate / average rate). Memory is a few words
//! per tracked flow, bounded like the flow table itself.

use crate::record::FlowKey;
use serde::Serialize;
use std::collections::HashMap;

/// Per-flow burst state: current tick accumulation and the running peak.
#[derive(Debug, Clone, Copy, Default)]
struct BurstState {
    tick_start: u64,
    tick_bytes: u64,
    peak_tick_bytes: u64,
    total_bytes: u64,
    first_seen: u64,
    last_seen: u64,
}

/// Burst summary for one flow over the sketch's lifetime.
#[derive(Debug, Clone, Serialize)]
pub struct BurstSummary {
    /// Peak bytes observed in any single tick.
    pub peak_tick_bytes: u64,
    /// Total bytes observed.
    pub total_bytes: u64,
    /// Active span in seconds (≥ 1 tick).
    pub span_secs: u64,
    /// Peak tick rate divided by the flow's average rate: 1.0 for a
    /// perfectly smooth flow, ≫ 1 for bursts.
    pub burst_ratio: f64,
}

/// NIC-resident burst sketch with a bounded flow set.
#[derive(Debug)]
pub struct BurstSketch {
    tick_secs: u64,
    capacity: usize,
    flows: HashMap<FlowKey, BurstState>,
}

impl BurstSketch {
    /// Sketch with sub-interval `tick_secs` granularity over at most
    /// `capacity` flows (excess flows are ignored — on a real NIC the
    /// heavy-hitter stage decides which flows deserve burst tracking).
    ///
    /// # Panics
    /// Panics if `tick_secs` or `capacity` is zero.
    pub fn new(tick_secs: u64, capacity: usize) -> Self {
        assert!(tick_secs > 0, "tick must be positive");
        assert!(capacity > 0, "capacity must be positive");
        BurstSketch { tick_secs, capacity, flows: HashMap::new() }
    }

    /// Flows currently tracked.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Observe `bytes` for `key` at time `ts` (seconds). Observations must
    /// be non-decreasing in time per flow (NIC-local clock).
    pub fn observe(&mut self, ts: u64, key: FlowKey, bytes: u64) {
        if !self.flows.contains_key(&key) && self.flows.len() >= self.capacity {
            return; // bounded: untracked flows are simply not sketched
        }
        let tick = ts - ts % self.tick_secs;
        let st = self.flows.entry(key).or_insert_with(|| BurstState {
            tick_start: tick,
            first_seen: ts,
            ..BurstState::default()
        });
        if tick != st.tick_start {
            st.peak_tick_bytes = st.peak_tick_bytes.max(st.tick_bytes);
            st.tick_bytes = 0;
            st.tick_start = tick;
        }
        st.tick_bytes += bytes;
        st.total_bytes += bytes;
        st.last_seen = ts;
    }

    /// Finalize one flow's burst summary (folding the open tick).
    pub fn summary(&self, key: &FlowKey) -> Option<BurstSummary> {
        let st = self.flows.get(key)?;
        let peak = st.peak_tick_bytes.max(st.tick_bytes);
        let span = (st.last_seen - st.first_seen).max(self.tick_secs - 1) + 1;
        let avg_per_tick = st.total_bytes as f64 * self.tick_secs as f64 / span as f64;
        Some(BurstSummary {
            peak_tick_bytes: peak,
            total_bytes: st.total_bytes,
            span_secs: span,
            burst_ratio: if avg_per_tick > 0.0 { peak as f64 / avg_per_tick } else { 0.0 },
        })
    }

    /// Drain all flows into `(key, summary)` pairs, clearing the sketch —
    /// what the host agent pulls each interval alongside the flow table.
    pub fn drain(&mut self) -> Vec<(FlowKey, BurstSummary)> {
        let keys: Vec<FlowKey> = self.flows.keys().copied().collect();
        let mut out: Vec<(FlowKey, BurstSummary)> =
            keys.into_iter().filter_map(|k| self.summary(&k).map(|s| (k, s))).collect();
        self.flows.clear();
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u8) -> FlowKey {
        FlowKey::tcp(Ipv4Addr::new(10, 0, 0, i), 40_000, Ipv4Addr::new(10, 0, 1, 1), 443)
    }

    #[test]
    fn smooth_flow_has_ratio_near_one() {
        let mut s = BurstSketch::new(1, 64);
        for t in 0..60 {
            s.observe(t, key(1), 1000);
        }
        let b = s.summary(&key(1)).unwrap();
        assert_eq!(b.total_bytes, 60_000);
        assert_eq!(b.peak_tick_bytes, 1000);
        assert!((b.burst_ratio - 1.0).abs() < 0.05, "ratio {}", b.burst_ratio);
    }

    #[test]
    fn bursty_flow_has_high_ratio() {
        let mut s = BurstSketch::new(1, 64);
        // Everything in one second of a 60-second span.
        s.observe(0, key(1), 1);
        s.observe(30, key(1), 60_000);
        s.observe(59, key(1), 1);
        let b = s.summary(&key(1)).unwrap();
        assert_eq!(b.span_secs, 60);
        assert_eq!(b.peak_tick_bytes, 60_000);
        assert!(b.burst_ratio > 30.0, "ratio {}", b.burst_ratio);
    }

    #[test]
    fn open_tick_counts_toward_peak() {
        let mut s = BurstSketch::new(1, 64);
        s.observe(0, key(1), 10);
        s.observe(5, key(1), 500); // still in the open tick 5
        let b = s.summary(&key(1)).unwrap();
        assert_eq!(b.peak_tick_bytes, 500);
    }

    #[test]
    fn capacity_bounds_tracking() {
        let mut s = BurstSketch::new(1, 2);
        s.observe(0, key(1), 1);
        s.observe(0, key(2), 1);
        s.observe(0, key(3), 1); // ignored
        assert_eq!(s.len(), 2);
        assert!(s.summary(&key(3)).is_none());
        // Existing flows keep updating even at capacity.
        s.observe(1, key(1), 5);
        assert_eq!(s.summary(&key(1)).unwrap().total_bytes, 6);
    }

    #[test]
    fn drain_clears_and_sorts() {
        let mut s = BurstSketch::new(1, 8);
        s.observe(0, key(2), 10);
        s.observe(0, key(1), 10);
        let drained = s.drain();
        assert_eq!(drained.len(), 2);
        assert!(drained[0].0 < drained[1].0);
        assert!(s.is_empty());
    }

    #[test]
    fn coarser_ticks_smooth_the_signal() {
        let run = |tick: u64| {
            let mut s = BurstSketch::new(tick, 8);
            for t in 0..60u64 {
                // 10-second period: one hot second in ten.
                let bytes = if t % 10 == 0 { 10_000 } else { 100 };
                s.observe(t, key(1), bytes);
            }
            s.summary(&key(1)).unwrap().burst_ratio
        };
        let fine = run(1);
        let coarse = run(10);
        assert!(
            fine > coarse * 2.0,
            "1s ticks must expose bursts 10s ticks hide: {fine} vs {coarse}"
        );
    }
}
