//! Simulated smartNIC capture path (Figure 7 of the paper).
//!
//! Public-cloud hosts carry programmable NICs that already keep per-flow
//! state for network virtualization; recording a few counters per flow is a
//! small additional burden. This module simulates that capture path:
//!
//! * [`FlowTable`] — bounded per-flow counter state living "on the NIC".
//!   When the table is full, the least-recently-active flow is evicted and
//!   its counters are flushed as an early summary, so **no traffic is ever
//!   lost** — an invariant the tests and property tests pin down.
//! * [`HostAgent`] — the host-side process that periodically pulls the
//!   table and forwards connection summaries to the analytics service.
//!
//! Because collection happens below the guest OS, a breached VM cannot
//! tamper with it; the simulation preserves that boundary by exposing no way
//! for traffic observations to mutate already-recorded counters.

use crate::record::{ConnSummary, FlowKey};
use crate::time::bucket_start;
use std::collections::{BTreeSet, HashMap};

/// Direction of an observed packet relative to the local VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Sent by the local VM.
    Tx,
    /// Received by the local VM.
    Rx,
}

/// Per-flow counters accumulated since the last drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct FlowState {
    pkts_sent: u64,
    pkts_rcvd: u64,
    bytes_sent: u64,
    bytes_rcvd: u64,
    /// Timestamp of the most recent packet, for LRU eviction and idle GC.
    last_seen: u64,
}

impl FlowState {
    fn is_empty(&self) -> bool {
        self.pkts_sent == 0 && self.pkts_rcvd == 0
    }

    fn into_summary(self, key: FlowKey, bucket_ts: u64) -> ConnSummary {
        ConnSummary {
            ts: bucket_ts,
            key,
            pkts_sent: self.pkts_sent,
            pkts_rcvd: self.pkts_rcvd,
            bytes_sent: self.bytes_sent,
            bytes_rcvd: self.bytes_rcvd,
        }
    }
}

/// Counters describing flow-table behaviour, for capacity planning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Packets observed in total.
    pub packets_observed: u64,
    /// Bytes observed in total.
    pub bytes_observed: u64,
    /// Flows evicted early because the table was full.
    pub evictions: u64,
    /// Summaries emitted (drains + evictions).
    pub summaries_emitted: u64,
    /// High-water mark of concurrent flows.
    pub max_occupancy: usize,
}

/// Bounded per-flow counter table, as kept in smartNIC memory.
///
/// The memory footprint of real NIC telemetry is proportional to the number
/// of concurrent flows; `capacity` models that bound.
#[derive(Debug)]
pub struct FlowTable {
    flows: HashMap<FlowKey, FlowState>,
    /// LRU index: `(last_seen, key)` mirrors `flows`, so the eviction victim
    /// is always the first element — O(log n) per touch instead of a full
    /// scan per eviction (which dominates at NIC rates).
    lru: BTreeSet<(u64, FlowKey)>,
    capacity: usize,
    agg_interval: u64,
    stats: FlowTableStats,
}

impl FlowTable {
    /// Create a table holding at most `capacity` concurrent flows, emitting
    /// summaries bucketed to `agg_interval` seconds.
    ///
    /// # Panics
    /// Panics if `capacity` or `agg_interval` is zero.
    pub fn new(capacity: usize, agg_interval: u64) -> Self {
        assert!(capacity > 0, "flow table capacity must be positive");
        assert!(agg_interval > 0, "aggregation interval must be positive");
        FlowTable {
            flows: HashMap::with_capacity(capacity.min(1 << 16)),
            lru: BTreeSet::new(),
            capacity,
            agg_interval,
            stats: FlowTableStats::default(),
        }
    }

    /// Number of flows currently tracked.
    pub fn occupancy(&self) -> usize {
        self.flows.len()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }

    /// Record `pkts` packets totalling `bytes` for `key` at time `ts`.
    ///
    /// If the flow is new and the table is full, the least-recently-active
    /// flow is evicted and returned as an early summary that the host agent
    /// must forward; its counters are flushed, never dropped.
    pub fn observe(
        &mut self,
        ts: u64,
        key: FlowKey,
        dir: Direction,
        pkts: u64,
        bytes: u64,
    ) -> Option<ConnSummary> {
        self.stats.packets_observed += pkts;
        self.stats.bytes_observed += bytes;

        let mut evicted = None;
        match self.flows.get(&key) {
            Some(prev) => {
                // Re-key the LRU index to the new touch time.
                self.lru.remove(&(prev.last_seen, key));
            }
            None => {
                if self.flows.len() >= self.capacity {
                    evicted = self.evict_lru(ts);
                }
            }
        }
        self.lru.insert((ts, key));

        let st = self.flows.entry(key).or_default();
        st.last_seen = ts;
        match dir {
            Direction::Tx => {
                st.pkts_sent += pkts;
                st.bytes_sent += bytes;
            }
            Direction::Rx => {
                st.pkts_rcvd += pkts;
                st.bytes_rcvd += bytes;
            }
        }
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.flows.len());
        evicted
    }

    /// Evict the least-recently-seen flow, flushing non-empty counters.
    fn evict_lru(&mut self, now: u64) -> Option<ConnSummary> {
        let (last_seen, victim) = self.lru.first().copied()?;
        self.lru.remove(&(last_seen, victim));
        // The LRU index mirrors the flow map; if they ever diverge, the
        // stale index entry is already dropped above — skip this round
        // rather than panic inside the hot eviction path.
        let st = self.flows.remove(&victim)?;
        self.stats.evictions += 1;
        if st.is_empty() {
            return None;
        }
        self.stats.summaries_emitted += 1;
        Some(st.into_summary(victim, bucket_start(now, self.agg_interval)))
    }

    /// Drain every flow's counters into summaries for the bucket containing
    /// `now`, resetting counters but keeping flow entries so long-lived flows
    /// stay cheap. Flows idle since before `idle_cutoff` are removed.
    pub fn drain(&mut self, now: u64, idle_cutoff: u64) -> Vec<ConnSummary> {
        let bucket = bucket_start(now, self.agg_interval);
        let mut out = Vec::new();
        let lru = &mut self.lru;
        self.flows.retain(|key, st| {
            if !st.is_empty() {
                out.push(st.into_summary(*key, bucket));
                let last_seen = st.last_seen;
                *st = FlowState { last_seen, ..FlowState::default() };
            }
            let keep = st.last_seen >= idle_cutoff;
            if !keep {
                lru.remove(&(st.last_seen, *key));
            }
            keep
        });
        self.stats.summaries_emitted += out.len() as u64;
        // Deterministic output order regardless of hash-map iteration.
        out.sort_unstable_by_key(|s| s.key);
        out
    }
}

/// The host agent of Figure 7: periodically pulls the NIC flow table and
/// forwards connection summaries.
#[derive(Debug)]
pub struct HostAgent {
    table: FlowTable,
    agg_interval: u64,
    idle_timeout: u64,
    next_pull: u64,
    pending: Vec<ConnSummary>,
}

impl HostAgent {
    /// Create an agent pulling every `agg_interval` seconds from a table of
    /// `capacity` flows. Flows idle longer than `idle_timeout` seconds are
    /// garbage-collected on pull.
    pub fn new(capacity: usize, agg_interval: u64, idle_timeout: u64) -> Self {
        HostAgent {
            table: FlowTable::new(capacity, agg_interval),
            agg_interval,
            idle_timeout,
            next_pull: agg_interval,
            pending: Vec::new(),
        }
    }

    /// Observe traffic; early-evicted summaries are buffered for the next pull.
    pub fn observe(&mut self, ts: u64, key: FlowKey, dir: Direction, pkts: u64, bytes: u64) {
        if let Some(early) = self.table.observe(ts, key, dir, pkts, bytes) {
            self.pending.push(early);
        }
    }

    /// Advance the clock to `now`, returning all summaries whose pull time
    /// has arrived (possibly several intervals' worth if time jumped).
    pub fn poll(&mut self, now: u64) -> Vec<ConnSummary> {
        let mut out = Vec::new();
        while self.next_pull <= now {
            let pull_ts = self.next_pull;
            let cutoff = pull_ts.saturating_sub(self.idle_timeout);
            // The bucket that just closed starts one interval before the pull.
            out.extend(self.table.drain(pull_ts - self.agg_interval, cutoff));
            self.next_pull += self.agg_interval;
        }
        if !self.pending.is_empty() {
            out.append(&mut self.pending);
        }
        out
    }

    /// Force out everything still buffered, regardless of schedule. Used at
    /// simulation end so no traffic is unaccounted for.
    pub fn flush(&mut self, now: u64) -> Vec<ConnSummary> {
        let mut out = std::mem::take(&mut self.pending);
        out.extend(self.table.drain(now, u64::MAX));
        out
    }

    /// Flow-table behaviour counters.
    pub fn stats(&self) -> FlowTableStats {
        self.table.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u32) -> FlowKey {
        FlowKey::tcp(Ipv4Addr::new(10, 0, 0, 1), 40000 + i as u16, Ipv4Addr::new(10, 0, 1, 1), 443)
    }

    #[test]
    fn observe_then_drain_round_trips_counters() {
        let mut t = FlowTable::new(16, 60);
        t.observe(5, key(0), Direction::Tx, 3, 4500);
        t.observe(10, key(0), Direction::Rx, 2, 3000);
        let out = t.drain(59, 0);
        assert_eq!(out.len(), 1);
        let s = out[0];
        assert_eq!(s.ts, 0, "bucketed to interval start");
        assert_eq!((s.pkts_sent, s.bytes_sent), (3, 4500));
        assert_eq!((s.pkts_rcvd, s.bytes_rcvd), (2, 3000));
    }

    #[test]
    fn drain_resets_but_keeps_live_flows() {
        let mut t = FlowTable::new(16, 60);
        t.observe(5, key(0), Direction::Tx, 1, 100);
        assert_eq!(t.drain(59, 0).len(), 1);
        assert_eq!(t.occupancy(), 1, "live flow entry kept after drain");
        assert!(t.drain(119, 0).is_empty(), "no new traffic, no summary");
    }

    #[test]
    fn idle_flows_are_garbage_collected() {
        let mut t = FlowTable::new(16, 60);
        t.observe(5, key(0), Direction::Tx, 1, 100);
        t.drain(59, 0);
        // Cutoff after last_seen: entry removed.
        t.drain(119, 100);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn eviction_flushes_not_drops() {
        let mut t = FlowTable::new(2, 60);
        t.observe(1, key(0), Direction::Tx, 1, 10);
        t.observe(2, key(1), Direction::Tx, 1, 20);
        // Third flow forces out key(0), the LRU.
        let early = t.observe(3, key(2), Direction::Tx, 1, 30);
        let early = early.expect("full table must evict with a summary");
        assert_eq!(early.key, key(0));
        assert_eq!(early.bytes_sent, 10);
        assert_eq!(t.stats().evictions, 1);

        // Total mass across early + drained equals observed.
        let mut total: u64 = early.bytes_total();
        total += t.drain(59, 0).iter().map(|s| s.bytes_total()).sum::<u64>();
        assert_eq!(total, 60);
        assert_eq!(t.stats().bytes_observed, 60);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut t = FlowTable::new(8, 60);
        for i in 0..100 {
            t.observe(i as u64, key(i), Direction::Tx, 1, 100);
            assert!(t.occupancy() <= 8);
        }
        assert_eq!(t.stats().max_occupancy, 8);
    }

    #[test]
    fn agent_emits_on_schedule() {
        let mut a = HostAgent::new(16, 60, 300);
        a.observe(10, key(0), Direction::Tx, 5, 500);
        assert!(a.poll(59).is_empty(), "before the pull boundary");
        let out = a.poll(60);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts, 0);
    }

    #[test]
    fn agent_catches_up_after_clock_jump() {
        let mut a = HostAgent::new(16, 60, 3600);
        a.observe(10, key(0), Direction::Tx, 1, 100);
        let out = a.poll(300); // five intervals at once
        assert_eq!(out.len(), 1, "one summary from the first bucket, empty buckets silent");
        assert!(a.poll(300).is_empty(), "idempotent at same time");
    }

    #[test]
    fn flush_accounts_for_everything() {
        let mut a = HostAgent::new(2, 60, 3600);
        let mut observed = 0u64;
        for i in 0..50 {
            a.observe(i as u64, key(i), Direction::Tx, 2, 250);
            observed += 250;
        }
        let mut emitted: u64 = a.poll(60).iter().map(|s| s.bytes_total()).sum();
        emitted += a.flush(61).iter().map(|s| s.bytes_total()).sum::<u64>();
        assert_eq!(emitted, observed, "no bytes lost across evictions, polls, flush");
    }
}
