//! Counterfactual analyses (§2.3).
//!
//! Connection summaries convert into distributions of flow sizes and
//! inter-arrival times (quantized to the summary cadence), enabling
//! what-if reasoning without packet traces. This module implements the
//! paper's concrete example — *where are the communication bottlenecks, and
//! what should an administrator do about them* — as two advisors:
//!
//! * [`capacity_plan`] — nodes carrying an outsized share of bytes are
//!   candidates for a larger VM SKU (Figure 6's "where to invest").
//! * [`proximity_plan`] — node pairs exchanging heavy traffic are
//!   candidates for the same availability zone / proximity group.

use commgraph_graph::{CommGraph, NodeId};
use flowlog::record::ConnSummary;
use serde::Serialize;
use std::collections::HashMap;

/// Distribution summary of per-flow byte totals in a window.
#[derive(Debug, Clone, Serialize)]
pub struct FlowSizeDistribution {
    /// Number of distinct flows.
    pub flows: usize,
    /// Quantiles of flow size in bytes: (q, size) for q ∈ {.5,.9,.99,1.0}.
    pub quantiles: Vec<(f64, u64)>,
    /// Mean flow size in bytes.
    pub mean: f64,
}

/// Group records into flows (canonical key) and summarize total sizes.
pub fn flow_sizes(records: &[ConnSummary]) -> FlowSizeDistribution {
    let mut per_flow: HashMap<_, u64> = HashMap::new();
    for r in records {
        *per_flow.entry(r.key.canonical()).or_insert(0) += r.bytes_total();
    }
    let mut sizes: Vec<u64> = per_flow.into_values().collect();
    sizes.sort_unstable();
    let flows = sizes.len();
    if flows == 0 {
        return FlowSizeDistribution { flows: 0, quantiles: Vec::new(), mean: 0.0 };
    }
    let q = |p: f64| -> u64 { sizes[((flows as f64 - 1.0) * p).round() as usize] };
    FlowSizeDistribution {
        flows,
        quantiles: vec![(0.5, q(0.5)), (0.9, q(0.9)), (0.99, q(0.99)), (1.0, q(1.0))],
        mean: sizes.iter().sum::<u64>() as f64 / flows as f64,
    }
}

/// Distribution of new-flow inter-arrival times on each node pair,
/// quantized to the summary cadence.
#[derive(Debug, Clone, Serialize)]
pub struct InterArrivalSummary {
    /// Node pairs with at least two arrivals.
    pub pairs: usize,
    /// Median of per-pair median inter-arrival seconds.
    pub median_secs: f64,
    /// Fraction of pairs whose median inter-arrival is one interval (i.e.
    /// continuously active pairs).
    pub continuously_active_frac: f64,
}

/// Inter-arrival statistics of new flows per node pair.
pub fn inter_arrivals(records: &[ConnSummary], interval: u64) -> InterArrivalSummary {
    assert!(interval > 0, "interval must be positive");
    // First-seen timestamp per flow; arrival sequence per IP pair.
    let mut first_seen: HashMap<_, u64> = HashMap::new();
    for r in records {
        let e = first_seen.entry(r.key.canonical()).or_insert(r.ts);
        *e = (*e).min(r.ts);
    }
    let mut arrivals: HashMap<(std::net::Ipv4Addr, std::net::Ipv4Addr), Vec<u64>> = HashMap::new();
    for (key, ts) in first_seen {
        let pair = if key.local_ip <= key.remote_ip {
            (key.local_ip, key.remote_ip)
        } else {
            (key.remote_ip, key.local_ip)
        };
        arrivals.entry(pair).or_default().push(ts);
    }
    let mut medians: Vec<u64> = Vec::new();
    let mut continuous = 0usize;
    for times in arrivals.values_mut() {
        if times.len() < 2 {
            continue;
        }
        times.sort_unstable();
        let mut gaps: Vec<u64> = times.windows(2).map(|w| (w[1] - w[0]).max(interval)).collect();
        gaps.sort_unstable();
        let med = gaps[(gaps.len() - 1) / 2];
        if med <= interval {
            continuous += 1;
        }
        medians.push(med);
    }
    let pairs = medians.len();
    medians.sort_unstable();
    InterArrivalSummary {
        pairs,
        median_secs: if pairs == 0 { 0.0 } else { medians[(pairs - 1) / 2] as f64 },
        continuously_active_frac: if pairs == 0 { 0.0 } else { continuous as f64 / pairs as f64 },
    }
}

/// One capacity-investment recommendation.
#[derive(Debug, Clone, Serialize)]
pub struct CapacityAdvice {
    /// The hot node.
    pub node: String,
    /// Its share of total graph bytes.
    pub byte_share: f64,
    /// Its byte total.
    pub bytes: u64,
    /// Suggested action.
    pub action: &'static str,
}

/// Recommend SKU upgrades for nodes above `share_threshold` of total bytes.
pub fn capacity_plan(g: &CommGraph, share_threshold: f64) -> Vec<CapacityAdvice> {
    assert!((0.0..=1.0).contains(&share_threshold), "threshold in [0, 1]");
    // Node totals double-count each edge (both endpoints), so normalize by
    // twice the edge totals.
    let total = (g.totals().bytes() as f64 * 2.0).max(1.0);
    let mut out = Vec::new();
    for idx in g.nodes_by_bytes() {
        let bytes = g.node_stats(idx).bytes;
        let share = bytes as f64 / total;
        if share < share_threshold {
            break; // sorted descending
        }
        out.push(CapacityAdvice {
            node: g.node(idx).to_string(),
            byte_share: share,
            bytes,
            action: "upgrade VM SKU / add NIC bandwidth",
        });
    }
    out
}

/// One co-location recommendation.
#[derive(Debug, Clone, Serialize)]
pub struct ProximityAdvice {
    /// One endpoint.
    pub a: String,
    /// The other endpoint.
    pub b: String,
    /// Bytes exchanged on the edge.
    pub bytes: u64,
    /// Suggested action.
    pub action: &'static str,
}

/// Recommend proximity placement for the `top_k` heaviest edges whose
/// endpoints are both `placeable` (typically: both inside the subscription —
/// external clients and the collapsed [`NodeId::Other`] cannot be moved).
pub fn proximity_plan_filtered(
    g: &CommGraph,
    top_k: usize,
    placeable: impl Fn(&NodeId) -> bool,
) -> Vec<ProximityAdvice> {
    let mut edges: Vec<(u64, NodeId, NodeId)> = Vec::new();
    for i in 0..g.node_count() as u32 {
        for (j, stats) in g.neighbors(i) {
            if *j <= i {
                continue;
            }
            let (a, b) = (g.node(i), g.node(*j));
            if a == NodeId::Other || b == NodeId::Other || !placeable(&a) || !placeable(&b) {
                continue;
            }
            edges.push((stats.bytes(), a, b));
        }
    }
    edges.sort_by_key(|(bytes, _, _)| std::cmp::Reverse(*bytes));
    edges
        .into_iter()
        .take(top_k)
        .map(|(bytes, a, b)| ProximityAdvice {
            a: a.to_string(),
            b: b.to_string(),
            bytes,
            action: "co-locate in one availability zone / proximity group",
        })
        .collect()
}

/// [`proximity_plan_filtered`] with every non-`Other` node placeable.
pub fn proximity_plan(g: &CommGraph, top_k: usize) -> Vec<ProximityAdvice> {
    proximity_plan_filtered(g, top_k, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph_graph::EdgeStats;
    use flowlog::record::FlowKey;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    fn rec(ts: u64, lport: u16, bytes: u64) -> ConnSummary {
        ConnSummary {
            ts,
            key: FlowKey::tcp(ip(1), lport, ip(2), 443),
            pkts_sent: bytes / 1000 + 1,
            pkts_rcvd: 1,
            bytes_sent: bytes,
            bytes_rcvd: 0,
        }
    }

    #[test]
    fn flow_sizes_group_by_flow() {
        // Flow A spans two minutes (same key), flow B is one minute.
        let records = vec![rec(0, 40_000, 1000), rec(60, 40_000, 1000), rec(0, 40_001, 500)];
        let d = flow_sizes(&records);
        assert_eq!(d.flows, 2);
        assert_eq!(d.quantiles.last().unwrap().1, 2000, "max flow accumulated");
        assert!((d.mean - 1250.0).abs() < 1e-9);
    }

    #[test]
    fn flow_sizes_empty() {
        let d = flow_sizes(&[]);
        assert_eq!(d.flows, 0);
        assert_eq!(d.mean, 0.0);
    }

    #[test]
    fn inter_arrivals_detect_continuous_pairs() {
        // New flow every minute between the same pair: continuously active.
        let records: Vec<ConnSummary> =
            (0..10).map(|m| rec(m * 60, 40_000 + m as u16, 100)).collect();
        let s = inter_arrivals(&records, 60);
        assert_eq!(s.pairs, 1);
        assert_eq!(s.median_secs, 60.0);
        assert_eq!(s.continuously_active_frac, 1.0);
    }

    #[test]
    fn inter_arrivals_sparse_pairs() {
        // Arrivals 10 minutes apart.
        let records = vec![rec(0, 40_000, 100), rec(600, 40_001, 100)];
        let s = inter_arrivals(&records, 60);
        assert_eq!(s.pairs, 1);
        assert_eq!(s.median_secs, 600.0);
        assert_eq!(s.continuously_active_frac, 0.0);
    }

    fn graph() -> CommGraph {
        let mut edges = std::collections::HashMap::new();
        let st = |b: u64| EdgeStats { bytes_fwd: b, conns: 1, ..Default::default() };
        edges.insert((NodeId::Ip(ip(1)), NodeId::Ip(ip(2))), st(1_000_000));
        edges.insert((NodeId::Ip(ip(3)), NodeId::Ip(ip(4))), st(10_000));
        edges.insert((NodeId::Ip(ip(5)), NodeId::Other), st(500_000));
        CommGraph::from_edge_map("ip", 0, 3600, edges)
    }

    #[test]
    fn capacity_plan_flags_heavy_nodes_only() {
        let plan = capacity_plan(&graph(), 0.2);
        let names: Vec<&str> = plan.iter().map(|a| a.node.as_str()).collect();
        assert!(names.contains(&"10.0.0.1") && names.contains(&"10.0.0.2"));
        assert!(!names.contains(&"10.0.0.3"), "light nodes not flagged");
        for a in &plan {
            assert!(a.byte_share >= 0.2);
        }
    }

    #[test]
    fn proximity_plan_ranks_and_skips_other() {
        let plan = proximity_plan(&graph(), 2);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].bytes, 1_000_000);
        assert!(
            plan.iter().all(|p| p.a != "OTHER" && p.b != "OTHER"),
            "collapsed node is not placeable"
        );
    }
}
