//! The subscription security report: everything an administrator needs
//! from one telemetry window, in one structure.
//!
//! This is the artifact the paper's SaaS tier (Figure 8) would mail the
//! customer: cluster shape, inferred roles, segmentation posture, blast
//! radii, traffic concentration, and rule-compilation feasibility —
//! serializable as JSON for dashboards and renderable as text for humans.

use crate::workbench::Workbench;
use algos::stats::{byte_gini, detect_hubs, top_share};
use segment::compile::{compile, CompilationReport, PAPER_VM_RULE_LIMIT};
use serde::Serialize;
use std::fmt::Write as _;

/// The assembled report.
#[derive(Debug, Clone, Serialize)]
pub struct SecurityReport {
    /// Window metadata.
    pub window_start: u64,
    /// Window length in seconds.
    pub window_len: u64,
    /// Records analyzed.
    pub records: usize,
    /// Monitored resources.
    pub monitored: usize,
    /// Graph shape.
    pub graph: GraphSection,
    /// Segmentation posture.
    pub segmentation: SegmentationSection,
    /// Traffic concentration.
    pub traffic: TrafficSection,
    /// Rule-compilation feasibility.
    pub rules: RuleSection,
}

/// Graph shape numbers.
#[derive(Debug, Clone, Serialize)]
pub struct GraphSection {
    /// Nodes in the collapsed IP graph.
    pub nodes: usize,
    /// Edges.
    pub edges: usize,
    /// Bytes moved in the window.
    pub bytes: u64,
    /// Distinct connections.
    pub conns: u64,
    /// Hub nodes (degree ≥ 5× mean) — likely control-plane components.
    pub hubs: Vec<String>,
}

/// Segmentation posture numbers.
#[derive(Debug, Clone, Serialize)]
pub struct SegmentationSection {
    /// Inferred roles.
    pub roles: usize,
    /// µsegments (roles split by internal/external membership).
    pub segments: usize,
    /// Learned allow rules (everything else denied).
    pub allow_rules: usize,
    /// Mean resources a breached VM can reach directly under policy.
    pub mean_blast_direct: f64,
    /// Worst-case direct reach.
    pub max_blast_direct: usize,
    /// Blast reduction factor vs unsegmented.
    pub blast_reduction: f64,
}

/// Traffic concentration numbers.
#[derive(Debug, Clone, Serialize)]
pub struct TrafficSection {
    /// Byte share of the heaviest 5% of nodes.
    pub top5_share: f64,
    /// Gini coefficient of per-node bytes.
    pub gini: f64,
}

/// Rule-compilation feasibility numbers.
#[derive(Debug, Clone, Serialize)]
pub struct RuleSection {
    /// Max per-VM rules under naive per-IP unrolling.
    pub max_ip_rules: usize,
    /// VMs over the per-VM budget with per-IP rules.
    pub vms_over_limit: usize,
    /// Max per-VM rules with tag enforcement.
    pub max_tag_rules: usize,
    /// Fleet-wide rule ratio (ip / tag).
    pub tag_compression: f64,
}

/// Assemble the report from a workbench session.
pub fn security_report(wb: &mut Workbench) -> SecurityReport {
    let records = wb.records().len();
    let monitored = wb.monitored().len();
    let blast = wb.blast_report();
    let seg = wb.segmentation().clone();
    let policy = wb.policy().clone();
    let comp: CompilationReport = compile(&seg, &policy, PAPER_VM_RULE_LIMIT);
    let roles = wb.roles().n_roles;
    let g = wb.ip_graph();
    SecurityReport {
        window_start: g.window_start(),
        window_len: g.window_len(),
        records,
        monitored,
        graph: GraphSection {
            nodes: g.node_count(),
            edges: g.edge_count(),
            bytes: g.totals().bytes(),
            conns: g.totals().conns,
            hubs: detect_hubs(g, 5.0).into_iter().take(5).map(|h| h.label).collect(),
        },
        segmentation: SegmentationSection {
            roles,
            segments: seg.len(),
            allow_rules: policy.rule_count(),
            mean_blast_direct: blast.mean_direct,
            max_blast_direct: blast.max_direct,
            blast_reduction: if blast.mean_direct > 0.0 {
                (blast.resources as f64 - 1.0) / blast.mean_direct
            } else {
                f64::INFINITY
            },
        },
        traffic: TrafficSection { top5_share: top_share(g, 0.05), gini: byte_gini(g) },
        rules: RuleSection {
            max_ip_rules: comp.max_ip_rules,
            vms_over_limit: comp.vms_over_limit_ip,
            max_tag_rules: comp.max_tag_rules,
            tag_compression: comp.total_ip_rules as f64 / comp.total_tag_rules.max(1) as f64,
        },
    }
}

impl SecurityReport {
    /// Render as human-readable text.
    pub fn to_text(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "SUBSCRIPTION SECURITY REPORT");
        let _ = writeln!(
            o,
            "window: {}s starting t={} | {} records from {} monitored resources",
            self.window_len, self.window_start, self.records, self.monitored
        );
        let _ = writeln!(o, "\ncommunication graph");
        let _ = writeln!(
            o,
            "  {} nodes, {} edges, {:.1} MB, {} connections",
            self.graph.nodes,
            self.graph.edges,
            self.graph.bytes as f64 / 1e6,
            self.graph.conns
        );
        if !self.graph.hubs.is_empty() {
            let _ = writeln!(o, "  control-plane hubs: {}", self.graph.hubs.join(", "));
        }
        let _ = writeln!(o, "\nsegmentation posture");
        let _ = writeln!(
            o,
            "  {} roles → {} µsegments, {} allow rules (default deny)",
            self.segmentation.roles, self.segmentation.segments, self.segmentation.allow_rules
        );
        let _ = writeln!(
            o,
            "  blast radius: mean {:.1} / worst {} resources ({:.1}x better than unsegmented)",
            self.segmentation.mean_blast_direct,
            self.segmentation.max_blast_direct,
            self.segmentation.blast_reduction
        );
        let _ = writeln!(o, "\ntraffic concentration");
        let _ = writeln!(
            o,
            "  top 5% of nodes carry {:.0}% of bytes (gini {:.2})",
            self.traffic.top5_share * 100.0,
            self.traffic.gini
        );
        let _ = writeln!(o, "\nenforcement feasibility");
        let _ = writeln!(
            o,
            "  per-IP rules: max {}/VM ({} VMs over the {} limit); tags: max {}/VM ({:.0}x fewer rules)",
            self.rules.max_ip_rules,
            self.rules.vms_over_limit,
            segment::compile::PAPER_VM_RULE_LIMIT,
            self.rules.max_tag_rules,
            self.rules.tag_compression
        );
        o
    }

    /// Render as pretty JSON. Serialization of this plain-data struct
    /// cannot fail; if it ever did, the error surfaces as a JSON document
    /// rather than a panic in a reporting path.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"report_error\":\"{e}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{ClusterPreset, Simulator};
    use std::collections::HashSet;
    use std::net::Ipv4Addr;

    fn session() -> Workbench {
        let preset = ClusterPreset::MicroserviceBench;
        let mut sim =
            Simulator::new(preset.topology_scaled(0.3), preset.default_sim_config()).unwrap();
        let records = sim.collect(5);
        let monitored: HashSet<Ipv4Addr> =
            sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();
        Workbench::new(records, monitored)
    }

    #[test]
    fn report_is_complete_and_renderable() {
        let mut wb = session();
        let r = security_report(&mut wb);
        assert!(r.graph.nodes > 0);
        assert!(r.segmentation.segments > 0);
        assert!(r.segmentation.allow_rules > 0);
        assert!(r.traffic.top5_share > 0.0);
        let text = r.to_text();
        assert!(text.contains("SUBSCRIPTION SECURITY REPORT"));
        assert!(text.contains("blast radius"));
        let json = r.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["graph"]["nodes"].as_u64().unwrap() as usize, r.graph.nodes);
    }

    #[test]
    fn report_is_deterministic() {
        let a = security_report(&mut session()).to_json();
        let b = security_report(&mut session()).to_json();
        assert_eq!(a, b);
    }
}
