//! `commgraph` — dynamic communication graphs for securing public clouds.
//!
//! This is the top-level crate of the reproduction of *"Securing Public
//! Clouds using Dynamic Communication Graphs"* (HotNets '23). It stitches
//! the substrate crates into the system the paper sketches:
//!
//! ```text
//!  telemetry (flowlog) ──► graphs (graph) ──► analyses (algos/linalg)
//!        ▲                                         │
//!   simulation (cloudsim)                          ▼
//!        └──────────────── security (segment) ◄── pipeline (this crate)
//! ```
//!
//! * [`pipeline`] — streaming construction of hourly graph sequences from a
//!   record stream.
//! * [`workbench`] — a batteries-included session over one telemetry
//!   window: graphs, role inference, µsegmentation, policies, violations,
//!   blast radii, low-rank summaries, CCDFs — each memoized on first use.
//! * [`monitor`] — the continuous Figure 8 loop: learn a baseline, then
//!   enforce policies, score anomalies, and diff structure window by window.
//! * [`counterfactual`] — §2.3's analyses: flow-size and inter-arrival
//!   distributions, capacity-investment and proximity-placement advice.
//!
//! The substrate crates are re-exported under their natural names
//! ([`flowlog`], [`cloudsim`], [`graph`], [`linalg`], [`algos`],
//! [`segment`], [`analytics`], [`obs`]) so downstream users depend on this
//! crate alone. Every stage accepts an [`obs::Obs`] handle (default: noop)
//! and reports wall-time spans, counters, and events through it — see the
//! `obs` crate docs for the observability model.
//!
//! # Quickstart
//!
//! ```
//! use commgraph::cloudsim::{ClusterPreset, Simulator};
//! use commgraph::workbench::Workbench;
//!
//! // Synthesize one hour of a small cluster's flow telemetry.
//! let preset = ClusterPreset::MicroserviceBench;
//! let mut sim = Simulator::new(
//!     preset.topology_scaled(0.25),
//!     preset.default_sim_config(),
//! ).unwrap();
//! let records = sim.collect(10);
//!
//! // Build graphs and run the paper's analyses.
//! let monitored = sim.ground_truth().ip_roles.keys().copied()
//!     .filter(|ip| ip.octets()[0] == 10).collect();
//! let mut wb = Workbench::new(records, monitored);
//! let graph = wb.ip_graph();
//! assert!(graph.node_count() > 0);
//! let roles = wb.roles();
//! assert!(roles.n_roles >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod counterfactual;
pub mod monitor;
pub mod pipeline;
pub mod report;
pub mod workbench;

pub use pipeline::{Pipeline, PipelineConfig};
pub use workbench::Workbench;

// Substrate re-exports: one dependency for downstream users.
pub use ::algos;
pub use ::analytics;
pub use ::cloudsim;
pub use ::flowlog;
pub use ::linalg;
pub use ::obs;
pub use ::segment;
pub use commgraph_graph as graph;
