//! Streaming pipeline: records in, hourly graph sequences out.
//!
//! A thin orchestration layer over [`commgraph_graph::builder::WindowedBuilder`]
//! that tracks record rates (Table 1's records/minute column) and hands back
//! a validated [`commgraph_graph::series::GraphSequence`].

use algos::roles::{
    infer_roles_incremental_obs, infer_roles_obs, RoleInference, RoleMemo, SegmentationMethod,
};
use commgraph_graph::builder::WindowedBuilder;
use commgraph_graph::series::GraphSequence;
use commgraph_graph::{CommGraph, Facet, NodeId, Result as GraphResult};
use flowlog::record::ConnSummary;
use flowlog::time::bucket_start;
use linalg::Parallelism;
use obs::{AlertEngine, Obs, Scraper};
use segment::{SegmentPolicy, Segmentation};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Facet of the produced graphs.
    pub facet: Facet,
    /// Window length in seconds (3600 for the paper's hourly graphs).
    pub window_len: u64,
    /// Monitored inventory for vantage dedup; `None` disables dedup.
    pub monitored: Option<HashSet<Ipv4Addr>>,
    /// Worker count forwarded to downstream per-window analyses (role
    /// inference — similarity scoring and Louvain clustering both — and
    /// PCA). Ingest itself is serial — it is I/O-bound.
    pub parallelism: Parallelism,
    /// Observability handle; every `ingest` call reports a span on the
    /// shared `commgraph_stage_seconds{stage="ingest"}` family. The default
    /// noop handle makes instrumentation cost one branch.
    pub obs: Obs,
    /// Maintain windows incrementally (default): track per-window dirty
    /// sets in the builder so downstream analyses ([`WindowAnalyzer`]) can
    /// reuse previous-window state, and report dirty-set sizes on
    /// `commgraph_window_dirty_nodes`. Turning this off restores the
    /// full-rebuild behavior — the oracle the incremental path is verified
    /// against.
    pub incremental: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            facet: Facet::Ip,
            window_len: 3600,
            monitored: None,
            parallelism: Parallelism::default(),
            obs: Obs::noop(),
            incremental: true,
        }
    }
}

/// Output of a finished pipeline.
#[derive(Debug)]
pub struct PipelineOutput {
    /// One graph per window, in time order.
    pub sequence: GraphSequence,
    /// Per-window dirty sets, aligned with `sequence`: the sorted nodes
    /// whose adjacency changed vs the previous window. Without incremental
    /// maintenance every window conservatively reports all its nodes dirty.
    pub dirty_sets: Vec<Vec<NodeId>>,
    /// Records ingested per minute bucket (sorted by minute).
    pub records_per_minute: Vec<(u64, u64)>,
    /// Total records ingested.
    pub total_records: u64,
}

impl PipelineOutput {
    /// Mean records/minute over *occupied* minute buckets — Table 1's rate
    /// column.
    ///
    /// This is the [`obs::rate::per_bucket`] semantics: a typical active
    /// minute's load, deliberately ignoring empty minutes inside gaps. It is
    /// **not** a wall-clock throughput; for "how fast did the machine run"
    /// see `EngineStats::records_per_sec` ([`obs::rate::per_second`]).
    pub fn mean_records_per_minute(&self) -> f64 {
        obs::rate::per_bucket(self.total_records, self.records_per_minute.len())
    }

    /// Serializable roll-up of this output (the [`GraphSequence`] itself is
    /// not serializable; this carries the numbers reports embed).
    pub fn summary(&self) -> PipelineSummary {
        PipelineSummary {
            windows: self.sequence.len(),
            total_records: self.total_records,
            minutes_occupied: self.records_per_minute.len(),
            mean_records_per_minute: self.mean_records_per_minute(),
        }
    }
}

/// Serializable summary of a [`PipelineOutput`], embedded in bench reports.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineSummary {
    /// Windows in the produced sequence.
    pub windows: usize,
    /// Total records ingested.
    pub total_records: u64,
    /// Minute buckets that saw at least one record.
    pub minutes_occupied: usize,
    /// Per-occupied-minute mean rate (see
    /// [`PipelineOutput::mean_records_per_minute`] for the exact semantics).
    pub mean_records_per_minute: f64,
}

/// Streaming-health metric handles, resolved once at pipeline construction
/// (all noop — and free — without a registry).
#[derive(Debug)]
struct PipelineMetrics {
    watermark: obs::Gauge,
    roll_lag: obs::Histogram,
    late: obs::Counter,
    dropped_late: obs::Counter,
    dirty_nodes: obs::Histogram,
}

impl PipelineMetrics {
    fn resolve(o: &Obs) -> PipelineMetrics {
        PipelineMetrics {
            dirty_nodes: o.histogram(
                "commgraph_window_dirty_nodes",
                "Dirty-set size per rolled window (nodes whose adjacency changed since the previous window).",
                &[("source", "pipeline")],
            ),
            watermark: o.gauge(
                "commgraph_ingest_watermark_seconds",
                "High-water record timestamp (seconds since trace start) seen by an ingest path.",
                &[("source", "pipeline")],
            ),
            roll_lag: o.histogram(
                "commgraph_window_roll_lag_seconds",
                "Lag between a window's nominal start and the record that rolled it open.",
                &[("source", "pipeline")],
            ),
            late: o.counter(
                "commgraph_pipeline_late_records_total",
                "Dedup-surviving records arriving behind the pipeline's ingest watermark (out-of-order input).",
                &[],
            ),
            dropped_late: o.counter(
                "commgraph_pipeline_dropped_late_records_total",
                "Dedup-surviving records dropped because their window had already closed when they arrived.",
                &[],
            ),
        }
    }
}

/// The streaming pipeline. Feed batches with [`Pipeline::ingest`], then call
/// [`Pipeline::finish`].
#[derive(Debug)]
pub struct Pipeline {
    builder: WindowedBuilder,
    per_minute: HashMap<u64, u64>,
    total: u64,
    window_len: u64,
    /// Highest record timestamp seen so far (the ingest watermark).
    watermark: u64,
    /// Start of the window currently open, once any record arrived.
    current_window: Option<u64>,
    parallelism: Parallelism,
    obs: Obs,
    metrics: PipelineMetrics,
    incremental: bool,
}

impl Pipeline {
    /// Create a pipeline from a config.
    pub fn new(cfg: PipelineConfig) -> Self {
        let mut builder = WindowedBuilder::new(cfg.facet, cfg.window_len);
        if let Some(m) = cfg.monitored {
            builder = builder.with_monitored(m);
        }
        if cfg.incremental {
            builder = builder.with_dirty_tracking();
        }
        let metrics = PipelineMetrics::resolve(&cfg.obs);
        Pipeline {
            builder,
            per_minute: HashMap::new(),
            total: 0,
            window_len: cfg.window_len,
            watermark: 0,
            current_window: None,
            parallelism: cfg.parallelism,
            obs: cfg.obs,
            metrics,
            incremental: cfg.incremental,
        }
    }

    /// The worker count per-window analyses should run at (e.g. pass it to
    /// [`crate::Workbench::with_parallelism`] for each finished window).
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Ingest a batch of records. Timestamps may jitter within the open
    /// window; a record whose window has already closed is excluded from
    /// the graphs deterministically (and counted on
    /// `commgraph_pipeline_dropped_late_records_total`).
    ///
    /// Lateness accounting is dedup-aware: only records that survive
    /// vantage dedup can bump the late or dropped-late counters — the
    /// non-canonical copy of a double-reported flow never contributes to a
    /// graph, so counting it as "late" would conflate duplication with
    /// out-of-order delivery.
    pub fn ingest(&mut self, records: &[ConnSummary]) {
        let mut span = self.obs.stage_span("ingest");
        if span.trace_enabled() {
            span.trace_attr("records", &records.len().to_string());
        }
        for r in records {
            let survives = self.builder.survives_dedup(r);
            let behind_watermark = self.total > 0 && r.ts < self.watermark;
            self.watermark = self.watermark.max(r.ts);
            let window = bucket_start(r.ts, self.window_len);
            if self.current_window.is_some_and(|cur| window > cur) {
                // Roll lag: how far into the new window its first record
                // lands — the freshness bound of the previous window's graph.
                self.metrics.roll_lag.record((r.ts - window) as f64);
            }
            if self.current_window.is_none_or(|cur| window > cur) {
                self.current_window = Some(window);
            }
            *self.per_minute.entry(bucket_start(r.ts, 60)).or_insert(0) += 1;
            self.total += 1;
            if self.builder.add(r) {
                if survives && behind_watermark {
                    self.metrics.late.inc();
                }
            } else if survives {
                // Behind the last closed window: excluded from graphs, so
                // it is a *drop*, not merely late.
                self.metrics.dropped_late.inc();
            }
        }
        self.metrics.watermark.set(self.watermark as f64);
    }

    /// Close the stream and produce the graph sequence.
    pub fn finish(self) -> GraphResult<PipelineOutput> {
        let mut tspan = self.obs.trace_span("pipeline_finish");
        let with_dirty = self.builder.finish_with_dirty();
        if self.incremental {
            for (_, dirty) in &with_dirty {
                self.metrics.dirty_nodes.record(dirty.len() as f64);
            }
        }
        let (graphs, dirty_sets): (Vec<_>, Vec<_>) = with_dirty.into_iter().unzip();
        let sequence = GraphSequence::from_graphs(graphs)?;
        let mut records_per_minute: Vec<(u64, u64)> = self.per_minute.into_iter().collect();
        records_per_minute.sort_unstable();
        if tspan.is_enabled() {
            tspan.attr("windows", &sequence.len().to_string());
            tspan.attr("total_records", &self.total.to_string());
        }
        Ok(PipelineOutput { sequence, dirty_sets, records_per_minute, total_records: self.total })
    }
}

/// One window's analysis results (roles → µsegments → policy).
#[derive(Debug, Clone)]
pub struct WindowAnalysis {
    /// Window start timestamp of the analyzed graph.
    pub window_start: u64,
    /// Inferred roles.
    pub roles: RoleInference,
    /// µsegmentation derived from the roles.
    pub segmentation: Segmentation,
    /// Default-deny policy learned from the window's records.
    pub policy: SegmentPolicy,
}

/// Per-window analysis driver that exploits the paper's Figure 5
/// observation — consecutive windows barely differ — by carrying state from
/// one window to the next: the similarity matrix and partition seed the
/// next role inference ([`infer_roles_incremental_obs`]), and the previous
/// segmentation + policy let rule synthesis skip segment pairs whose
/// membership and traffic did not change
/// ([`SegmentPolicy::learn_incremental`]).
///
/// Feed it consecutive windows (graph, dirty set, records) from a
/// [`PipelineOutput`] built with `incremental: true`. With
/// `incremental: false` every window runs the full-rebuild path — the
/// oracle the incremental results are bit-exact against (same labels,
/// modularity, and allow rules on every window; asserted by this module's
/// tests and the bench equivalence checks).
///
/// Warm windows record their estimated time saved vs the most recent full
/// rebuild on `commgraph_incremental_savings_seconds`.
///
/// The analyzer is also the deterministic tick source for metrics history
/// and alerting: attach a [`Scraper`] and [`AlertEngine`] with
/// [`WindowAnalyzer::with_telemetry`] and every analyzed window advances one
/// logical tick — scrape first (which also evaluates any recording rules
/// installed on the scraper, writing their synthetic series at the same
/// tick), evaluate alerts second, so alert expressions can reference
/// rule-produced series from the current tick. Ticks never read the clock,
/// so the same input stream produces a bit-identical alert transition
/// sequence on every run.
#[derive(Debug)]
pub struct WindowAnalyzer {
    min_score: f64,
    port_scoped: bool,
    incremental: bool,
    monitored: HashSet<Ipv4Addr>,
    parallelism: Parallelism,
    obs: Obs,
    memo: Option<RoleMemo>,
    prev: Option<(Segmentation, SegmentPolicy)>,
    last_full_secs: Option<f64>,
    savings: obs::Histogram,
    subscription: Option<String>,
    dirty_gauge: obs::Gauge,
    telemetry: Option<(Arc<Scraper>, Arc<AlertEngine>)>,
    tick: u64,
}

impl WindowAnalyzer {
    /// New analyzer over the monitored inventory. Defaults: the paper's
    /// Jaccard+Louvain method at `min_score` 0.1, port-scoped policies,
    /// default parallelism, noop observability.
    pub fn new(monitored: HashSet<Ipv4Addr>, incremental: bool) -> Self {
        let obs = Obs::noop();
        let savings = Self::resolve_savings(&obs);
        WindowAnalyzer {
            min_score: 0.1,
            port_scoped: true,
            incremental,
            monitored,
            parallelism: Parallelism::default(),
            obs,
            memo: None,
            prev: None,
            last_full_secs: None,
            savings,
            subscription: None,
            dirty_gauge: obs::Gauge::noop(),
            telemetry: None,
            tick: 0,
        }
    }

    fn resolve_savings(o: &Obs) -> obs::Histogram {
        o.histogram(
            "commgraph_incremental_savings_seconds",
            "Estimated per-window seconds saved by incremental maintenance vs the most recent full rebuild.",
            &[],
        )
    }

    fn resolve_dirty_gauge(o: &Obs, subscription: &str) -> obs::Gauge {
        o.gauge(
            "commgraph_subscription_dirty_nodes",
            "Dirty-set size of the most recently analyzed window, per subscription.",
            &[("subscription", subscription)],
        )
    }

    /// Override the worker count (builder style).
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Attach an observability handle (builder style): stage spans for
    /// similarity/cluster/policy plus the incremental-savings histogram.
    pub fn with_obs(mut self, o: Obs) -> Self {
        self.savings = Self::resolve_savings(&o);
        if let Some(sub) = &self.subscription {
            self.dirty_gauge = Self::resolve_dirty_gauge(&o, sub);
        }
        self.obs = o;
        self
    }

    /// Label this analyzer's health telemetry with a subscription id
    /// (builder style): each [`WindowAnalyzer::analyze`] call publishes the
    /// window's dirty-set size on
    /// `commgraph_subscription_dirty_nodes{subscription=...}`. Callers
    /// multiplexing many tenants should pass the label through an
    /// [`obs::LabelCap`] first to bound cardinality.
    pub fn with_subscription(mut self, subscription: &str) -> Self {
        self.dirty_gauge = Self::resolve_dirty_gauge(&self.obs, subscription);
        self.subscription = Some(subscription.to_string());
        self
    }

    /// Drive metrics history and alerting from window rolls (builder
    /// style): after each analyzed window the analyzer advances one logical
    /// tick, scrapes the scraper's registry into its TSDB, and evaluates the
    /// alert rules against the freshly scraped history. The tick counter
    /// starts at zero and never reads the wall clock, so replaying the same
    /// stream yields a bit-identical alert transition sequence.
    pub fn with_telemetry(mut self, scraper: Arc<Scraper>, alerts: Arc<AlertEngine>) -> Self {
        self.telemetry = Some((scraper, alerts));
        self
    }

    /// Logical ticks elapsed (windows analyzed) since construction; only
    /// advanced when telemetry is attached.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Override the similarity floor of the role inference (builder style).
    pub fn with_min_score(mut self, s: f64) -> Self {
        self.min_score = s;
        self
    }

    /// Analyze one window. `dirty` is the window's dirty set from
    /// [`PipelineOutput::dirty_sets`] and `records` the window's raw
    /// records (for policy learning). Windows must be fed consecutively —
    /// a dirty set is only meaningful relative to the immediately
    /// preceding window.
    pub fn analyze(
        &mut self,
        g: &CommGraph,
        dirty: &[NodeId],
        records: &[ConnSummary],
    ) -> segment::Result<WindowAnalysis> {
        let t0 = Instant::now();
        let warm = self.incremental && self.memo.is_some();
        let (roles, memo) = if self.incremental {
            let (r, m) = infer_roles_incremental_obs(
                g,
                dirty,
                self.memo.as_ref(),
                self.min_score,
                self.parallelism,
                &self.obs,
            );
            (r, Some(m))
        } else {
            let method = SegmentationMethod::JaccardLouvain { min_score: self.min_score };
            (infer_roles_obs(g, &method, self.parallelism, &self.obs), None)
        };
        let monitored = &self.monitored;
        let segmentation = Segmentation::from_inference(g, &roles, |ip| monitored.contains(&ip))?;
        let policy = {
            let _span = self.obs.stage_span("policy");
            match &self.prev {
                Some((prev_seg, prev_policy)) if warm => {
                    let dirty_ips: HashSet<Ipv4Addr> =
                        dirty.iter().filter_map(|n| n.ip()).collect();
                    SegmentPolicy::learn_incremental(
                        records,
                        &segmentation,
                        prev_seg,
                        prev_policy,
                        &dirty_ips,
                        self.port_scoped,
                    )
                }
                _ => SegmentPolicy::learn(records, &segmentation, self.port_scoped),
            }
        };
        let elapsed = t0.elapsed().as_secs_f64();
        if warm {
            if let Some(full) = self.last_full_secs {
                self.savings.record((full - elapsed).max(0.0));
            }
        } else {
            self.last_full_secs = Some(elapsed);
        }
        self.memo = memo;
        self.prev = Some((segmentation.clone(), policy.clone()));
        self.dirty_gauge.set(dirty.len() as f64);
        if let Some((scraper, alerts)) = &self.telemetry {
            self.tick += 1;
            scraper.scrape(self.tick);
            alerts.evaluate(self.tick, scraper.store());
        }
        Ok(WindowAnalysis { window_start: g.window_start(), roles, segmentation, policy })
    }

    /// Analyze every window of a finished pipeline in order, bucketing
    /// `records` into windows by timestamp.
    pub fn analyze_output(
        &mut self,
        out: &PipelineOutput,
        records: &[ConnSummary],
    ) -> segment::Result<Vec<WindowAnalysis>> {
        let Some(len) = out.sequence.graphs().first().map(|g| g.window_len()) else {
            return Ok(Vec::new());
        };
        let mut buckets: HashMap<u64, Vec<ConnSummary>> = HashMap::new();
        for r in records {
            buckets.entry(bucket_start(r.ts, len)).or_default().push(*r);
        }
        out.sequence
            .graphs()
            .iter()
            .zip(&out.dirty_sets)
            .map(|(g, dirty)| {
                let recs = buckets.get(&g.window_start()).map_or(&[][..], |v| v.as_slice());
                self.analyze(g, dirty, recs)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowlog::record::FlowKey;

    fn rec(ts: u64, i: u8) -> ConnSummary {
        ConnSummary {
            ts,
            key: FlowKey::tcp(Ipv4Addr::new(10, 0, 0, i), 40_000, Ipv4Addr::new(10, 0, 1, 1), 443),
            pkts_sent: 1,
            pkts_rcvd: 1,
            bytes_sent: 100,
            bytes_rcvd: 100,
        }
    }

    #[test]
    fn produces_windowed_sequence() {
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(&[rec(0, 1), rec(1800, 2)]);
        p.ingest(&[rec(3600, 3), rec(5400, 4)]);
        let out = p.finish().unwrap();
        assert_eq!(out.sequence.len(), 2);
        assert_eq!(out.total_records, 4);
        assert_eq!(out.sequence.graphs()[0].window_start(), 0);
        assert_eq!(out.sequence.graphs()[1].window_start(), 3600);
    }

    #[test]
    fn rate_accounting_per_minute() {
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(&[rec(0, 1), rec(30, 2), rec(60, 3)]);
        let out = p.finish().unwrap();
        assert_eq!(out.records_per_minute, vec![(0, 2), (60, 1)]);
        assert!((out.mean_records_per_minute() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_pipeline_is_fine() {
        let out = Pipeline::new(PipelineConfig::default()).finish().unwrap();
        assert!(out.sequence.is_empty());
        assert_eq!(out.mean_records_per_minute(), 0.0);
    }

    #[test]
    fn ingest_spans_reach_the_registry_and_summary_serializes() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let mut p =
            Pipeline::new(PipelineConfig { obs: Obs::new(registry.clone()), ..Default::default() });
        p.ingest(&[rec(0, 1), rec(30, 2)]);
        p.ingest(&[rec(3600, 3)]);
        let hist = registry.histogram(obs::STAGE_SECONDS, "", &[("stage", "ingest")]);
        assert_eq!(hist.count(), 2, "one span per ingest call");

        let out = p.finish().unwrap();
        let summary = out.summary();
        assert_eq!(summary.windows, 2);
        assert_eq!(summary.total_records, 3);
        assert_eq!(summary.minutes_occupied, 2);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("\"mean_records_per_minute\""), "{json}");
    }

    #[test]
    fn streaming_health_metrics_track_watermark_lag_and_lateness() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let mut p =
            Pipeline::new(PipelineConfig { obs: Obs::new(registry.clone()), ..Default::default() });
        // First window opens at ts 100; second window's first record lands
        // 7 s into the hour; one record then arrives behind the watermark
        // (still inside the open window, as dedup'd vantage copies do).
        p.ingest(&[rec(100, 1), rec(3607, 2), rec(3603, 3)]);
        let watermark = registry
            .gauge("commgraph_ingest_watermark_seconds", "", &[("source", "pipeline")])
            .get();
        assert_eq!(watermark, 3607.0);
        let lag =
            registry.histogram("commgraph_window_roll_lag_seconds", "", &[("source", "pipeline")]);
        assert_eq!(lag.count(), 1, "only the roll into window 3600 counts");
        assert_eq!(lag.sum(), 7.0);
        let late = registry.counter("commgraph_pipeline_late_records_total", "", &[]).get();
        assert_eq!(late, 1, "ts 3603 arrived behind the 3607 watermark");
        let out = p.finish().unwrap();
        assert_eq!(out.total_records, 3, "metrics never change what is computed");
    }

    #[test]
    fn vantage_duplicates_behind_watermark_are_not_late() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let monitored: HashSet<Ipv4Addr> =
            [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 1)].into_iter().collect();
        let mut p = Pipeline::new(PipelineConfig {
            monitored: Some(monitored),
            obs: Obs::new(registry.clone()),
            ..Default::default()
        });
        // The canonical copy of a double-monitored flow, a later record
        // that advances the watermark, then the interleaved non-canonical
        // duplicate: behind the watermark by timestamp, but dedup-doomed.
        let a = rec(100, 1);
        p.ingest(&[a, rec(200, 2), a.mirrored()]);
        let late = registry.counter("commgraph_pipeline_late_records_total", "", &[]).get();
        assert_eq!(late, 0, "a duplicate dedup drops anyway is not out-of-order input");
        // A genuinely out-of-order record that survives dedup still counts.
        p.ingest(&[rec(150, 3)]);
        let late = registry.counter("commgraph_pipeline_late_records_total", "", &[]).get();
        assert_eq!(late, 1);
        let out = p.finish().unwrap();
        assert_eq!(out.total_records, 4, "rate accounting still counts raw records");
    }

    #[test]
    fn records_behind_closed_windows_are_dropped_deterministically() {
        let run = || {
            let registry = std::sync::Arc::new(obs::Registry::new());
            let mut p = Pipeline::new(PipelineConfig {
                obs: Obs::new(registry.clone()),
                ..Default::default()
            });
            // The reordered fixture: window 0 closes when ts 3700 arrives,
            // then a straggler from window 0 shows up.
            p.ingest(&[rec(100, 1), rec(3700, 2)]);
            p.ingest(&[rec(200, 3), rec(3800, 4)]);
            let dropped =
                registry.counter("commgraph_pipeline_dropped_late_records_total", "", &[]).get();
            let late = registry.counter("commgraph_pipeline_late_records_total", "", &[]).get();
            let out = p.finish().unwrap();
            let shape: Vec<(u64, u64)> = out
                .sequence
                .graphs()
                .iter()
                .map(|g| (g.window_start(), g.totals().conns))
                .collect();
            (dropped, late, out.total_records, shape)
        };
        let (dropped, late, total, shape) = run();
        assert_eq!(dropped, 1, "the straggler is counted as a dropped-late record");
        assert_eq!(late, 0, "a drop is not additionally counted as merely late");
        assert_eq!(total, 4, "rate accounting still counts raw records");
        assert_eq!(
            shape,
            vec![(0, 1), (3600, 2)],
            "window 0 emitted exactly once, without the straggler"
        );
        assert_eq!((dropped, late, total, shape), run(), "replay is bit-identical");
    }

    /// A slowly-churning three-window stream: a stable three-tier core with
    /// one conversation whose volume changes each window and one node that
    /// appears only in the last window.
    fn churn_stream() -> Vec<ConnSummary> {
        let node = |tier: u8, i: u8| Ipv4Addr::new(10, 0, tier, i);
        let flow = |ts: u64, a: Ipv4Addr, b: Ipv4Addr, port: u16, bytes: u64| ConnSummary {
            ts,
            key: FlowKey::tcp(a, 40_000, b, port),
            pkts_sent: bytes / 1000,
            pkts_rcvd: bytes / 4000,
            bytes_sent: bytes,
            bytes_rcvd: bytes / 4,
        };
        let mut recs = Vec::new();
        for w in 0..3u64 {
            let base = w * 3600;
            for f in 0..3u8 {
                for b in 0..2u8 {
                    recs.push(flow(base + 10, node(0, f), node(1, b), 8080, 100_000));
                }
            }
            for b in 0..2u8 {
                recs.push(flow(base + 20, node(1, b), node(2, 1), 5432, 500_000));
            }
            // The churn: frontend 0's volume to backend 0 drifts per window.
            recs.push(flow(base + 30, node(0, 0), node(1, 0), 8080, 10_000 * (w + 1)));
            if w == 2 {
                recs.push(flow(base + 40, node(0, 9), node(1, 0), 8080, 50_000));
            }
        }
        recs
    }

    #[test]
    fn incremental_pipeline_matches_full_rebuild_oracle() {
        let recs = churn_stream();
        let run = |incremental: bool| {
            let mut p = Pipeline::new(PipelineConfig { incremental, ..Default::default() });
            p.ingest(&recs);
            let out = p.finish().unwrap();
            let monitored: HashSet<Ipv4Addr> =
                recs.iter().flat_map(|r| [r.key.local_ip, r.key.remote_ip]).collect();
            let mut an =
                WindowAnalyzer::new(monitored, incremental).with_parallelism(Parallelism::new(2));
            an.analyze_output(&out, &recs).unwrap()
        };
        let incremental = run(true);
        let full = run(false);
        assert_eq!(incremental.len(), 3);
        assert_eq!(incremental.len(), full.len());
        for (i, f) in incremental.iter().zip(&full) {
            assert_eq!(i.window_start, f.window_start);
            assert_eq!(i.roles.labels, f.roles.labels, "window {}", i.window_start);
            assert_eq!(
                i.roles.clustering_modularity, f.roles.clustering_modularity,
                "window {}",
                i.window_start
            );
            assert_eq!(
                i.policy.rules(),
                f.policy.rules(),
                "bit-exact policy, window {}",
                i.window_start
            );
            let inames: Vec<&str> =
                i.segmentation.segments().iter().map(|s| s.name.as_str()).collect();
            let fnames: Vec<&str> =
                f.segmentation.segments().iter().map(|s| s.name.as_str()).collect();
            assert_eq!(inames, fnames, "window {}", i.window_start);
        }
    }

    #[test]
    fn incremental_analysis_is_worker_count_invariant() {
        let recs = churn_stream();
        let monitored: HashSet<Ipv4Addr> =
            recs.iter().flat_map(|r| [r.key.local_ip, r.key.remote_ip]).collect();
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(&recs);
        let out = p.finish().unwrap();
        let mut baseline: Option<Vec<Vec<usize>>> = None;
        for workers in [1, 2, 8] {
            let mut an = WindowAnalyzer::new(monitored.clone(), true)
                .with_parallelism(Parallelism::new(workers));
            let labels: Vec<Vec<usize>> = an
                .analyze_output(&out, &recs)
                .unwrap()
                .into_iter()
                .map(|w| w.roles.labels)
                .collect();
            match &baseline {
                None => baseline = Some(labels),
                Some(b) => assert_eq!(&labels, b, "{workers} workers"),
            }
        }
    }

    #[test]
    fn dirty_sets_shrink_on_steady_windows_and_metrics_flow() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let recs = churn_stream();
        let mut p =
            Pipeline::new(PipelineConfig { obs: Obs::new(registry.clone()), ..Default::default() });
        p.ingest(&recs);
        let out = p.finish().unwrap();
        assert_eq!(out.dirty_sets.len(), 3);
        let n0 = out.sequence.graphs()[0].node_count();
        assert_eq!(out.dirty_sets[0].len(), n0, "first window is fully dirty");
        assert!(
            out.dirty_sets[1].len() < n0,
            "steady window dirties only the churned conversation: {:?}",
            out.dirty_sets[1]
        );
        let dirty_hist =
            registry.histogram("commgraph_window_dirty_nodes", "", &[("source", "pipeline")]);
        assert_eq!(dirty_hist.count(), 3, "one dirty-set sample per window");

        // Savings histogram: warm windows 2 and 3 each record one sample.
        let monitored: HashSet<Ipv4Addr> =
            recs.iter().flat_map(|r| [r.key.local_ip, r.key.remote_ip]).collect();
        let mut an = WindowAnalyzer::new(monitored, true).with_obs(Obs::new(registry.clone()));
        an.analyze_output(&out, &recs).unwrap();
        let savings = registry.histogram("commgraph_incremental_savings_seconds", "", &[]);
        assert_eq!(savings.count(), 2, "two warm windows record savings");
    }

    #[test]
    fn window_rolls_drive_ticks_scrapes_and_alert_evaluation() {
        use obs::alert::{Op, Selector};
        let registry = std::sync::Arc::new(obs::Registry::new());
        let o = Obs::new(registry.clone());
        let recs = churn_stream();
        let mut p = Pipeline::new(PipelineConfig { obs: o.clone(), ..Default::default() });
        p.ingest(&recs);
        let out = p.finish().unwrap();

        let store = Arc::new(obs::Tsdb::new(obs::TsdbConfig::default()));
        let scraper = Arc::new(Scraper::new(registry.clone(), store));
        // The analyzer's tick loop evaluates recording rules implicitly:
        // each scrape writes this synthetic per-tick series back into the
        // store, at the same tick as the registry samples it derives from.
        scraper.add_recording_rule(
            obs::RecordingRule::new(
                "pipeline:late_records:delta1",
                "delta(commgraph_pipeline_late_records_total[1])",
            )
            .unwrap(),
        );
        let alerts = Arc::new(AlertEngine::new(o.clone()));
        // Total records never move between ticks once ingest is done, so
        // this threshold fires as soon as its hold elapses.
        alerts.add_rule(obs::AlertRule::threshold(
            "records_seen",
            Selector::value("commgraph_pipeline_late_records_total"),
            Op::Ge,
            0.0,
            1,
        ));
        let monitored: HashSet<Ipv4Addr> =
            recs.iter().flat_map(|r| [r.key.local_ip, r.key.remote_ip]).collect();
        let mut an = WindowAnalyzer::new(monitored, true)
            .with_obs(o)
            .with_subscription("tenant-a")
            .with_telemetry(scraper.clone(), alerts.clone());
        assert_eq!(an.tick(), 0);
        an.analyze_output(&out, &recs).unwrap();

        assert_eq!(an.tick(), 3, "one logical tick per analyzed window");
        assert_eq!(scraper.store().last_tick(), 3);
        let dirty = registry
            .gauge("commgraph_subscription_dirty_nodes", "", &[("subscription", "tenant-a")])
            .get();
        assert_eq!(dirty, out.dirty_sets[2].len() as f64, "gauge holds the last window's size");
        // The rule held through tick 1 and fired at tick 2.
        let fired: Vec<(u64, obs::AlertState)> =
            alerts.history().iter().map(|t| (t.tick, t.to)).collect();
        assert_eq!(
            fired,
            vec![(1, obs::AlertState::Pending), (2, obs::AlertState::Firing)],
            "deterministic transition sequence"
        );
        // The recording rule ran once per window tick, appending its
        // synthetic series at the same ticks as the scraped samples.
        assert_eq!(scraper.recording_rule_count(), 1);
        let recorded = scraper.store().query(&obs::Query {
            name: Some("pipeline:late_records:delta1".to_string()),
            ..Default::default()
        });
        assert_eq!(recorded.len(), 1, "one synthetic series");
        let ticks: Vec<u64> = recorded[0].points.iter().map(|p| p.0).collect();
        assert_eq!(ticks, vec![1, 2, 3], "one rule sample per analyzed window");
    }

    #[test]
    fn non_incremental_pipeline_reports_all_nodes_dirty() {
        let mut p = Pipeline::new(PipelineConfig { incremental: false, ..Default::default() });
        p.ingest(&churn_stream());
        let out = p.finish().unwrap();
        for (g, dirty) in out.sequence.graphs().iter().zip(&out.dirty_sets) {
            assert_eq!(dirty.len(), g.node_count(), "conservative all-dirty");
        }
    }

    #[test]
    fn dedup_config_applies() {
        let monitored: HashSet<Ipv4Addr> =
            [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 1)].into_iter().collect();
        let mut p =
            Pipeline::new(PipelineConfig { monitored: Some(monitored), ..Default::default() });
        let r = rec(0, 1);
        p.ingest(&[r, r.mirrored()]);
        let out = p.finish().unwrap();
        assert_eq!(out.sequence.graphs()[0].totals().bytes(), 200, "counted once");
        assert_eq!(out.total_records, 2, "rate counts raw records");
    }
}
