//! Streaming pipeline: records in, hourly graph sequences out.
//!
//! A thin orchestration layer over [`commgraph_graph::builder::WindowedBuilder`]
//! that tracks record rates (Table 1's records/minute column) and hands back
//! a validated [`commgraph_graph::series::GraphSequence`].

use commgraph_graph::builder::WindowedBuilder;
use commgraph_graph::series::GraphSequence;
use commgraph_graph::{Facet, Result as GraphResult};
use flowlog::record::ConnSummary;
use flowlog::time::bucket_start;
use linalg::Parallelism;
use obs::Obs;
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Facet of the produced graphs.
    pub facet: Facet,
    /// Window length in seconds (3600 for the paper's hourly graphs).
    pub window_len: u64,
    /// Monitored inventory for vantage dedup; `None` disables dedup.
    pub monitored: Option<HashSet<Ipv4Addr>>,
    /// Worker count forwarded to downstream per-window analyses (role
    /// inference — similarity scoring and Louvain clustering both — and
    /// PCA). Ingest itself is serial — it is I/O-bound.
    pub parallelism: Parallelism,
    /// Observability handle; every `ingest` call reports a span on the
    /// shared `commgraph_stage_seconds{stage="ingest"}` family. The default
    /// noop handle makes instrumentation cost one branch.
    pub obs: Obs,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            facet: Facet::Ip,
            window_len: 3600,
            monitored: None,
            parallelism: Parallelism::default(),
            obs: Obs::noop(),
        }
    }
}

/// Output of a finished pipeline.
#[derive(Debug)]
pub struct PipelineOutput {
    /// One graph per window, in time order.
    pub sequence: GraphSequence,
    /// Records ingested per minute bucket (sorted by minute).
    pub records_per_minute: Vec<(u64, u64)>,
    /// Total records ingested.
    pub total_records: u64,
}

impl PipelineOutput {
    /// Mean records/minute over *occupied* minute buckets — Table 1's rate
    /// column.
    ///
    /// This is the [`obs::rate::per_bucket`] semantics: a typical active
    /// minute's load, deliberately ignoring empty minutes inside gaps. It is
    /// **not** a wall-clock throughput; for "how fast did the machine run"
    /// see `EngineStats::records_per_sec` ([`obs::rate::per_second`]).
    pub fn mean_records_per_minute(&self) -> f64 {
        obs::rate::per_bucket(self.total_records, self.records_per_minute.len())
    }

    /// Serializable roll-up of this output (the [`GraphSequence`] itself is
    /// not serializable; this carries the numbers reports embed).
    pub fn summary(&self) -> PipelineSummary {
        PipelineSummary {
            windows: self.sequence.len(),
            total_records: self.total_records,
            minutes_occupied: self.records_per_minute.len(),
            mean_records_per_minute: self.mean_records_per_minute(),
        }
    }
}

/// Serializable summary of a [`PipelineOutput`], embedded in bench reports.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineSummary {
    /// Windows in the produced sequence.
    pub windows: usize,
    /// Total records ingested.
    pub total_records: u64,
    /// Minute buckets that saw at least one record.
    pub minutes_occupied: usize,
    /// Per-occupied-minute mean rate (see
    /// [`PipelineOutput::mean_records_per_minute`] for the exact semantics).
    pub mean_records_per_minute: f64,
}

/// Streaming-health metric handles, resolved once at pipeline construction
/// (all noop — and free — without a registry).
#[derive(Debug)]
struct PipelineMetrics {
    watermark: obs::Gauge,
    roll_lag: obs::Histogram,
    late: obs::Counter,
}

impl PipelineMetrics {
    fn resolve(o: &Obs) -> PipelineMetrics {
        PipelineMetrics {
            watermark: o.gauge(
                "commgraph_ingest_watermark_seconds",
                "High-water record timestamp (seconds since trace start) seen by an ingest path.",
                &[("source", "pipeline")],
            ),
            roll_lag: o.histogram(
                "commgraph_window_roll_lag_seconds",
                "Lag between a window's nominal start and the record that rolled it open.",
                &[("source", "pipeline")],
            ),
            late: o.counter(
                "commgraph_pipeline_late_records_total",
                "Records arriving behind the pipeline's ingest watermark (out-of-order input).",
                &[],
            ),
        }
    }
}

/// The streaming pipeline. Feed batches with [`Pipeline::ingest`], then call
/// [`Pipeline::finish`].
#[derive(Debug)]
pub struct Pipeline {
    builder: WindowedBuilder,
    per_minute: HashMap<u64, u64>,
    total: u64,
    window_len: u64,
    /// Highest record timestamp seen so far (the ingest watermark).
    watermark: u64,
    /// Start of the window currently open, once any record arrived.
    current_window: Option<u64>,
    parallelism: Parallelism,
    obs: Obs,
    metrics: PipelineMetrics,
}

impl Pipeline {
    /// Create a pipeline from a config.
    pub fn new(cfg: PipelineConfig) -> Self {
        let mut builder = WindowedBuilder::new(cfg.facet, cfg.window_len);
        if let Some(m) = cfg.monitored {
            builder = builder.with_monitored(m);
        }
        let metrics = PipelineMetrics::resolve(&cfg.obs);
        Pipeline {
            builder,
            per_minute: HashMap::new(),
            total: 0,
            window_len: cfg.window_len,
            watermark: 0,
            current_window: None,
            parallelism: cfg.parallelism,
            obs: cfg.obs,
            metrics,
        }
    }

    /// The worker count per-window analyses should run at (e.g. pass it to
    /// [`crate::Workbench::with_parallelism`] for each finished window).
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Ingest a batch of records (non-decreasing timestamps across calls).
    pub fn ingest(&mut self, records: &[ConnSummary]) {
        let mut span = self.obs.stage_span("ingest");
        if span.trace_enabled() {
            span.trace_attr("records", &records.len().to_string());
        }
        for r in records {
            if self.total > 0 && r.ts < self.watermark {
                self.metrics.late.inc();
            }
            self.watermark = self.watermark.max(r.ts);
            let window = bucket_start(r.ts, self.window_len);
            if self.current_window.is_some_and(|cur| window > cur) {
                // Roll lag: how far into the new window its first record
                // lands — the freshness bound of the previous window's graph.
                self.metrics.roll_lag.record((r.ts - window) as f64);
            }
            if self.current_window.is_none_or(|cur| window > cur) {
                self.current_window = Some(window);
            }
            *self.per_minute.entry(bucket_start(r.ts, 60)).or_insert(0) += 1;
            self.total += 1;
            self.builder.add(r);
        }
        self.metrics.watermark.set(self.watermark as f64);
    }

    /// Close the stream and produce the graph sequence.
    pub fn finish(self) -> GraphResult<PipelineOutput> {
        let mut tspan = self.obs.trace_span("pipeline_finish");
        let graphs = self.builder.finish();
        let sequence = GraphSequence::from_graphs(graphs)?;
        let mut records_per_minute: Vec<(u64, u64)> = self.per_minute.into_iter().collect();
        records_per_minute.sort_unstable();
        if tspan.is_enabled() {
            tspan.attr("windows", &sequence.len().to_string());
            tspan.attr("total_records", &self.total.to_string());
        }
        Ok(PipelineOutput { sequence, records_per_minute, total_records: self.total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowlog::record::FlowKey;

    fn rec(ts: u64, i: u8) -> ConnSummary {
        ConnSummary {
            ts,
            key: FlowKey::tcp(Ipv4Addr::new(10, 0, 0, i), 40_000, Ipv4Addr::new(10, 0, 1, 1), 443),
            pkts_sent: 1,
            pkts_rcvd: 1,
            bytes_sent: 100,
            bytes_rcvd: 100,
        }
    }

    #[test]
    fn produces_windowed_sequence() {
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(&[rec(0, 1), rec(1800, 2)]);
        p.ingest(&[rec(3600, 3), rec(5400, 4)]);
        let out = p.finish().unwrap();
        assert_eq!(out.sequence.len(), 2);
        assert_eq!(out.total_records, 4);
        assert_eq!(out.sequence.graphs()[0].window_start(), 0);
        assert_eq!(out.sequence.graphs()[1].window_start(), 3600);
    }

    #[test]
    fn rate_accounting_per_minute() {
        let mut p = Pipeline::new(PipelineConfig::default());
        p.ingest(&[rec(0, 1), rec(30, 2), rec(60, 3)]);
        let out = p.finish().unwrap();
        assert_eq!(out.records_per_minute, vec![(0, 2), (60, 1)]);
        assert!((out.mean_records_per_minute() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_pipeline_is_fine() {
        let out = Pipeline::new(PipelineConfig::default()).finish().unwrap();
        assert!(out.sequence.is_empty());
        assert_eq!(out.mean_records_per_minute(), 0.0);
    }

    #[test]
    fn ingest_spans_reach_the_registry_and_summary_serializes() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let mut p =
            Pipeline::new(PipelineConfig { obs: Obs::new(registry.clone()), ..Default::default() });
        p.ingest(&[rec(0, 1), rec(30, 2)]);
        p.ingest(&[rec(3600, 3)]);
        let hist = registry.histogram(obs::STAGE_SECONDS, "", &[("stage", "ingest")]);
        assert_eq!(hist.count(), 2, "one span per ingest call");

        let out = p.finish().unwrap();
        let summary = out.summary();
        assert_eq!(summary.windows, 2);
        assert_eq!(summary.total_records, 3);
        assert_eq!(summary.minutes_occupied, 2);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("\"mean_records_per_minute\""), "{json}");
    }

    #[test]
    fn streaming_health_metrics_track_watermark_lag_and_lateness() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let mut p =
            Pipeline::new(PipelineConfig { obs: Obs::new(registry.clone()), ..Default::default() });
        // First window opens at ts 100; second window's first record lands
        // 7 s into the hour; one record then arrives behind the watermark
        // (still inside the open window, as dedup'd vantage copies do).
        p.ingest(&[rec(100, 1), rec(3607, 2), rec(3603, 3)]);
        let watermark = registry
            .gauge("commgraph_ingest_watermark_seconds", "", &[("source", "pipeline")])
            .get();
        assert_eq!(watermark, 3607.0);
        let lag =
            registry.histogram("commgraph_window_roll_lag_seconds", "", &[("source", "pipeline")]);
        assert_eq!(lag.count(), 1, "only the roll into window 3600 counts");
        assert_eq!(lag.sum(), 7.0);
        let late = registry.counter("commgraph_pipeline_late_records_total", "", &[]).get();
        assert_eq!(late, 1, "ts 3603 arrived behind the 3607 watermark");
        let out = p.finish().unwrap();
        assert_eq!(out.total_records, 3, "metrics never change what is computed");
    }

    #[test]
    fn dedup_config_applies() {
        let monitored: HashSet<Ipv4Addr> =
            [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 1)].into_iter().collect();
        let mut p =
            Pipeline::new(PipelineConfig { monitored: Some(monitored), ..Default::default() });
        let r = rec(0, 1);
        p.ingest(&[r, r.mirrored()]);
        let out = p.finish().unwrap();
        assert_eq!(out.sequence.graphs()[0].totals().bytes(), 200, "counted once");
        assert_eq!(out.total_records, 2, "rate counts raw records");
    }
}
