//! A batteries-included analysis session over one telemetry window.
//!
//! The experiments and examples all follow the same arc: records → graph →
//! roles → segments → policy → security/summary analyses. [`Workbench`]
//! owns the records once and memoizes each stage, so callers write three
//! lines instead of thirty and never recompute an eigendecomposition.

use algos::roles::{infer_roles_obs, RoleInference, SegmentationMethod};
use algos::stats::{byte_ccdf, CcdfPoint};
use commgraph_graph::collapse::collapse;
use commgraph_graph::{CommGraph, Facet, GraphBuilder};
use flowlog::record::ConnSummary;
use linalg::pca::{pca_sweep_with, PcaSummary};
use linalg::{Matrix, Parallelism};
use obs::Obs;
use segment::blast::{fleet_blast_report, FleetBlastReport};
use segment::{SegmentPolicy, Segmentation, Violation, ViolationDetector};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Default heavy-hitter collapse threshold (the paper's 0.1%).
pub const DEFAULT_COLLAPSE: f64 = commgraph_graph::collapse::PAPER_THRESHOLD;

/// One-window analysis session. Construct with the window's records and the
/// monitored inventory; every analysis is computed lazily and cached.
pub struct Workbench {
    records: Vec<ConnSummary>,
    monitored: HashSet<Ipv4Addr>,
    collapse_threshold: f64,
    method: SegmentationMethod,
    parallelism: Parallelism,
    obs: Obs,
    ip_graph: Option<CommGraph>,
    roles: Option<RoleInference>,
    segmentation: Option<Segmentation>,
    policy: Option<SegmentPolicy>,
}

impl Workbench {
    /// New session over `records` with the given monitored inventory.
    pub fn new(records: Vec<ConnSummary>, monitored: HashSet<Ipv4Addr>) -> Self {
        Workbench {
            records,
            monitored,
            collapse_threshold: DEFAULT_COLLAPSE,
            method: SegmentationMethod::paper_default(),
            parallelism: Parallelism::default(),
            obs: Obs::noop(),
            ip_graph: None,
            roles: None,
            segmentation: None,
            policy: None,
        }
    }

    /// Override the heavy-hitter collapse threshold (builder style).
    pub fn with_collapse_threshold(mut self, t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t), "threshold in [0, 1]");
        self.collapse_threshold = t;
        self
    }

    /// Override the segmentation method (builder style).
    pub fn with_method(mut self, m: SegmentationMethod) -> Self {
        self.method = m;
        self
    }

    /// Override the worker count used by the similarity kernels, the
    /// Louvain clustering stage, and PCA (builder style).
    /// `Parallelism::serial()` forces the exact legacy serial path; the
    /// default uses every available core. Similarity scores and cluster
    /// labels are bit-for-bit identical at any worker count.
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Attach an observability handle (builder style). Each memoized stage
    /// reports a wall-time span on `commgraph_stage_seconds{stage=...}` the
    /// first time it is computed: `build` (graph construction + collapse),
    /// `similarity`/`cluster` (role inference), `policy` (segmentation +
    /// rule learning), `pca` (low-rank sweeps). The default noop handle
    /// skips everything, including the clock reads.
    pub fn with_obs(mut self, o: Obs) -> Self {
        self.obs = o;
        self
    }

    /// The records this session analyzes.
    pub fn records(&self) -> &[ConnSummary] {
        &self.records
    }

    /// The monitored inventory.
    pub fn monitored(&self) -> &HashSet<Ipv4Addr> {
        &self.monitored
    }

    /// The collapsed IP graph of the window (memoized).
    ///
    /// Monitored addresses are protected from collapsing — the
    /// subscription's own resources are always visible.
    pub fn ip_graph(&mut self) -> &CommGraph {
        let g = self.ip_graph.take().unwrap_or_else(|| {
            let _span = self.obs.stage_span("build");
            let mut b = GraphBuilder::new(
                Facet::Ip,
                window_start(&self.records),
                window_len(&self.records),
            )
            .with_monitored(self.monitored.clone());
            b.add_all(&self.records);
            let raw = b.finish();
            let monitored = &self.monitored;
            collapse(&raw, self.collapse_threshold, |n| {
                n.ip().map(|ip| monitored.contains(&ip)).unwrap_or(false)
            })
        });
        self.ip_graph.insert(g)
    }

    /// An uncollapsed graph under any facet (not memoized — used for
    /// IP-port sizing and service views).
    pub fn graph_with_facet(&self, facet: Facet) -> CommGraph {
        let mut b =
            GraphBuilder::new(facet, window_start(&self.records), window_len(&self.records))
                .with_monitored(self.monitored.clone());
        b.add_all(&self.records);
        b.finish()
    }

    /// Role inference on the IP graph (memoized).
    pub fn roles(&mut self) -> &RoleInference {
        let roles = match self.roles.take() {
            Some(r) => r,
            None => {
                let method = self.method.clone();
                let parallelism = self.parallelism;
                let g = self.ip_graph().clone();
                infer_roles_obs(&g, &method, parallelism, &self.obs)
            }
        };
        self.roles.insert(roles)
    }

    /// µsegmentation derived from the inferred roles (memoized).
    pub fn segmentation(&mut self) -> &Segmentation {
        let seg = match self.segmentation.take() {
            Some(s) => s,
            None => {
                let monitored = self.monitored.clone();
                let roles = self.roles().clone();
                let g = self.ip_graph().clone();
                // The roles come from this same ip-facet graph, so the
                // label counts match by construction; should that ever
                // break, degrade to the empty segmentation (no members ⇒
                // downstream policies learn nothing) instead of panicking.
                Segmentation::from_inference(&g, &roles, |ip| monitored.contains(&ip))
                    .unwrap_or_else(|_| Segmentation::empty())
            }
        };
        self.segmentation.insert(seg)
    }

    /// Default-deny policy learned from this window's traffic (memoized,
    /// port-scoped).
    pub fn policy(&mut self) -> &SegmentPolicy {
        let policy = match self.policy.take() {
            Some(p) => p,
            None => {
                let seg = self.segmentation().clone();
                let _span = self.obs.stage_span("policy");
                SegmentPolicy::learn(&self.records, &seg, true)
            }
        };
        self.policy.insert(policy)
    }

    /// Check a *different* window's records against this window's learned
    /// policy — the detection workflow.
    pub fn detect(&mut self, later_records: &[ConnSummary]) -> Vec<Violation> {
        let policy = self.policy().clone();
        let seg = self.segmentation().clone();
        let mut det = ViolationDetector::new(seg, policy);
        det.check_all(later_records)
    }

    /// Fleet-wide blast-radius report under the learned segmentation.
    pub fn blast_report(&mut self) -> FleetBlastReport {
        let policy = self.policy().clone();
        fleet_blast_report(self.segmentation(), &policy)
    }

    /// Byte CCDF of the IP graph (Figure 6).
    pub fn ccdf(&mut self) -> Vec<CcdfPoint> {
        byte_ccdf(self.ip_graph())
    }

    /// PCA reconstruction-error sweep on the byte matrix (§2.2).
    pub fn pca_summary(&mut self, ks: &[usize]) -> linalg::Result<PcaSummary> {
        let m = self.byte_matrix()?;
        let _span = self.obs.stage_span("pca");
        pca_sweep_with(&m, ks, self.parallelism)
    }

    /// Dense symmetric byte matrix of the collapsed IP graph.
    pub fn byte_matrix(&mut self) -> linalg::Result<Matrix> {
        let rows = self
            .ip_graph()
            .byte_matrix(4096)
            .map_err(|e| linalg::Error::InvalidArg(e.to_string()))?;
        Ok(Matrix::from_rows(rows))
    }
}

fn window_start(records: &[ConnSummary]) -> u64 {
    records.iter().map(|r| r.ts).min().unwrap_or(0)
}

fn window_len(records: &[ConnSummary]) -> u64 {
    let start = window_start(records);
    let end = records.iter().map(|r| r.ts).max().unwrap_or(0);
    (end - start).max(60) + 60
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{ClusterPreset, Simulator};

    fn session() -> Workbench {
        let preset = ClusterPreset::MicroserviceBench;
        let mut sim =
            Simulator::new(preset.topology_scaled(0.25), preset.default_sim_config()).unwrap();
        let records = sim.collect(5);
        let monitored: HashSet<Ipv4Addr> =
            sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();
        Workbench::new(records, monitored)
    }

    #[test]
    fn full_arc_runs() {
        let mut wb = session();
        let nodes = wb.ip_graph().node_count();
        assert!(nodes > 5, "graph has nodes: {nodes}");
        let n_roles = wb.roles().n_roles;
        assert!(n_roles >= 2, "found roles: {n_roles}");
        assert!(wb.segmentation().len() >= n_roles, "external splits can add segments");
        assert!(wb.policy().rule_count() > 0);
        let blast = wb.blast_report();
        assert!(blast.mean_direct_fraction <= 1.0);
        let ccdf = wb.ccdf();
        assert!(!ccdf.is_empty());
    }

    #[test]
    fn memoization_returns_same_results() {
        let mut wb = session();
        let a = wb.roles().labels.clone();
        let b = wb.roles().labels.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn self_detection_is_quiet() {
        let mut wb = session();
        let records = wb.records().to_vec();
        let violations = wb.detect(&records);
        assert!(
            violations.is_empty(),
            "the learning window can never violate its own policy: {} hits",
            violations.len()
        );
    }

    #[test]
    fn stage_spans_cover_the_full_arc() {
        let registry = std::sync::Arc::new(obs::Registry::new());
        let mut wb = session().with_obs(Obs::new(registry.clone()));
        wb.policy();
        wb.pca_summary(&[2]).unwrap();
        for stage in ["build", "similarity", "cluster", "policy", "pca"] {
            let h = registry.histogram(obs::STAGE_SECONDS, "", &[("stage", stage)]);
            assert_eq!(h.count(), 1, "stage {stage} timed exactly once (memoized)");
        }
        // Memoized reuse must not add new samples.
        wb.roles();
        wb.policy();
        let h = registry.histogram(obs::STAGE_SECONDS, "", &[("stage", "cluster")]);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn pca_on_small_cluster() {
        let mut wb = session();
        let summary = wb.pca_summary(&[1, 4, 16]).unwrap();
        assert_eq!(summary.errors.len(), 3);
        assert!(summary.errors[2].err <= summary.errors[0].err);
    }
}
