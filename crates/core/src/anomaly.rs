//! Turning the summarization model into an anomaly detector (§2.2).
//!
//! "We ask whether it may be possible to convert such a summarization model
//! into an anomaly detector. That is, a model that can capture the key
//! patterns may also be able to identify when the patterns change."
//!
//! This module is that conversion, built on the crate's PCA machinery
//! instead of the paper's speculative GNN auto-encoder: learn the top-k
//! eigenspace of a baseline window's byte matrix, then score later windows
//! by how badly that basis reconstructs them. Traffic that follows the
//! learned patterns projects cleanly (low residual); structural novelty —
//! new heavy edges, shifted bands, exfiltration — lands in the orthogonal
//! complement and drives the score up. A threshold calibrated on baseline
//! self-variation separates "the usual breathing" from "something changed".

use commgraph_graph::{CommGraph, NodeId};
use linalg::eigen::{eigen_symmetric, EigenDecomposition};
use linalg::Matrix;
use serde::Serialize;
use std::collections::HashMap;

/// Errors from model fitting and scoring.
#[derive(Debug, Clone, PartialEq)]
pub enum AnomalyError {
    /// The baseline graph could not be densified or decomposed.
    Fit(String),
    /// A scored window was incompatible with the model.
    Score(String),
}

impl std::fmt::Display for AnomalyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnomalyError::Fit(m) => write!(f, "anomaly model fit failed: {m}"),
            AnomalyError::Score(m) => write!(f, "anomaly scoring failed: {m}"),
        }
    }
}

impl std::error::Error for AnomalyError {}

/// A fitted pattern model: the baseline's node basis and top-k eigenspace.
#[derive(Debug, Clone)]
pub struct PatternModel {
    /// Node order the matrix rows correspond to.
    nodes: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    /// Top-k eigenpairs of the (log-scaled) baseline matrix.
    basis: EigenDecomposition,
    /// Components retained.
    pub k: usize,
    /// Residual of the baseline against its own basis — the noise floor.
    pub baseline_residual: f64,
}

/// Score of one window against a [`PatternModel`].
#[derive(Debug, Clone, Serialize)]
pub struct AnomalyScore {
    /// Window start time.
    pub window_start: u64,
    /// Relative residual: `‖M − P(M)‖₁ / ‖M‖₁` after projecting onto the
    /// baseline eigenspace.
    pub residual: f64,
    /// Residual divided by the baseline noise floor; > threshold ⇒ anomaly.
    pub score: f64,
    /// Traffic from nodes unseen in the baseline (not representable in the
    /// basis at all), as a fraction of window bytes.
    pub novel_node_frac: f64,
}

/// Log-scale the byte matrix: anomaly structure should not be drowned by
/// the absolute magnitude of the biggest band.
fn log_bytes(v: f64) -> f64 {
    (1.0 + v).ln()
}

impl PatternModel {
    /// Fit the model on a baseline window's graph, keeping `k` components.
    pub fn fit(baseline: &CommGraph, k: usize) -> Result<Self, AnomalyError> {
        let raw = baseline.byte_matrix(4096).map_err(|e| AnomalyError::Fit(e.to_string()))?;
        let n = raw.len();
        if n == 0 {
            return Err(AnomalyError::Fit("baseline graph is empty".into()));
        }
        let k = k.min(n);
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = log_bytes(raw[i][j]);
            }
        }
        let basis = eigen_symmetric(&m, 1e-9).map_err(|e| AnomalyError::Fit(e.to_string()))?;
        let nodes: Vec<NodeId> = baseline.nodes().to_vec();
        let index = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let mut model = PatternModel { nodes, index, basis, k, baseline_residual: 0.0 };
        model.baseline_residual = model.residual_of(&m).map_err(AnomalyError::Fit)?;
        Ok(model)
    }

    /// Number of baseline nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Project a matrix onto the retained eigenspace and return the
    /// relative L1 residual. The `Err` arm carries a shape-mismatch
    /// message; callers wrap it in their phase's [`AnomalyError`] variant.
    fn residual_of(&self, m: &Matrix) -> Result<f64, String> {
        let n = self.nodes.len();
        // P(M) = Σ_c v_c v_cᵀ M v_c v_cᵀ is the full two-sided projection;
        // for symmetric M with an orthonormal basis V_k, use
        // P(M) = V_k V_kᵀ M V_k V_kᵀ.
        let mut vk = Matrix::zeros(n, self.k);
        for c in 0..self.k {
            for r in 0..n {
                vk[(r, c)] = self.basis.vectors[(r, c)];
            }
        }
        let vkt = vk.transpose();
        let inner = vkt.matmul(m).and_then(|x| x.matmul(&vk)).map_err(|e| e.to_string())?;
        let proj = vk.matmul(&inner).and_then(|x| x.matmul(&vkt)).map_err(|e| e.to_string())?;
        let denom = m.abs_sum();
        if denom == 0.0 {
            return Ok(0.0);
        }
        Ok(m.sub(&proj).map_err(|e| e.to_string())?.abs_sum() / denom)
    }

    /// Score a later window against the learned patterns.
    pub fn score(&self, window: &CommGraph) -> Result<AnomalyScore, AnomalyError> {
        let n = self.nodes.len();
        let mut m = Matrix::zeros(n, n);
        let mut novel_bytes = 0u64;
        let mut total_bytes = 0u64;
        for i in 0..window.node_count() as u32 {
            let a = window.node(i);
            for (j, stats) in window.neighbors(i) {
                if *j < i {
                    continue;
                }
                let b = window.node(*j);
                total_bytes += stats.bytes();
                match (self.index.get(&a), self.index.get(&b)) {
                    (Some(&ia), Some(&ib)) => {
                        let v = log_bytes(stats.bytes() as f64);
                        m[(ia, ib)] = v;
                        m[(ib, ia)] = v;
                    }
                    _ => novel_bytes += stats.bytes(),
                }
            }
        }
        let residual = self.residual_of(&m).map_err(AnomalyError::Score)?;
        // A perfectly low-rank baseline has a ~zero self-residual; floor the
        // denominator so the score stays a meaningful ratio (1% relative
        // residual is treated as the minimum credible noise floor).
        const NOISE_FLOOR: f64 = 0.01;
        let score = residual / self.baseline_residual.max(NOISE_FLOOR);
        Ok(AnomalyScore {
            window_start: window.window_start(),
            residual,
            score,
            novel_node_frac: if total_bytes == 0 {
                0.0
            } else {
                novel_bytes as f64 / total_bytes as f64
            },
        })
    }
}

impl PatternModel {
    /// Calibrate a detection threshold from known-clean windows: the
    /// largest clean score times a safety `margin` (1.5 is a reasonable
    /// default). Scores above the returned value are anomalies; benign
    /// breathing — diurnal drift, per-edge noise — stays below it by
    /// construction.
    pub fn calibrate_threshold(
        &self,
        clean_windows: &[CommGraph],
        margin: f64,
    ) -> Result<f64, AnomalyError> {
        assert!(margin >= 1.0, "margin must be >= 1");
        let mut worst: f64 = 1.0;
        for w in clean_windows {
            worst = worst.max(self.score(w)?.score);
        }
        Ok(worst * margin)
    }
}

/// Convenience detector: fit on the first window, score the rest, flag
/// windows whose score exceeds `threshold` (2.0 = "twice the baseline
/// noise floor" is a reasonable default).
pub fn detect_anomalous_windows(
    windows: &[CommGraph],
    k: usize,
    threshold: f64,
) -> Result<Vec<AnomalyScore>, AnomalyError> {
    let Some(first) = windows.first() else {
        return Ok(Vec::new());
    };
    let model = PatternModel::fit(first, k)?;
    let mut out = Vec::with_capacity(windows.len().saturating_sub(1));
    for w in &windows[1..] {
        let s = model.score(w)?;
        out.push(s);
    }
    let _ = threshold; // callers compare score against it; kept for clarity
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph_graph::EdgeStats;
    use std::net::Ipv4Addr;

    fn node(d: u8) -> NodeId {
        NodeId::Ip(Ipv4Addr::new(10, 0, 0, d))
    }

    fn stats(bytes: u64) -> EdgeStats {
        EdgeStats { bytes_fwd: bytes, conns: 1, ..Default::default() }
    }

    /// Two-tier structure: frontends 1..4 each talk to backends 10..13.
    fn tiered(start: u64, noise: u64) -> CommGraph {
        let mut edges = HashMap::new();
        for f in 1..=4u8 {
            for b in 10..=13u8 {
                edges.insert(
                    (node(f), node(b)),
                    stats(1_000_000 + (f as u64 * 31 + b as u64 * 7) * noise),
                );
            }
        }
        CommGraph::from_edge_map("ip", start, 3600, edges)
    }

    #[test]
    fn steady_windows_score_near_one() {
        let base = tiered(0, 100);
        let model = PatternModel::fit(&base, 4).expect("fit");
        let next = tiered(3600, 120); // mild volume wobble
        let s = model.score(&next).expect("score");
        assert!(s.score < 2.0, "same structure must stay under 2x the noise floor: {}", s.score);
        assert_eq!(s.novel_node_frac, 0.0);
    }

    #[test]
    fn structural_change_raises_the_score() {
        let base = tiered(0, 100);
        let model = PatternModel::fit(&base, 3).expect("fit");
        // Same nodes, very different structure: frontends now talk to each
        // other in a dense clique and drop half the backend edges.
        let mut edges = HashMap::new();
        for a in 1..=4u8 {
            for b in (a + 1)..=4u8 {
                edges.insert((node(a), node(b)), stats(2_000_000));
            }
        }
        edges.insert((node(1), node(10)), stats(1_000_000));
        let weird = CommGraph::from_edge_map("ip", 3600, 3600, edges);
        let steady_score = model.score(&tiered(3600, 110)).expect("score").score;
        let weird_score = model.score(&weird).expect("score").score;
        assert!(
            weird_score > steady_score * 2.0,
            "restructured traffic must score much higher: steady {steady_score}, weird {weird_score}"
        );
    }

    #[test]
    fn novel_nodes_are_reported() {
        let base = tiered(0, 100);
        let model = PatternModel::fit(&base, 4).expect("fit");
        let mut edges = HashMap::new();
        edges.insert((node(1), node(10)), stats(1_000_000));
        // Exfiltration to an address the baseline never saw.
        edges.insert((node(1), NodeId::Ip(Ipv4Addr::new(203, 0, 113, 9))), stats(3_000_000));
        let w = CommGraph::from_edge_map("ip", 3600, 3600, edges);
        let s = model.score(&w).expect("score");
        assert!(s.novel_node_frac > 0.5, "most bytes went to a novel peer: {}", s.novel_node_frac);
    }

    #[test]
    fn empty_baseline_is_an_error() {
        let empty = CommGraph::from_edge_map("ip", 0, 3600, HashMap::new());
        assert!(matches!(PatternModel::fit(&empty, 4), Err(AnomalyError::Fit(_))));
    }

    #[test]
    fn detect_over_window_sequence() {
        let windows = vec![tiered(0, 100), tiered(3600, 105), tiered(7200, 95)];
        let scores = detect_anomalous_windows(&windows, 4, 2.0).expect("detect");
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.score < 2.0), "{scores:?}");
    }

    #[test]
    fn empty_sequence_is_fine() {
        assert!(detect_anomalous_windows(&[], 4, 2.0).expect("empty").is_empty());
    }

    #[test]
    fn calibrated_threshold_separates_clean_from_weird() {
        let model = PatternModel::fit(&tiered(0, 100), 3).expect("fit");
        let clean = vec![tiered(3600, 110), tiered(7200, 90)];
        let threshold = model.calibrate_threshold(&clean, 1.5).expect("calibrate");
        // A clean holdout stays under the calibrated threshold.
        let holdout = model.score(&tiered(10_800, 105)).expect("score");
        assert!(holdout.score <= threshold, "{} vs {threshold}", holdout.score);
        // Restructured traffic exceeds it.
        let mut edges = HashMap::new();
        for a in 1..=4u8 {
            for b in (a + 1)..=4u8 {
                edges.insert((node(a), node(b)), stats(2_000_000));
            }
        }
        let weird = CommGraph::from_edge_map("ip", 14_400, 3600, edges);
        assert!(model.score(&weird).expect("score").score > threshold);
    }
}
