//! The continuous security monitor — Figure 8's SaaS loop as a library.
//!
//! Everything else in this crate analyzes a *window you already have*. The
//! monitor is the stateful driver a deployed service runs forever:
//!
//! 1. **Learning**: accumulate `learn_windows` windows of telemetry, then
//!    derive the baseline — roles, µsegments, default-deny policy, the PCA
//!    pattern model, and a calibrated anomaly threshold.
//! 2. **Enforcing**: every subsequent window is checked three ways —
//!    per-flow policy violations, whole-window anomaly score, and the
//!    structural what-changed diff — and the monitor emits typed
//!    [`MonitorEvent`]s an operator pipeline can route to dashboards,
//!    tickets, or enforcement.
//!
//! Feed it minute batches with [`SecurityMonitor::ingest`]; events come back
//! as windows close.

use crate::anomaly::PatternModel;
use crate::workbench::Workbench;
use commgraph_graph::collapse::collapse_default;
use commgraph_graph::diff::diff;
use commgraph_graph::{CommGraph, Facet, GraphBuilder};
use flowlog::record::ConnSummary;
use flowlog::time::bucket_start;
use obs::{Counter, Gauge, Histogram, Level, Obs};
use segment::{SegmentPolicy, Segmentation, Violation, ViolationDetector};
use serde::Serialize;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Window length in seconds (3600 = the paper's hourly graphs).
    pub window_len: u64,
    /// Clean windows to learn from before enforcing (≥ 2: the first fits
    /// the models, the rest calibrate the anomaly threshold).
    pub learn_windows: usize,
    /// PCA components for the pattern model.
    pub anomaly_k: usize,
    /// Safety margin over the worst clean anomaly score.
    pub anomaly_margin: f64,
    /// Volume-change ratio that makes a persisting edge reportable.
    pub change_ratio: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_len: 3600,
            learn_windows: 3,
            anomaly_k: 25,
            anomaly_margin: 1.5,
            change_ratio: 3.0,
        }
    }
}

/// Events the monitor emits as windows close.
#[derive(Debug, Clone, Serialize)]
pub enum MonitorEvent {
    /// The learning phase completed; enforcement starts next window.
    BaselineReady {
        /// Windows learned from.
        windows: usize,
        /// µsegments derived.
        segments: usize,
        /// Allow rules learned.
        allow_rules: usize,
        /// Calibrated anomaly threshold.
        anomaly_threshold: f64,
    },
    /// A closed window's roll-up.
    WindowSummary {
        /// Window start time.
        window_start: u64,
        /// Records in the window.
        records: usize,
        /// Policy violations raised.
        violations: usize,
        /// Anomaly score (ratio over the baseline noise floor).
        anomaly_score: f64,
        /// Whether the window was flagged anomalous.
        anomalous: bool,
        /// Edges that appeared vs the previous window.
        new_edges: usize,
        /// Edges that vanished vs the previous window.
        gone_edges: usize,
    },
    /// One policy violation (emitted per offending flow, capped per window).
    PolicyViolation(Violation),
}

/// Phase of the monitor's lifecycle.
enum Phase {
    Learning { windows_done: usize, records: Vec<ConnSummary> },
    Enforcing(Box<Baseline>),
}

struct Baseline {
    segmentation: Segmentation,
    policy: SegmentPolicy,
    model: PatternModel,
    threshold: f64,
    previous_window: Option<CommGraph>,
}

/// Monitor-level metrics, resolved once at construction. With a noop [`Obs`]
/// every handle is inert and each update costs one branch.
struct MonitorMetrics {
    /// `commgraph_monitor_windows_total{phase}` — windows closed per phase.
    windows_learning: Counter,
    windows_enforcing: Counter,
    /// `commgraph_monitor_violations_total` — policy violations detected
    /// (full count, not capped like the emitted events).
    violations: Counter,
    /// `commgraph_monitor_anomaly_score` — per-window anomaly scores.
    anomaly_score: Histogram,
    /// `commgraph_monitor_anomalous_windows_total` — windows over threshold.
    anomalous_windows: Counter,
    /// Baseline shape, set once when learning completes.
    baseline_segments: Gauge,
    baseline_allow_rules: Gauge,
    baseline_threshold: Gauge,
    /// `commgraph_window_roll_lag_seconds{source="monitor"}` — how far into
    /// a new window its opening record landed.
    roll_lag: Histogram,
}

impl MonitorMetrics {
    fn resolve(o: &Obs) -> MonitorMetrics {
        let windows = |phase| {
            o.counter(
                "commgraph_monitor_windows_total",
                "Windows closed by the security monitor, by lifecycle phase.",
                &[("phase", phase)],
            )
        };
        MonitorMetrics {
            windows_learning: windows("learning"),
            windows_enforcing: windows("enforcing"),
            violations: o.counter(
                "commgraph_monitor_violations_total",
                "Policy violations detected in enforced windows (uncapped).",
                &[],
            ),
            anomaly_score: o.histogram(
                "commgraph_monitor_anomaly_score",
                "Per-window anomaly score (ratio over the baseline noise floor).",
                &[],
            ),
            anomalous_windows: o.counter(
                "commgraph_monitor_anomalous_windows_total",
                "Enforced windows whose anomaly score exceeded the threshold.",
                &[],
            ),
            baseline_segments: o.gauge(
                "commgraph_monitor_baseline_segments",
                "µsegments in the learned baseline.",
                &[],
            ),
            baseline_allow_rules: o.gauge(
                "commgraph_monitor_baseline_allow_rules",
                "Allow rules in the learned baseline policy.",
                &[],
            ),
            baseline_threshold: o.gauge(
                "commgraph_monitor_baseline_anomaly_threshold",
                "Calibrated anomaly threshold of the learned baseline.",
                &[],
            ),
            roll_lag: o.histogram(
                "commgraph_window_roll_lag_seconds",
                "Lag between a window's nominal start and the record that rolled it open.",
                &[("source", "monitor")],
            ),
        }
    }
}

/// The continuous monitor. See module docs for the lifecycle.
pub struct SecurityMonitor {
    cfg: MonitorConfig,
    monitored: HashSet<Ipv4Addr>,
    phase: Phase,
    current_window_start: Option<u64>,
    current_records: Vec<ConnSummary>,
    obs: Obs,
    metrics: MonitorMetrics,
    /// Cap on per-window violation events (summaries always carry the full
    /// count); keeps a port scan from emitting a million events.
    pub max_violation_events: usize,
}

impl SecurityMonitor {
    /// New monitor for a subscription with the given monitored inventory.
    ///
    /// # Panics
    /// Panics if `learn_windows < 2` (one to fit, one to calibrate).
    pub fn new(cfg: MonitorConfig, monitored: HashSet<Ipv4Addr>) -> Self {
        SecurityMonitor::with_obs(cfg, monitored, Obs::noop())
    }

    /// Like [`SecurityMonitor::new`] with an observability handle: every
    /// emitted [`MonitorEvent`] is mirrored to the event log (baselines and
    /// summaries at `info`, violations and anomalous windows at `warn`),
    /// and window/violation/anomaly tallies feed `commgraph_monitor_*`
    /// metrics. Events returned to the caller are identical either way.
    pub fn with_obs(cfg: MonitorConfig, monitored: HashSet<Ipv4Addr>, obs: Obs) -> Self {
        assert!(cfg.learn_windows >= 2, "need >= 2 learning windows");
        let metrics = MonitorMetrics::resolve(&obs);
        SecurityMonitor {
            cfg,
            monitored,
            phase: Phase::Learning { windows_done: 0, records: Vec::new() },
            current_window_start: None,
            current_records: Vec::new(),
            obs,
            metrics,
            max_violation_events: 64,
        }
    }

    /// True once the baseline is built and enforcement is active.
    pub fn is_enforcing(&self) -> bool {
        matches!(self.phase, Phase::Enforcing(_))
    }

    /// Ingest a batch of records (non-decreasing timestamps). Returns any
    /// events produced by windows that closed.
    pub fn ingest(&mut self, batch: &[ConnSummary]) -> Vec<MonitorEvent> {
        let mut events = Vec::new();
        for r in batch {
            let w = bucket_start(r.ts, self.cfg.window_len);
            match self.current_window_start {
                None => self.current_window_start = Some(w),
                Some(current) if w != current => {
                    self.close_window(current, &mut events);
                    self.metrics.roll_lag.record(r.ts.saturating_sub(w) as f64);
                    self.current_window_start = Some(w);
                }
                _ => {}
            }
            self.current_records.push(*r);
        }
        events
    }

    /// Force-close the open window (end of stream).
    pub fn flush(&mut self) -> Vec<MonitorEvent> {
        let mut events = Vec::new();
        if let Some(w) = self.current_window_start.take() {
            self.close_window(w, &mut events);
        }
        events
    }

    fn close_window(&mut self, window_start: u64, events: &mut Vec<MonitorEvent>) {
        let records = std::mem::take(&mut self.current_records);
        // The per-window trace span: baseline building and all per-window
        // analysis below nest under it on the run timeline.
        let mut tspan = self.obs.trace_span("monitor_window");
        if tspan.is_enabled() {
            tspan.attr("window_start", &window_start.to_string());
            tspan.attr("records", &records.len().to_string());
        }
        match &mut self.phase {
            Phase::Learning { windows_done, records: learned } => {
                learned.extend_from_slice(&records);
                *windows_done += 1;
                self.metrics.windows_learning.inc();
                if tspan.is_enabled() {
                    tspan.attr("phase", "learning");
                }
                if *windows_done >= self.cfg.learn_windows {
                    let learned = std::mem::take(learned);
                    let done = *windows_done;
                    let baseline = match self.build_baseline(learned, done) {
                        Ok(b) => b,
                        Err((learned, reason)) => {
                            // Degenerate learning data (e.g. an empty or
                            // unscorable first window): keep the records,
                            // stay in learning, retry next boundary.
                            if self.obs.logs(Level::Warn) {
                                self.obs.event(
                                    Level::Warn,
                                    "monitor",
                                    "baseline deferred",
                                    &[("reason", reason)],
                                );
                            }
                            self.phase = Phase::Learning { windows_done: done, records: learned };
                            return;
                        }
                    };
                    self.metrics.baseline_segments.set(baseline.segmentation.len() as f64);
                    self.metrics.baseline_allow_rules.set(baseline.policy.rule_count() as f64);
                    self.metrics.baseline_threshold.set(baseline.threshold);
                    if self.obs.logs(Level::Info) {
                        self.obs.event(
                            Level::Info,
                            "monitor",
                            "baseline ready",
                            &[
                                ("windows", done.to_string()),
                                ("segments", baseline.segmentation.len().to_string()),
                                ("allow_rules", baseline.policy.rule_count().to_string()),
                                ("anomaly_threshold", format!("{:.4}", baseline.threshold)),
                            ],
                        );
                    }
                    events.push(MonitorEvent::BaselineReady {
                        windows: done,
                        segments: baseline.segmentation.len(),
                        allow_rules: baseline.policy.rule_count(),
                        anomaly_threshold: baseline.threshold,
                    });
                    self.phase = Phase::Enforcing(Box::new(baseline));
                }
            }
            Phase::Enforcing(baseline) => {
                // Build this window's collapsed graph.
                let mut b = GraphBuilder::new(Facet::Ip, window_start, self.cfg.window_len)
                    .with_monitored(self.monitored.clone());
                b.add_all(&records);
                let graph = collapse_default(&b.finish());

                // Policy check.
                let mut det =
                    ViolationDetector::new(baseline.segmentation.clone(), baseline.policy.clone());
                let violations = det.check_all(&records);

                // Anomaly score.
                let score = baseline.model.score(&graph).map(|s| s.score).unwrap_or(f64::INFINITY);
                let anomalous = score > baseline.threshold;

                // Structural diff vs the previous window.
                let (new_edges, gone_edges) = match &baseline.previous_window {
                    Some(prev) => {
                        let d = diff(prev, &graph, self.cfg.change_ratio);
                        (d.added_edges.len(), d.removed_edges.len())
                    }
                    None => (0, 0),
                };
                baseline.previous_window = Some(graph);

                self.metrics.windows_enforcing.inc();
                self.metrics.violations.add(violations.len() as u64);
                self.metrics.anomaly_score.record(score);
                if anomalous {
                    self.metrics.anomalous_windows.inc();
                }
                if tspan.is_enabled() {
                    tspan.attr("phase", "enforcing");
                    tspan.attr("violations", &violations.len().to_string());
                    tspan.attr("anomaly_score", &format!("{score:.4}"));
                    tspan.attr("anomalous", &anomalous.to_string());
                    if anomalous {
                        tspan.add_event(
                            "anomaly",
                            &[
                                ("score", format!("{score:.4}")),
                                ("threshold", format!("{:.4}", baseline.threshold)),
                            ],
                        );
                    }
                }
                let summary_level = if anomalous { Level::Warn } else { Level::Info };
                if self.obs.logs(summary_level) {
                    self.obs.event(
                        summary_level,
                        "monitor",
                        "window summary",
                        &[
                            ("window_start", window_start.to_string()),
                            ("records", records.len().to_string()),
                            ("violations", violations.len().to_string()),
                            ("anomaly_score", format!("{score:.4}")),
                            ("anomalous", anomalous.to_string()),
                            ("new_edges", new_edges.to_string()),
                            ("gone_edges", gone_edges.to_string()),
                        ],
                    );
                }

                events.push(MonitorEvent::WindowSummary {
                    window_start,
                    records: records.len(),
                    violations: violations.len(),
                    anomaly_score: score,
                    anomalous,
                    new_edges,
                    gone_edges,
                });
                for v in violations.into_iter().take(self.max_violation_events) {
                    if self.obs.logs(Level::Warn) {
                        self.obs.event(
                            Level::Warn,
                            "monitor",
                            "policy violation",
                            &[
                                ("window_start", window_start.to_string()),
                                ("violation", format!("{v:?}")),
                            ],
                        );
                    }
                    events.push(MonitorEvent::PolicyViolation(v));
                }
            }
        }
    }

    /// Build the enforcement baseline from the learned records. On failure
    /// the records come back to the caller so learning can continue.
    fn build_baseline(
        &self,
        records: Vec<ConnSummary>,
        windows: usize,
    ) -> Result<Baseline, (Vec<ConnSummary>, String)> {
        // Split the learning records by window: the first window fits the
        // pattern model, the rest calibrate the threshold; segmentation and
        // policy learn from everything.
        let mut wb =
            Workbench::new(records.clone(), self.monitored.clone()).with_obs(self.obs.clone());
        let segmentation = wb.segmentation().clone();
        let policy = wb.policy().clone();

        let mut windows_graphs: Vec<CommGraph> = Vec::with_capacity(windows);
        let mut starts: Vec<u64> =
            records.iter().map(|r| bucket_start(r.ts, self.cfg.window_len)).collect();
        starts.sort_unstable();
        starts.dedup();
        for w in starts {
            let mut b = GraphBuilder::new(Facet::Ip, w, self.cfg.window_len)
                .with_monitored(self.monitored.clone());
            b.add_all(records.iter().filter(|r| bucket_start(r.ts, self.cfg.window_len) == w));
            windows_graphs.push(collapse_default(&b.finish()));
        }
        let Some(first) = windows_graphs.first() else {
            return Err((records, "no learning windows carried traffic".into()));
        };
        let model = match PatternModel::fit(first, self.cfg.anomaly_k) {
            Ok(m) => m,
            Err(e) => return Err((records, e.to_string())),
        };
        let threshold =
            match model.calibrate_threshold(&windows_graphs[1..], self.cfg.anomaly_margin) {
                Ok(t) => t,
                Err(e) => return Err((records, e.to_string())),
            };
        Ok(Baseline { segmentation, policy, model, threshold, previous_window: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::attack::{AttackKind, AttackScenario};
    use cloudsim::{ClusterPreset, SimConfig, Simulator};

    fn monitored_of(sim: &Simulator) -> HashSet<Ipv4Addr> {
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect()
    }

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            window_len: 600, // 10-minute windows keep the test fast
            learn_windows: 2,
            anomaly_k: 10,
            anomaly_margin: 1.5,
            change_ratio: 3.0,
        }
    }

    #[test]
    fn learns_then_enforces_quietly_on_clean_traffic() {
        let preset = ClusterPreset::MicroserviceBench;
        let mut sim =
            Simulator::new(preset.topology_scaled(0.3), preset.default_sim_config()).unwrap();
        let monitored = monitored_of(&sim);
        let mut monitor = SecurityMonitor::new(cfg(), monitored);

        let mut events = Vec::new();
        sim.run(40, |_, batch| events.extend(monitor.ingest(batch)));
        events.extend(monitor.flush());

        assert!(monitor.is_enforcing());
        let baseline_ready = events.iter().any(|e| matches!(e, MonitorEvent::BaselineReady { .. }));
        assert!(baseline_ready, "baseline event emitted");
        let summaries: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::WindowSummary { violations, anomalous, .. } => {
                    Some((*violations, *anomalous))
                }
                _ => None,
            })
            .collect();
        assert!(!summaries.is_empty(), "enforced windows produce summaries");
        for (violations, anomalous) in &summaries {
            assert_eq!(*violations, 0, "clean traffic must not violate its own baseline");
            assert!(!anomalous, "clean traffic must stay under the calibrated threshold");
        }
    }

    #[test]
    fn attack_window_raises_violations() {
        let preset = ClusterPreset::MicroserviceBench;
        let topo = preset.topology_scaled(0.3);
        let breached =
            topo.ip_of(topo.role_named("frontend").expect("role").id, 0).expect("slot 0");
        let sim_cfg = SimConfig {
            attacks: vec![AttackScenario {
                kind: AttackKind::LateralMovement,
                // Starts after two 10-minute learning windows.
                start_min: 25,
                duration_min: 15,
                breached,
                intensity: 6,
            }],
            ..preset.default_sim_config()
        };
        let mut sim = Simulator::new(topo, sim_cfg).unwrap();
        let monitored = monitored_of(&sim);
        let mut monitor = SecurityMonitor::new(cfg(), monitored);

        let mut events = Vec::new();
        sim.run(45, |_, batch| events.extend(monitor.ingest(batch)));
        events.extend(monitor.flush());

        let total_violations: usize = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::WindowSummary { violations, .. } => Some(*violations),
                _ => None,
            })
            .sum();
        assert!(total_violations > 0, "lateral movement must trip the policy");
        assert!(
            events.iter().any(|e| matches!(e, MonitorEvent::PolicyViolation(_))),
            "individual violations are surfaced"
        );
        // The per-window event cap holds.
        let violation_events =
            events.iter().filter(|e| matches!(e, MonitorEvent::PolicyViolation(_))).count();
        let windows =
            events.iter().filter(|e| matches!(e, MonitorEvent::WindowSummary { .. })).count();
        assert!(violation_events <= windows * 64);
    }

    #[test]
    fn metrics_and_event_log_agree_with_returned_events() {
        let preset = ClusterPreset::MicroserviceBench;
        let topo = preset.topology_scaled(0.3);
        let breached =
            topo.ip_of(topo.role_named("frontend").expect("role").id, 0).expect("slot 0");
        let sim_cfg = SimConfig {
            attacks: vec![AttackScenario {
                kind: AttackKind::LateralMovement,
                start_min: 25,
                duration_min: 15,
                breached,
                intensity: 6,
            }],
            ..preset.default_sim_config()
        };
        let mut sim = Simulator::new(topo, sim_cfg).unwrap();
        let monitored = monitored_of(&sim);
        let registry = std::sync::Arc::new(obs::Registry::new());
        let mut monitor =
            SecurityMonitor::with_obs(cfg(), monitored, obs::Obs::new(registry.clone()));

        let mut events = Vec::new();
        sim.run(45, |_, batch| events.extend(monitor.ingest(batch)));
        events.extend(monitor.flush());

        let summaries: Vec<(usize, f64)> = events
            .iter()
            .filter_map(|e| match e {
                MonitorEvent::WindowSummary { violations, anomaly_score, .. } => {
                    Some((*violations, *anomaly_score))
                }
                _ => None,
            })
            .collect();
        let violation_events =
            events.iter().filter(|e| matches!(e, MonitorEvent::PolicyViolation(_))).count();

        // Counters track the events the caller saw.
        let learning =
            registry.counter("commgraph_monitor_windows_total", "", &[("phase", "learning")]).get();
        assert_eq!(learning, cfg().learn_windows as u64);
        let enforcing = registry
            .counter("commgraph_monitor_windows_total", "", &[("phase", "enforcing")])
            .get();
        assert_eq!(enforcing, summaries.len() as u64);
        let violations = registry.counter("commgraph_monitor_violations_total", "", &[]).get();
        assert_eq!(violations, summaries.iter().map(|(v, _)| *v as u64).sum::<u64>());
        assert!(violations > 0, "the attack must trip the policy");

        // The anomaly-score histogram saw one sample per enforced window.
        let scores = registry.histogram("commgraph_monitor_anomaly_score", "", &[]);
        assert_eq!(scores.count(), summaries.len() as u64);

        // Baseline gauges mirror the BaselineReady event.
        let (segments, threshold) = events
            .iter()
            .find_map(|e| match e {
                MonitorEvent::BaselineReady { segments, anomaly_threshold, .. } => {
                    Some((*segments, *anomaly_threshold))
                }
                _ => None,
            })
            .expect("baseline event emitted");
        let g = registry.gauge("commgraph_monitor_baseline_segments", "", &[]);
        assert_eq!(g.get(), segments as f64);
        let t = registry.gauge("commgraph_monitor_baseline_anomaly_threshold", "", &[]);
        assert_eq!(t.get(), threshold);

        // The event log mirrors what was returned.
        let log = registry.events();
        assert_eq!(
            log.iter().filter(|e| e.message == "baseline ready").count(),
            1,
            "one baseline event logged"
        );
        assert_eq!(log.iter().filter(|e| e.message == "window summary").count(), summaries.len());
        assert_eq!(
            log.iter().filter(|e| e.message == "policy violation").count(),
            violation_events,
            "each emitted violation event is mirrored at warn"
        );
        assert!(log
            .iter()
            .filter(|e| e.message == "policy violation")
            .all(|e| e.level == obs::Level::Warn));
    }

    #[test]
    #[should_panic(expected = "learning windows")]
    fn rejects_single_learning_window() {
        let c = MonitorConfig { learn_windows: 1, ..cfg() };
        SecurityMonitor::new(c, HashSet::new());
    }
}
