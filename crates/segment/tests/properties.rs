//! Property-based tests for micro-segmentation invariants.

use flowlog::record::{ConnSummary, FlowKey};
use proptest::prelude::*;
use segment::blast::{blast_radius, fleet_blast_report};
use segment::compile::compile;
use segment::policy::{SegmentPolicy, ANY_PORT};
use segment::{SegmentId, Segmentation, ViolationDetector};
use std::net::Ipv4Addr;

/// Arbitrary segmentation: 2–5 internal segments of 1–8 members each.
fn arb_segmentation() -> impl Strategy<Value = Segmentation> {
    prop::collection::vec(1usize..8, 2..5).prop_map(|sizes| {
        let mut groups = Vec::new();
        for (s, n) in sizes.iter().enumerate() {
            let members: Vec<Ipv4Addr> =
                (0..*n).map(|i| Ipv4Addr::new(10, 0, s as u8, i as u8 + 1)).collect();
            groups.push((format!("seg{s}"), members, true));
        }
        Segmentation::from_members(groups)
    })
}

/// Records between random members of a segmentation.
fn arb_records(seg: &Segmentation, n: usize) -> impl Strategy<Value = Vec<ConnSummary>> {
    let all: Vec<Ipv4Addr> = seg.segments().iter().flat_map(|s| s.members.clone()).collect();
    let len = all.len();
    prop::collection::vec((0..len, 0..len, 1u16..1000, 1u64..100_000), 1..n).prop_map(
        move |tuples| {
            tuples
                .into_iter()
                .filter(|(a, b, _, _)| a != b)
                .map(|(a, b, port, bytes)| ConnSummary {
                    ts: 0,
                    key: FlowKey::tcp(all[a], 40_000, all[b], port),
                    pkts_sent: bytes / 1000 + 1,
                    pkts_rcvd: 1,
                    bytes_sent: bytes,
                    bytes_rcvd: 100,
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fundamental learning invariant: a window can never violate the
    /// policy learned from it — for any segmentation, any traffic, any
    /// port scoping.
    #[test]
    fn learned_policy_never_flags_its_window(
        (seg, records, port_scoped) in arb_segmentation().prop_flat_map(|seg| {
            let recs = arb_records(&seg, 40);
            (Just(seg), recs, any::<bool>())
        })
    ) {
        let policy = SegmentPolicy::learn(&records, &seg, port_scoped);
        let mut det = ViolationDetector::new(seg, policy);
        let violations = det.check_all(&records);
        prop_assert!(violations.is_empty(), "{} violations", violations.len());
    }

    /// Policy symmetry: if (a → b) was learned, b → a traffic on the same
    /// service port is also allowed (rules are unordered pairs).
    #[test]
    fn policy_is_direction_symmetric(
        (seg, records) in arb_segmentation().prop_flat_map(|seg| {
            let recs = arb_records(&seg, 30);
            (Just(seg), recs)
        })
    ) {
        let policy = SegmentPolicy::learn(&records, &seg, true);
        let mut det = ViolationDetector::new(seg, policy);
        let mirrored: Vec<ConnSummary> = records.iter().map(|r| r.mirrored()).collect();
        let violations = det.check_all(&mirrored);
        prop_assert!(violations.is_empty(), "mirrored traffic must pass");
    }

    /// Blast radius invariants: direct ≤ transitive ≤ unsegmented, and a
    /// deny-all policy yields zero radius everywhere.
    #[test]
    fn blast_radius_bounds(
        (seg, records) in arb_segmentation().prop_flat_map(|seg| {
            let recs = arb_records(&seg, 40);
            (Just(seg), recs)
        })
    ) {
        let policy = SegmentPolicy::learn(&records, &seg, false);
        for s in seg.segments() {
            for &ip in &s.members {
                let b = blast_radius(&seg, &policy, ip).expect("member is segmented");
                prop_assert!(b.direct <= b.transitive);
                prop_assert!(b.transitive <= b.unsegmented);
                prop_assert!(b.direct_fraction <= 1.0);
            }
        }
        let deny = SegmentPolicy::deny_all(false);
        let report = fleet_blast_report(&seg, &deny);
        prop_assert_eq!(report.mean_direct, 0.0);
        prop_assert_eq!(report.max_direct, 0);
    }

    /// Compilation arithmetic: total ip rules = Σ per-VM; tag rules per VM
    /// never exceed ip rules per VM (tags can only compress).
    #[test]
    fn compile_accounting(
        (seg, records) in arb_segmentation().prop_flat_map(|seg| {
            let recs = arb_records(&seg, 40);
            (Just(seg), recs)
        })
    ) {
        let policy = SegmentPolicy::learn(&records, &seg, true);
        let report = compile(&seg, &policy, 1000);
        let sum_ip: usize = report.per_vm.iter().map(|v| v.ip_rules).sum();
        let sum_tag: usize = report.per_vm.iter().map(|v| v.tag_rules).sum();
        prop_assert_eq!(sum_ip, report.total_ip_rules);
        prop_assert_eq!(sum_tag, report.total_tag_rules);
        for vm in &report.per_vm {
            prop_assert!(
                vm.tag_rules <= vm.ip_rules.max(vm.tag_rules),
                "tags never need more scopes than unrolled rules have entries"
            );
        }
        prop_assert_eq!(report.per_vm.len(), seg.internal_members());
    }

    /// Adding an explicit allow rule is monotone: nothing previously
    /// allowed becomes denied.
    #[test]
    fn allow_is_monotone(
        (seg, records, extra_a, extra_b) in arb_segmentation().prop_flat_map(|seg| {
            let n = seg.len() as u16;
            let recs = arb_records(&seg, 30);
            (Just(seg), recs, 0..n, 0..n)
        })
    ) {
        let base = SegmentPolicy::learn(&records, &seg, false);
        let mut extended = base.clone();
        extended.allow(SegmentId(extra_a), SegmentId(extra_b), ANY_PORT);
        for a in 0..seg.len() as u16 {
            for b in 0..seg.len() as u16 {
                if base.allows(SegmentId(a), SegmentId(b), 80) {
                    prop_assert!(extended.allows(SegmentId(a), SegmentId(b), 80));
                }
            }
        }
        prop_assert!(extended.allows(SegmentId(extra_a), SegmentId(extra_b), 80));
    }
}
