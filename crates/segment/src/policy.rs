//! Default-deny reachability policies between µsegments.
//!
//! "A pair of resources can communicate with each other only if explicitly
//! allowed by the policies; i.e., the default will be to deny." Policies are
//! *learned* from a window of observed communication: every segment pair
//! (optionally qualified by service port) that talked during normal
//! operation becomes an allow rule; everything else is denied.

use crate::microseg::{Segment, SegmentId, Segmentation};
use flowlog::record::{ConnSummary, FlowKey};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// First ephemeral port: ports at or above this are client-side and never
/// name a service.
pub const EPHEMERAL_START: u16 = 32_768;

/// Wildcard port in rules (matches any service).
pub const ANY_PORT: u16 = 0;

/// Best-effort service port of a flow: the non-ephemeral side's port, or
/// [`ANY_PORT`] when both sides look ephemeral.
pub fn service_port(key: &FlowKey) -> u16 {
    match (key.local_port < EPHEMERAL_START, key.remote_port < EPHEMERAL_START) {
        (true, false) => key.local_port,
        (false, true) => key.remote_port,
        // Both non-ephemeral: the lower port is overwhelmingly the service.
        (true, true) => key.local_port.min(key.remote_port),
        (false, false) => ANY_PORT,
    }
}

/// One allow rule: the (unordered) segment pair, and the service port it is
/// scoped to ([`ANY_PORT`] = all ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct AllowRule {
    /// Lower segment id of the pair.
    pub a: SegmentId,
    /// Higher segment id of the pair.
    pub b: SegmentId,
    /// Service port, or [`ANY_PORT`].
    pub port: u16,
}

impl AllowRule {
    /// Canonicalized rule (segment ids ordered).
    pub fn new(x: SegmentId, y: SegmentId, port: u16) -> Self {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        AllowRule { a, b, port }
    }
}

/// A default-deny reachability policy between µsegments.
///
/// ```
/// use segment::{SegmentPolicy, Segmentation, SegmentId};
/// use flowlog::record::{ConnSummary, FlowKey};
///
/// let seg = Segmentation::from_members(vec![
///     ("web".into(), vec!["10.0.0.1".parse().unwrap()], true),
///     ("db".into(),  vec!["10.0.1.1".parse().unwrap()], true),
/// ]);
/// let observed = vec![ConnSummary {
///     ts: 0,
///     key: FlowKey::tcp("10.0.0.1".parse().unwrap(), 40000,
///                       "10.0.1.1".parse().unwrap(), 5432),
///     pkts_sent: 1, pkts_rcvd: 1, bytes_sent: 100, bytes_rcvd: 100,
/// }];
/// let policy = SegmentPolicy::learn(&observed, &seg, true);
/// assert!(policy.allows(SegmentId(0), SegmentId(1), 5432));
/// assert!(!policy.allows(SegmentId(0), SegmentId(1), 22));
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct SegmentPolicy {
    rules: HashSet<AllowRule>,
    /// Whether rules are scoped to service ports (stricter) or whole
    /// segment pairs.
    port_scoped: bool,
}

impl SegmentPolicy {
    /// An empty (deny-everything) policy.
    pub fn deny_all(port_scoped: bool) -> Self {
        SegmentPolicy { rules: HashSet::new(), port_scoped }
    }

    /// Learn a policy from observed records: every segment pair (and service
    /// port, when `port_scoped`) seen communicating becomes an allow rule.
    /// Records touching IPs outside the segmentation are skipped — an
    /// unknown peer can never be pre-authorized.
    pub fn learn<'a>(
        records: impl IntoIterator<Item = &'a ConnSummary>,
        seg: &Segmentation,
        port_scoped: bool,
    ) -> Self {
        let mut rules = HashSet::new();
        for r in records {
            let (Some(sa), Some(sb)) =
                (seg.segment_of(r.key.local_ip), seg.segment_of(r.key.remote_ip))
            else {
                continue;
            };
            let port = if port_scoped { service_port(&r.key) } else { ANY_PORT };
            rules.insert(AllowRule::new(sa, sb, port));
        }
        SegmentPolicy { rules, port_scoped }
    }

    /// Learn a policy incrementally, re-synthesizing rules only for segment
    /// pairs whose membership (or traffic) changed since the previous
    /// window.
    ///
    /// A current segment is *carried over* when the previous segmentation
    /// has a segment of the same name with an identical member list and
    /// none of its members appear in `dirty` — the window-roll dirty set
    /// from `commgraph_graph::diff`, which flags every added, removed, or
    /// traffic-changed endpoint. Rules between two carried-over segments
    /// are copied from `prev` verbatim; records between them are skipped.
    /// Everything else is re-learned from `records` exactly as
    /// [`SegmentPolicy::learn`] would.
    ///
    /// Because any new, removed, or modified conversation dirties both of
    /// its endpoints, a carried-over pair saw the same flows as last
    /// window, and the result equals a full [`SegmentPolicy::learn`] over
    /// `records` rule-for-rule (the pipeline's rebuild oracle asserts
    /// this). A `prev` learned under a different `port_scoped` setting
    /// cannot be reused and triggers a full relearn.
    pub fn learn_incremental<'a>(
        records: impl IntoIterator<Item = &'a ConnSummary>,
        seg: &Segmentation,
        prev_seg: &Segmentation,
        prev: &SegmentPolicy,
        dirty: &HashSet<Ipv4Addr>,
        port_scoped: bool,
    ) -> Self {
        if prev.port_scoped != port_scoped {
            return SegmentPolicy::learn(records, seg, port_scoped);
        }
        let prev_by_name: HashMap<&str, &Segment> =
            prev_seg.segments().iter().map(|s| (s.name.as_str(), s)).collect();
        let mut carried = vec![false; seg.len()];
        let mut prev_to_cur: HashMap<SegmentId, SegmentId> = HashMap::new();
        for s in seg.segments() {
            if let Some(ps) = prev_by_name.get(s.name.as_str()) {
                if ps.members == s.members && s.members.iter().all(|ip| !dirty.contains(ip)) {
                    carried[s.id.0 as usize] = true;
                    prev_to_cur.insert(ps.id, s.id);
                }
            }
        }
        let mut rules = HashSet::new();
        for r in &prev.rules {
            if let (Some(&a), Some(&b)) = (prev_to_cur.get(&r.a), prev_to_cur.get(&r.b)) {
                rules.insert(AllowRule::new(a, b, r.port));
            }
        }
        for r in records {
            let (Some(sa), Some(sb)) =
                (seg.segment_of(r.key.local_ip), seg.segment_of(r.key.remote_ip))
            else {
                continue;
            };
            if carried[sa.0 as usize] && carried[sb.0 as usize] {
                continue;
            }
            let port = if port_scoped { service_port(&r.key) } else { ANY_PORT };
            rules.insert(AllowRule::new(sa, sb, port));
        }
        SegmentPolicy { rules, port_scoped }
    }

    /// Whether this policy's rules carry port scopes.
    pub fn port_scoped(&self) -> bool {
        self.port_scoped
    }

    /// Number of allow rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The rules, sorted (stable output for reports).
    pub fn rules(&self) -> Vec<AllowRule> {
        let mut v: Vec<AllowRule> = self.rules.iter().copied().collect();
        v.sort();
        v
    }

    /// Add an explicit allow rule (operator override).
    pub fn allow(&mut self, a: SegmentId, b: SegmentId, port: u16) {
        self.rules.insert(AllowRule::new(a, b, port));
    }

    /// Does the policy allow segments `a` and `b` to talk on `port`?
    pub fn allows(&self, a: SegmentId, b: SegmentId, port: u16) -> bool {
        if self.rules.contains(&AllowRule::new(a, b, ANY_PORT)) {
            return true;
        }
        self.port_scoped && port != ANY_PORT && self.rules.contains(&AllowRule::new(a, b, port))
    }

    /// Segments directly reachable from `s` under this policy (including
    /// itself if a self-rule exists).
    pub fn reachable_from(&self, s: SegmentId) -> Vec<SegmentId> {
        let mut out: Vec<SegmentId> = self
            .rules
            .iter()
            .filter_map(|r| {
                if r.a == s {
                    Some(r.b)
                } else if r.b == s {
                    Some(r.a)
                } else {
                    None
                }
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn seg2() -> Segmentation {
        Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1), ip(0, 2)], true),
            ("db".into(), vec![ip(1, 1)], true),
            ("cache".into(), vec![ip(2, 1)], true),
        ])
    }

    fn rec(l: Ipv4Addr, lp: u16, r: Ipv4Addr, rp: u16) -> ConnSummary {
        ConnSummary {
            ts: 0,
            key: FlowKey::tcp(l, lp, r, rp),
            pkts_sent: 1,
            pkts_rcvd: 1,
            bytes_sent: 100,
            bytes_rcvd: 100,
        }
    }

    #[test]
    fn service_port_heuristics() {
        assert_eq!(service_port(&FlowKey::tcp(ip(0, 1), 40_000, ip(1, 1), 443)), 443);
        assert_eq!(service_port(&FlowKey::tcp(ip(0, 1), 443, ip(1, 1), 40_000)), 443);
        assert_eq!(service_port(&FlowKey::tcp(ip(0, 1), 443, ip(1, 1), 8080)), 443);
        assert_eq!(service_port(&FlowKey::tcp(ip(0, 1), 40_000, ip(1, 1), 50_000)), ANY_PORT);
    }

    #[test]
    fn learned_policy_allows_observed_denies_rest() {
        let seg = seg2();
        let records = vec![rec(ip(0, 1), 40_000, ip(1, 1), 5432)];
        let p = SegmentPolicy::learn(&records, &seg, false);
        let (web, db, cache) = (SegmentId(0), SegmentId(1), SegmentId(2));
        assert!(p.allows(web, db, 5432));
        assert!(p.allows(db, web, 1234), "pair rule is symmetric and port-free");
        assert!(!p.allows(web, cache, 6379), "default deny");
        assert!(!p.allows(db, cache, 5432));
    }

    #[test]
    fn port_scoped_policy_is_stricter() {
        let seg = seg2();
        let records = vec![rec(ip(0, 1), 40_000, ip(1, 1), 5432)];
        let p = SegmentPolicy::learn(&records, &seg, true);
        let (web, db) = (SegmentId(0), SegmentId(1));
        assert!(p.allows(web, db, 5432));
        assert!(!p.allows(web, db, 22), "same pair, unapproved port → deny");
    }

    #[test]
    fn unknown_ips_never_learned() {
        let seg = seg2();
        let stranger = Ipv4Addr::new(203, 0, 113, 9);
        let records = vec![rec(ip(0, 1), 40_000, stranger, 443)];
        let p = SegmentPolicy::learn(&records, &seg, false);
        assert_eq!(p.rule_count(), 0);
    }

    #[test]
    fn learning_is_direction_independent() {
        let seg = seg2();
        let fwd = vec![rec(ip(0, 1), 40_000, ip(1, 1), 5432)];
        let rev = vec![rec(ip(1, 1), 5432, ip(0, 1), 40_000)];
        let pf = SegmentPolicy::learn(&fwd, &seg, true);
        let pr = SegmentPolicy::learn(&rev, &seg, true);
        assert_eq!(pf.rules(), pr.rules());
    }

    #[test]
    fn explicit_allow_and_reachability() {
        let mut p = SegmentPolicy::deny_all(false);
        p.allow(SegmentId(0), SegmentId(1), ANY_PORT);
        p.allow(SegmentId(2), SegmentId(0), ANY_PORT);
        assert_eq!(p.reachable_from(SegmentId(0)), vec![SegmentId(1), SegmentId(2)]);
        assert_eq!(p.reachable_from(SegmentId(1)), vec![SegmentId(0)]);
        assert!(p.reachable_from(SegmentId(9)).is_empty());
    }

    #[test]
    fn incremental_learn_matches_full_learn_under_churn() {
        // Four segments; between windows only web's traffic to cache
        // changes, so db↔mq survives as a carried-over pair.
        let seg = Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1), ip(0, 2)], true),
            ("db".into(), vec![ip(1, 1)], true),
            ("cache".into(), vec![ip(2, 1)], true),
            ("mq".into(), vec![ip(3, 1)], true),
        ]);
        let w1 = vec![
            rec(ip(0, 1), 40_000, ip(1, 1), 5432),
            rec(ip(0, 2), 40_001, ip(1, 1), 5432),
            rec(ip(0, 1), 40_002, ip(2, 1), 6379),
            rec(ip(1, 1), 40_003, ip(3, 1), 5672),
        ];
        let w2 = vec![
            rec(ip(0, 1), 40_000, ip(1, 1), 5432),
            rec(ip(0, 2), 40_001, ip(1, 1), 5432),
            rec(ip(0, 1), 40_002, ip(2, 1), 6380), // changed service port
            rec(ip(1, 1), 40_003, ip(3, 1), 5672),
        ];
        // The 10.0.0.1 ↔ 10.0.2.1 conversation changed, so both endpoints
        // are dirty; db's and mq's traffic is identical, so they carry.
        let dirty: HashSet<Ipv4Addr> = [ip(0, 1), ip(2, 1)].into_iter().collect();
        for port_scoped in [false, true] {
            let prev = SegmentPolicy::learn(&w1, &seg, port_scoped);
            let inc = SegmentPolicy::learn_incremental(&w2, &seg, &seg, &prev, &dirty, port_scoped);
            let full = SegmentPolicy::learn(&w2, &seg, port_scoped);
            assert_eq!(inc.rules(), full.rules(), "port_scoped={port_scoped}");
            assert_eq!(inc.port_scoped(), full.port_scoped());
        }
    }

    #[test]
    fn incremental_learn_with_no_churn_is_identity() {
        let seg = seg2();
        let w = vec![rec(ip(0, 1), 40_000, ip(1, 1), 5432), rec(ip(0, 2), 40_001, ip(2, 1), 6379)];
        let prev = SegmentPolicy::learn(&w, &seg, true);
        let inc = SegmentPolicy::learn_incremental(&w, &seg, &seg, &prev, &HashSet::new(), true);
        assert_eq!(inc.rules(), prev.rules());
    }

    #[test]
    fn incremental_learn_relearns_on_membership_change() {
        // web gains a member between windows: its pairs must be re-learned
        // even though the old members' traffic is unchanged.
        let seg1 = Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1)], true),
            ("db".into(), vec![ip(1, 1)], true),
        ]);
        let seg2w = Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1), ip(0, 2)], true),
            ("db".into(), vec![ip(1, 1)], true),
        ]);
        let w1 = vec![rec(ip(0, 1), 40_000, ip(1, 1), 5432)];
        let w2 = vec![rec(ip(0, 1), 40_000, ip(1, 1), 5432), rec(ip(0, 2), 40_001, ip(1, 1), 9042)];
        let dirty: HashSet<Ipv4Addr> = [ip(0, 2), ip(1, 1)].into_iter().collect();
        let prev = SegmentPolicy::learn(&w1, &seg1, true);
        let inc = SegmentPolicy::learn_incremental(&w2, &seg2w, &seg1, &prev, &dirty, true);
        let full = SegmentPolicy::learn(&w2, &seg2w, true);
        assert_eq!(inc.rules(), full.rules());
        assert!(inc.allows(SegmentId(0), SegmentId(1), 9042), "new conversation learned");
    }

    #[test]
    fn incremental_learn_falls_back_on_scope_mismatch() {
        let seg = seg2();
        let w = vec![rec(ip(0, 1), 40_000, ip(1, 1), 5432)];
        let prev = SegmentPolicy::learn(&w, &seg, false);
        // Requesting port-scoped rules from a pair-scoped memo: full relearn.
        let inc = SegmentPolicy::learn_incremental(&w, &seg, &seg, &prev, &HashSet::new(), true);
        let full = SegmentPolicy::learn(&w, &seg, true);
        assert_eq!(inc.rules(), full.rules());
        assert!(inc.port_scoped());
    }

    #[test]
    fn self_segment_rules_work() {
        let seg = seg2();
        // web replica to web replica (e.g. gossip).
        let records = vec![rec(ip(0, 1), 40_000, ip(0, 2), 7946)];
        let p = SegmentPolicy::learn(&records, &seg, false);
        assert!(p.allows(SegmentId(0), SegmentId(0), 7946));
        assert_eq!(p.reachable_from(SegmentId(0)), vec![SegmentId(0)]);
    }
}
