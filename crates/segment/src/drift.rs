//! Segmentation drift: keeping µsegment labels up to date.
//!
//! "When the role of a resource changes — for example, when pods in
//! kubernetes migrate or scale up or down or when a software change causes
//! VMs to behave differently — the µsegment labels must keep up-to-date."
//!
//! Re-running role inference on a fresh window yields a *new* segmentation;
//! this module reconciles it against the one currently enforced:
//! [`reconcile`] matches new segments to old ones by membership overlap,
//! classifies every resource as stable / moved / new / retired, and prices
//! the transition in enforcement updates (per-IP vs tag rules) — the
//! operational "churn and lag" the paper says tags should reduce.

use crate::microseg::{SegmentId, Segmentation};
use serde::Serialize;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How one new segment maps onto the old segmentation.
#[derive(Debug, Clone, Serialize)]
pub struct SegmentMatch {
    /// Segment in the new segmentation.
    pub new_segment: SegmentId,
    /// Best-overlapping old segment, if any member overlaps.
    pub old_segment: Option<SegmentId>,
    /// Members shared with that old segment.
    pub overlap: usize,
    /// Members of the new segment.
    pub size: usize,
    /// Jaccard overlap with the matched old segment (0 when unmatched).
    pub jaccard: f64,
}

/// The full reconciliation of an old → new segmentation transition.
#[derive(Debug, Clone, Serialize)]
pub struct DriftReport {
    /// Per-new-segment matches, ordered by new segment id.
    pub matches: Vec<SegmentMatch>,
    /// Resources whose (matched) segment did not change.
    pub stable: usize,
    /// Resources that moved between matched segments — the label churn.
    pub moved: Vec<Ipv4Addr>,
    /// Resources present only in the new segmentation (scale-out).
    pub added: Vec<Ipv4Addr>,
    /// Resources present only in the old segmentation (scale-in).
    pub retired: Vec<Ipv4Addr>,
    /// Fraction of common resources whose label persisted, in `[0, 1]`.
    pub stability: f64,
    /// Per-IP enforcement updates the transition requires (every mover's
    /// address must be rewritten in every peer VM's unrolled rules, plus its
    /// own rule list).
    pub ip_rule_updates: usize,
    /// Tag updates required (one re-tag per moved/added/retired resource).
    pub tag_updates: usize,
}

fn member_map(seg: &Segmentation) -> HashMap<Ipv4Addr, SegmentId> {
    let mut m = HashMap::new();
    for s in seg.segments() {
        for &ip in &s.members {
            m.insert(ip, s.id);
        }
    }
    m
}

/// Reconcile `new` against the currently-enforced `old` segmentation.
///
/// Matching is greedy by overlap: each new segment maps to the old segment
/// with the largest shared membership (unmatched when it shares nothing).
pub fn reconcile(old: &Segmentation, new: &Segmentation) -> DriftReport {
    let old_members = member_map(old);
    let new_members = member_map(new);

    // Overlap counts: new segment -> old segment -> shared members.
    let mut overlap: HashMap<SegmentId, HashMap<SegmentId, usize>> = HashMap::new();
    for (ip, new_seg) in &new_members {
        if let Some(old_seg) = old_members.get(ip) {
            *overlap.entry(*new_seg).or_default().entry(*old_seg).or_insert(0) += 1;
        }
    }
    let mut matches: Vec<SegmentMatch> = new
        .segments()
        .iter()
        .map(|s| {
            // Prefer the old segment with the larger overlap; on ties, the
            // *smaller* old segment (higher Jaccard), then the smaller id
            // for determinism.
            let best = overlap.get(&s.id).and_then(|m| {
                m.iter().max_by_key(|(old_id, &n)| {
                    (
                        n,
                        std::cmp::Reverse(old.segment(**old_id).members.len()),
                        std::cmp::Reverse(**old_id),
                    )
                })
            });
            match best {
                Some((&old_id, &n)) => {
                    let old_size = old.segment(old_id).members.len();
                    let union = s.members.len() + old_size - n;
                    SegmentMatch {
                        new_segment: s.id,
                        old_segment: Some(old_id),
                        overlap: n,
                        size: s.members.len(),
                        jaccard: n as f64 / union.max(1) as f64,
                    }
                }
                None => SegmentMatch {
                    new_segment: s.id,
                    old_segment: None,
                    overlap: 0,
                    size: s.members.len(),
                    jaccard: 0.0,
                },
            }
        })
        .collect();
    matches.sort_by_key(|m| m.new_segment);
    let mapping: HashMap<SegmentId, Option<SegmentId>> =
        matches.iter().map(|m| (m.new_segment, m.old_segment)).collect();

    // Classify resources.
    let (mut stable, mut moved, mut added) = (0usize, Vec::new(), Vec::new());
    for (ip, new_seg) in &new_members {
        match old_members.get(ip) {
            None => added.push(*ip),
            Some(old_seg) => {
                if mapping.get(new_seg).copied().flatten() == Some(*old_seg) {
                    stable += 1;
                } else {
                    moved.push(*ip);
                }
            }
        }
    }
    let retired: Vec<Ipv4Addr> =
        old_members.keys().filter(|ip| !new_members.contains_key(*ip)).copied().collect();
    let common = stable + moved.len();
    let stability = if common == 0 { 1.0 } else { stable as f64 / common as f64 };

    // Enforcement cost. Per-IP: a moved/added/retired resource's address
    // must be added/removed in the unrolled rules of every *other* internal
    // VM that holds rules naming it — bounded above by the internal fleet —
    // plus its own list. Tags: one membership update per affected resource.
    let fleet = new.internal_members().max(old.internal_members());
    let affected = moved.len() + added.len() + retired.len();
    let ip_rule_updates = affected * fleet.saturating_sub(1) + affected;
    let tag_updates = affected;

    let (mut moved, mut added, mut retired) = (moved, added, retired);
    moved.sort();
    added.sort();
    retired.sort();
    DriftReport { matches, stable, moved, added, retired, stability, ip_rule_updates, tag_updates }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn seg(groups: &[(&str, &[Ipv4Addr])]) -> Segmentation {
        Segmentation::from_members(
            groups.iter().map(|(n, m)| (n.to_string(), m.to_vec(), true)).collect(),
        )
    }

    #[test]
    fn identical_segmentations_are_fully_stable() {
        let a = seg(&[("web", &[ip(0, 1), ip(0, 2)]), ("db", &[ip(1, 1)])]);
        let b = seg(&[("web", &[ip(0, 1), ip(0, 2)]), ("db", &[ip(1, 1)])]);
        let r = reconcile(&a, &b);
        assert_eq!(r.stable, 3);
        assert!(r.moved.is_empty() && r.added.is_empty() && r.retired.is_empty());
        assert_eq!(r.stability, 1.0);
        assert_eq!(r.ip_rule_updates, 0);
        assert_eq!(r.tag_updates, 0);
        assert!(r.matches.iter().all(|m| m.jaccard == 1.0));
    }

    #[test]
    fn relabeled_segments_still_match_by_overlap() {
        // Same partition, different segment ids/order.
        let a = seg(&[("x", &[ip(0, 1), ip(0, 2)]), ("y", &[ip(1, 1), ip(1, 2)])]);
        let b = seg(&[("p", &[ip(1, 1), ip(1, 2)]), ("q", &[ip(0, 1), ip(0, 2)])]);
        let r = reconcile(&a, &b);
        assert_eq!(r.stable, 4, "identity of labels is irrelevant");
        assert_eq!(r.stability, 1.0);
    }

    #[test]
    fn movers_are_detected_and_priced() {
        let a = seg(&[("web", &[ip(0, 1), ip(0, 2), ip(0, 3)]), ("db", &[ip(1, 1)])]);
        // 10.0.0.3 drifts into the db segment.
        let b = seg(&[("web", &[ip(0, 1), ip(0, 2)]), ("db", &[ip(0, 3), ip(1, 1)])]);
        let r = reconcile(&a, &b);
        assert_eq!(r.moved, vec![ip(0, 3)]);
        assert_eq!(r.stable, 3);
        assert!((r.stability - 0.75).abs() < 1e-12);
        assert_eq!(r.tag_updates, 1, "one re-tag");
        assert_eq!(r.ip_rule_updates, 3 + 1, "every other VM + its own list");
    }

    #[test]
    fn scale_out_and_in_are_classified() {
        let a = seg(&[("web", &[ip(0, 1), ip(0, 2)])]);
        let b = seg(&[("web", &[ip(0, 1), ip(0, 9)])]);
        let r = reconcile(&a, &b);
        assert_eq!(r.added, vec![ip(0, 9)]);
        assert_eq!(r.retired, vec![ip(0, 2)]);
        assert_eq!(r.stable, 1);
        assert_eq!(r.tag_updates, 2);
    }

    #[test]
    fn split_segment_keeps_the_larger_half_stable() {
        let a = seg(&[("all", &[ip(0, 1), ip(0, 2), ip(0, 3), ip(0, 4)])]);
        let b = seg(&[("big", &[ip(0, 1), ip(0, 2), ip(0, 3)]), ("small", &[ip(0, 4)])]);
        let r = reconcile(&a, &b);
        // Both new segments match old "all"; members of both count stable
        // only through their own segment's mapping — all map to old seg 0,
        // so everyone is "stable" under overlap matching (the split itself
        // shows up as two matches onto one old segment).
        let matched: Vec<_> = r.matches.iter().filter(|m| m.old_segment.is_some()).collect();
        assert_eq!(matched.len(), 2);
        assert!(r.matches.iter().any(|m| m.jaccard < 1.0), "split lowers overlap quality");
    }

    #[test]
    fn empty_segmentations() {
        let empty = seg(&[]);
        let full = seg(&[("web", &[ip(0, 1)])]);
        let r = reconcile(&empty, &full);
        assert_eq!(r.added.len(), 1);
        assert_eq!(r.stability, 1.0, "no common resources ⇒ vacuously stable");
        let r2 = reconcile(&full, &empty);
        assert_eq!(r2.retired.len(), 1);
    }
}
