//! Rule-update cost under churn: why the paper wants tags.
//!
//! "Tags may also help reduce churn and lag when µsegment labels change."
//! When a replica joins or leaves a µsegment, per-IP unrolled rules must be
//! rewritten on **every VM in every segment allowed to talk to it** — the
//! whole fleet feels one pod reschedule. Tag-based enforcement localizes
//! the change: the new VM gets its own rule set and a tag registration;
//! nobody else's rules change.
//!
//! [`churn_update_cost`] computes both costs for a hypothetical ±1-replica
//! event on each segment; [`ChurnCostReport`] aggregates fleet-wide.

use crate::microseg::{SegmentId, Segmentation};
use crate::policy::SegmentPolicy;
use serde::Serialize;

/// Update cost of one ±1-replica event on a segment.
#[derive(Debug, Clone, Serialize)]
pub struct SegmentChurnCost {
    /// The segment whose membership changes.
    pub segment: SegmentId,
    /// Display name of the segment.
    pub name: String,
    /// Current members.
    pub members: usize,
    /// VMs whose per-IP rule lists must be rewritten.
    pub ip_vms_touched: usize,
    /// Individual per-IP rules added/removed fleet-wide.
    pub ip_rule_updates: usize,
    /// VMs whose tag rules must be rewritten (only the churned VM itself).
    pub tag_vms_touched: usize,
    /// Tag-table registrations (the churned VM's tag membership).
    pub tag_updates: usize,
}

/// Fleet-wide churn-cost aggregate.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnCostReport {
    /// Per-segment costs.
    pub per_segment: Vec<SegmentChurnCost>,
    /// Mean per-IP rule updates per churn event.
    pub mean_ip_rule_updates: f64,
    /// Worst-case per-IP rule updates for one event.
    pub max_ip_rule_updates: usize,
    /// Mean tag updates per churn event (always small).
    pub mean_tag_updates: f64,
    /// Ratio mean_ip / mean_tag — the amplification tags remove.
    pub amplification: f64,
}

/// Cost of one ±1-replica churn event on `segment`.
pub fn churn_update_cost(
    seg: &Segmentation,
    policy: &SegmentPolicy,
    segment: SegmentId,
) -> SegmentChurnCost {
    let s = seg.segment(segment);
    // Which (peer segment, port-scope) pairs involve this segment?
    let mut peer_scopes: Vec<(SegmentId, u16)> = Vec::new();
    for rule in policy.rules() {
        if rule.a == segment {
            peer_scopes.push((rule.b, rule.port));
        }
        if rule.b == segment && rule.a != rule.b {
            peer_scopes.push((rule.a, rule.port));
        }
    }
    // Per-IP enforcement: every *internal* VM in every peer segment holds
    // one rule per member of `segment` (per scope) — each must be updated.
    // Members of `segment` itself also hold rules if a self-rule exists.
    let mut ip_vms = 0usize;
    let mut ip_updates = 0usize;
    for &(peer, _scope) in &peer_scopes {
        let p = seg.segment(peer);
        if !p.internal {
            continue;
        }
        let members =
            if peer == segment { p.members.len().saturating_sub(1) } else { p.members.len() };
        ip_vms += members;
        ip_updates += members; // one rule add/remove per enforcing VM
    }
    // The churned VM itself must also be programmed with its full rule set;
    // count it once for both schemes.
    let own_rules: usize = peer_scopes.len();
    SegmentChurnCost {
        segment,
        name: s.name.clone(),
        members: s.members.len(),
        ip_vms_touched: ip_vms + 1,
        ip_rule_updates: ip_updates + own_rules.max(1),
        tag_vms_touched: 1,
        tag_updates: 1 + own_rules.max(1).min(own_rules + 1),
    }
}

/// Assess a ±1 churn event on every internal segment.
pub fn churn_cost_report(seg: &Segmentation, policy: &SegmentPolicy) -> ChurnCostReport {
    let mut per_segment = Vec::new();
    for s in seg.segments() {
        if !s.internal {
            continue;
        }
        per_segment.push(churn_update_cost(seg, policy, s.id));
    }
    let n = per_segment.len().max(1) as f64;
    let mean_ip = per_segment.iter().map(|c| c.ip_rule_updates as f64).sum::<f64>() / n;
    let max_ip = per_segment.iter().map(|c| c.ip_rule_updates).max().unwrap_or(0);
    let mean_tag = per_segment.iter().map(|c| c.tag_updates as f64).sum::<f64>() / n;
    ChurnCostReport {
        per_segment,
        mean_ip_rule_updates: mean_ip,
        max_ip_rule_updates: max_ip,
        mean_tag_updates: mean_tag,
        amplification: if mean_tag > 0.0 { mean_ip / mean_tag } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ANY_PORT;
    use std::net::Ipv4Addr;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn many(a: u8, n: u8) -> Vec<Ipv4Addr> {
        (1..=n).map(|b| ip(a, b)).collect()
    }

    /// web(5) ↔ api(100), api ↔ db(10).
    fn setup() -> (Segmentation, SegmentPolicy) {
        let seg = Segmentation::from_members(vec![
            ("web".into(), many(0, 5), true),
            ("api".into(), many(1, 100), true),
            ("db".into(), many(2, 10), true),
        ]);
        let mut p = SegmentPolicy::deny_all(false);
        p.allow(SegmentId(0), SegmentId(1), ANY_PORT);
        p.allow(SegmentId(1), SegmentId(2), ANY_PORT);
        (seg, p)
    }

    #[test]
    fn churn_on_popular_segment_touches_all_its_peers() {
        let (seg, p) = setup();
        // api churn: every web VM (5) and every db VM (10) re-programs.
        let c = churn_update_cost(&seg, &p, SegmentId(1));
        assert_eq!(c.ip_vms_touched, 5 + 10 + 1);
        assert!(c.ip_rule_updates >= 15);
        assert_eq!(c.tag_vms_touched, 1, "tags: only the churned VM");
    }

    #[test]
    fn churn_on_leaf_segment_is_cheaper_but_still_amplified() {
        let (seg, p) = setup();
        // web churn: all 100 api VMs re-program.
        let c = churn_update_cost(&seg, &p, SegmentId(0));
        assert_eq!(c.ip_vms_touched, 101);
        assert!(c.ip_rule_updates > 50 * c.tag_updates, "two-orders-of-magnitude gap");
    }

    #[test]
    fn report_aggregates_and_amplification_is_large() {
        let (seg, p) = setup();
        let r = churn_cost_report(&seg, &p);
        assert_eq!(r.per_segment.len(), 3);
        assert!(r.max_ip_rule_updates >= 100);
        assert!(
            r.amplification > 10.0,
            "tags must remove an order of magnitude of churn: {}",
            r.amplification
        );
    }

    #[test]
    fn isolated_segment_costs_almost_nothing() {
        let seg = Segmentation::from_members(vec![
            ("iso".into(), many(0, 4), true),
            ("other".into(), many(1, 4), true),
        ]);
        let p = SegmentPolicy::deny_all(false);
        let c = churn_update_cost(&seg, &p, SegmentId(0));
        assert_eq!(c.ip_vms_touched, 1, "just the churned VM itself");
        assert_eq!(c.ip_rule_updates, 1);
    }

    #[test]
    fn self_rule_counts_own_segment_peers() {
        let seg = Segmentation::from_members(vec![("mesh".into(), many(0, 8), true)]);
        let mut p = SegmentPolicy::deny_all(false);
        p.allow(SegmentId(0), SegmentId(0), ANY_PORT);
        let c = churn_update_cost(&seg, &p, SegmentId(0));
        assert_eq!(c.ip_vms_touched, 7 + 1, "other mesh members update");
    }
}
