//! Higher-order policies: similarity- and proportionality-based (§2.1).
//!
//! Plain reachability policies flag every new communication edge, which
//! makes software rollouts noisy: "suppose a code change causes VMs in a
//! µsegment to begin speaking with a new service… noticing that all of the
//! VMs in the µsegment continue to exhibit similar behavior … may avoid the
//! false positive." Likewise, proportional growth across tiers is a flash
//! crowd, not a breach.
//!
//! * [`similarity_assess`] — for each new (segment, peer-segment, port)
//!   behavior between two windows, count how many segment members exhibit
//!   it: fleet-wide ⇒ explainable change, lone member ⇒ suspicious.
//! * [`proportionality_assess`] — compare per-segment-pair traffic growth
//!   against the cluster-wide trend: pairs that grow with the tide are
//!   explainable, pairs that surge alone are not.

use crate::microseg::{SegmentId, Segmentation};
use crate::policy::service_port;
use flowlog::record::ConnSummary;
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// A (segment, peer segment, service port) behavior key.
pub type BehaviorKey = (SegmentId, SegmentId, u16);

/// Assessment of one newly-appeared behavior.
#[derive(Debug, Clone, Serialize)]
pub struct SimilarityFinding {
    /// The segment whose members changed behavior.
    pub segment: SegmentId,
    /// The new peer segment.
    pub peer: SegmentId,
    /// Service port of the new conversations.
    pub port: u16,
    /// Members of `segment` exhibiting the new behavior.
    pub members_exhibiting: usize,
    /// Total members of `segment`.
    pub members_total: usize,
    /// True when enough of the fleet moved together that the change is
    /// explainable (e.g. a rollout) rather than a single breached VM.
    pub explainable: bool,
}

/// Collect, per (segment, peer, port), the distinct members talking.
fn behaviors<'a>(
    records: impl IntoIterator<Item = &'a ConnSummary>,
    seg: &Segmentation,
) -> HashMap<BehaviorKey, HashSet<std::net::Ipv4Addr>> {
    let mut out: HashMap<BehaviorKey, HashSet<std::net::Ipv4Addr>> = HashMap::new();
    for r in records {
        let (Some(a), Some(b)) = (seg.segment_of(r.key.local_ip), seg.segment_of(r.key.remote_ip))
        else {
            continue;
        };
        let port = service_port(&r.key);
        out.entry((a, b, port)).or_default().insert(r.key.local_ip);
        // The peer's members also "exhibit" the behavior from their side.
        out.entry((b, a, port)).or_default().insert(r.key.remote_ip);
    }
    out
}

/// Compare two windows and assess every *new* behavior in the later one.
///
/// `fleet_threshold` is the fraction of segment members that must exhibit a
/// new behavior for it to count as explainable (the paper's "all of the VMs
/// continue to exhibit similar behavior"; 0.8 is a practical default —
/// rollouts are rarely perfectly atomic across a window boundary).
pub fn similarity_assess<'a>(
    baseline: impl IntoIterator<Item = &'a ConnSummary>,
    current: impl IntoIterator<Item = &'a ConnSummary>,
    seg: &Segmentation,
    fleet_threshold: f64,
) -> Vec<SimilarityFinding> {
    assert!((0.0..=1.0).contains(&fleet_threshold), "threshold must be in [0, 1]");
    let before = behaviors(baseline, seg);
    let after = behaviors(current, seg);
    // A side vouches for the change when a fleet of at least two members
    // moved together — a singleton segment can't distinguish "rollout"
    // from "that one VM is compromised".
    let side_vouches = |key: &BehaviorKey| -> bool {
        let Some(members) = after.get(key) else { return false };
        let total = seg.segment(key.0).members.len();
        total >= 2 && members.len() as f64 / total as f64 >= fleet_threshold
    };
    let mut findings = Vec::new();
    for (key, members) in &after {
        if before.contains_key(key) {
            continue; // not new
        }
        let (s, peer, port) = *key;
        let total = seg.segment(s).members.len();
        if total == 0 {
            continue;
        }
        // Explainable if this side OR the mirrored side shows fleet-wide
        // adoption: when every web replica starts calling the registry,
        // the change is a rollout no matter how few registry replicas
        // happened to receive the connections.
        let explainable = side_vouches(key) || side_vouches(&(peer, s, port));
        findings.push(SimilarityFinding {
            segment: s,
            peer,
            port,
            members_exhibiting: members.len(),
            members_total: total,
            explainable,
        });
    }
    findings.sort_by_key(|f| (f.segment, f.peer, f.port));
    findings
}

/// Assessment of one segment pair's traffic change between windows.
#[derive(Debug, Clone, Serialize)]
pub struct ProportionalityFinding {
    /// Lower segment of the pair.
    pub a: SegmentId,
    /// Higher segment of the pair.
    pub b: SegmentId,
    /// Bytes in the baseline window.
    pub bytes_before: u64,
    /// Bytes in the current window.
    pub bytes_after: u64,
    /// This pair's growth ratio.
    pub ratio: f64,
    /// The cluster-wide median growth ratio.
    pub cluster_ratio: f64,
    /// True when growth is in line with the cluster trend (flash crowd),
    /// false when this pair surged alone.
    pub proportional: bool,
}

/// Compare per-segment-pair byte volumes across two windows.
///
/// A pair is flagged non-proportional when its growth ratio exceeds the
/// cluster's median ratio by more than `tolerance_factor` (and it at least
/// doubled in absolute terms — tiny pairs produce noisy ratios).
pub fn proportionality_assess<'a>(
    baseline: impl IntoIterator<Item = &'a ConnSummary>,
    current: impl IntoIterator<Item = &'a ConnSummary>,
    seg: &Segmentation,
    tolerance_factor: f64,
) -> Vec<ProportionalityFinding> {
    assert!(tolerance_factor >= 1.0, "tolerance factor must be >= 1");
    let volume = |records: &mut dyn Iterator<Item = &'a ConnSummary>| {
        let mut v: HashMap<(SegmentId, SegmentId), u64> = HashMap::new();
        for r in records {
            let (Some(a), Some(b)) =
                (seg.segment_of(r.key.local_ip), seg.segment_of(r.key.remote_ip))
            else {
                continue;
            };
            let key = if a <= b { (a, b) } else { (b, a) };
            *v.entry(key).or_default() += r.bytes_total();
        }
        v
    };
    let before = volume(&mut baseline.into_iter());
    let after = volume(&mut current.into_iter());

    // Growth ratio per pair present in either window (missing ⇒ 0 bytes).
    let keys: HashSet<(SegmentId, SegmentId)> =
        before.keys().chain(after.keys()).copied().collect();
    let mut ratios: Vec<f64> = Vec::new();
    let mut raw: Vec<((SegmentId, SegmentId), u64, u64, f64)> = Vec::new();
    for key in keys {
        let vb = before.get(&key).copied().unwrap_or(0);
        let va = after.get(&key).copied().unwrap_or(0);
        let ratio = if vb == 0 {
            if va == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            va as f64 / vb as f64
        };
        ratios.push(ratio.min(1e9)); // keep the median finite
        raw.push((key, vb, va, ratio));
    }
    if raw.is_empty() {
        return Vec::new();
    }
    ratios.sort_by(f64::total_cmp);
    // Lower median: a conservative trend estimate, so that with few pairs a
    // single surging pair cannot drag the "cluster trend" up to meet itself.
    let cluster_ratio = ratios[(ratios.len() - 1) / 2];

    let mut out: Vec<ProportionalityFinding> = raw
        .into_iter()
        .map(|((a, b), vb, va, ratio)| {
            let grew_materially = va > vb.saturating_mul(2);
            let proportional = !grew_materially || ratio <= cluster_ratio * tolerance_factor;
            ProportionalityFinding {
                a,
                b,
                bytes_before: vb,
                bytes_after: va,
                ratio,
                cluster_ratio,
                proportional,
            }
        })
        .collect();
    out.sort_by_key(|f| (f.a, f.b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowlog::record::FlowKey;
    use std::net::Ipv4Addr;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn seg() -> Segmentation {
        Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1), ip(0, 2), ip(0, 3), ip(0, 4)], true),
            ("db".into(), vec![ip(1, 1)], true),
            ("metrics".into(), vec![ip(2, 1)], true),
        ])
    }

    fn rec(l: Ipv4Addr, r: Ipv4Addr, rp: u16, bytes: u64) -> ConnSummary {
        ConnSummary {
            ts: 0,
            key: FlowKey::tcp(l, 40_000, r, rp),
            pkts_sent: bytes / 1000 + 1,
            pkts_rcvd: 1,
            bytes_sent: bytes,
            bytes_rcvd: 100,
        }
    }

    #[test]
    fn fleet_wide_change_is_explainable() {
        let s = seg();
        let baseline = vec![rec(ip(0, 1), ip(1, 1), 5432, 1000)];
        // All four web VMs start talking to metrics — a rollout.
        let current: Vec<ConnSummary> =
            (1..=4).map(|i| rec(ip(0, i), ip(2, 1), 9090, 500)).collect();
        let findings = similarity_assess(&baseline, &current, &s, 0.8);
        let f = findings
            .iter()
            .find(|f| f.segment == SegmentId(0) && f.peer == SegmentId(2))
            .expect("new behavior detected");
        assert_eq!(f.members_exhibiting, 4);
        assert!(f.explainable, "all members moved together");
    }

    #[test]
    fn lone_member_change_is_suspicious() {
        let s = seg();
        let baseline = vec![rec(ip(0, 1), ip(1, 1), 5432, 1000)];
        let current = vec![rec(ip(0, 2), ip(2, 1), 22, 5000)]; // one VM, SSH
        let findings = similarity_assess(&baseline, &current, &s, 0.8);
        let f = findings
            .iter()
            .find(|f| f.segment == SegmentId(0) && f.peer == SegmentId(2))
            .expect("new behavior detected");
        assert_eq!(f.members_exhibiting, 1);
        assert!(!f.explainable, "1 of 4 members is not a rollout");
    }

    #[test]
    fn rollout_vouches_for_the_receiving_side_too() {
        // All four web VMs call one member of a *mixed* two-member segment;
        // the receiving side alone (1 of 2 members) would fail the fleet
        // threshold, but the initiating fleet vouches for the change.
        let s = Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1), ip(0, 2), ip(0, 3), ip(0, 4)], true),
            ("stores".into(), vec![ip(1, 1), ip(1, 2)], true),
        ]);
        let baseline = vec![rec(ip(0, 1), ip(1, 2), 5432, 1000)];
        let current: Vec<ConnSummary> =
            (1..=4).map(|i| rec(ip(0, i), ip(1, 1), 5000, 500)).collect();
        let findings = similarity_assess(&baseline, &current, &s, 0.8);
        assert!(!findings.is_empty());
        assert!(
            findings.iter().all(|f| f.explainable),
            "both directions of a fleet rollout are explainable: {findings:?}"
        );
    }

    #[test]
    fn singleton_segments_cannot_vouch() {
        // One VM of a 4-member web segment talks to a singleton segment.
        // The singleton trivially has 100% participation but must not make
        // the lone web VM's change explainable.
        let s = seg();
        let baseline = vec![rec(ip(0, 1), ip(1, 1), 5432, 1000)];
        let current = vec![rec(ip(0, 2), ip(2, 1), 9090, 700)];
        let findings = similarity_assess(&baseline, &current, &s, 0.8);
        assert!(
            findings.iter().all(|f| !f.explainable),
            "a singleton peer cannot whitewash a lone change: {findings:?}"
        );
    }

    #[test]
    fn existing_behaviors_are_not_findings() {
        let s = seg();
        let baseline = vec![rec(ip(0, 1), ip(1, 1), 5432, 1000)];
        let current = vec![rec(ip(0, 2), ip(1, 1), 5432, 9000)];
        let findings = similarity_assess(&baseline, &current, &s, 0.8);
        assert!(findings.is_empty(), "same behavior key existed in baseline");
    }

    #[test]
    fn flash_crowd_is_proportional() {
        let s = seg();
        // Everything triples: load surge.
        let baseline =
            vec![rec(ip(0, 1), ip(1, 1), 5432, 1000), rec(ip(0, 1), ip(2, 1), 9090, 2000)];
        let current =
            vec![rec(ip(0, 1), ip(1, 1), 5432, 3000), rec(ip(0, 1), ip(2, 1), 9090, 6000)];
        let findings = proportionality_assess(&baseline, &current, &s, 2.0);
        assert!(findings.iter().all(|f| f.proportional), "{findings:?}");
    }

    #[test]
    fn lone_surge_is_flagged() {
        let s = seg();
        let baseline =
            vec![rec(ip(0, 1), ip(1, 1), 5432, 1000), rec(ip(0, 1), ip(2, 1), 9090, 1000)];
        // db edge stays flat, metrics edge explodes 50x (e.g. exfil via
        // the metrics path).
        let current =
            vec![rec(ip(0, 1), ip(1, 1), 5432, 1100), rec(ip(0, 1), ip(2, 1), 9090, 50_000)];
        let findings = proportionality_assess(&baseline, &current, &s, 2.0);
        let surge = findings.iter().find(|f| f.bytes_after > 10_000).expect("surging pair present");
        assert!(!surge.proportional, "lone surge must be flagged: {surge:?}");
        let flat = findings.iter().find(|f| f.bytes_after < 10_000).unwrap();
        assert!(flat.proportional);
    }

    #[test]
    fn small_absolute_changes_tolerated() {
        let s = seg();
        let baseline = vec![rec(ip(0, 1), ip(1, 1), 5432, 10)];
        let current = vec![rec(ip(0, 1), ip(1, 1), 5432, 15)];
        let findings = proportionality_assess(&baseline, &current, &s, 2.0);
        assert!(findings[0].proportional, "sub-2x growth is never flagged");
    }

    #[test]
    fn empty_windows_are_quiet() {
        let s = seg();
        assert!(similarity_assess(&[], &[], &s, 0.8).is_empty());
        assert!(proportionality_assess(&[], &[], &s, 2.0).is_empty());
    }
}
