//! Micro-segmentation: the paper's flagship security primitive (§2.1).
//!
//! Micro-segmentation divides a subscription's resources into *µsegments*
//! and authors default-deny reachability policies between them, so that a
//! breached resource can only reach what its role legitimately needs — the
//! blast radius shrinks from "the whole subscription" to "my segment's
//! allowed peers."
//!
//! * [`microseg`] — µsegments derived from inferred roles.
//! * [`policy`] — default-deny reachability policies learned from observed
//!   communication, optionally service-port-scoped.
//! * [`violation`] — runtime policy checking over live record streams.
//! * [`compile`] — unrolling segment policies into per-VM rules: the rule-
//!   explosion problem, and the tag-based enforcement that avoids it.
//! * [`export`] — rendering per-VM rule lists as NSG-style security rules.
//! * [`drift`] — reconciling re-learned segmentations against the enforced
//!   one: label churn, stability, and the enforcement cost of keeping up.
//! * [`higher_order`] — the paper's similarity-based and proportionality-
//!   based policies, which kill the false positives plain reachability
//!   rules raise on software rollouts and flash crowds.
//! * [`blast`] — blast-radius measurement, before and after segmentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blast;
pub mod churn_cost;
pub mod compile;
pub mod drift;
pub mod error;
pub mod export;
pub mod higher_order;
pub mod microseg;
pub mod policy;
pub mod violation;

pub use error::{Error, Result};
pub use microseg::{Segment, SegmentId, Segmentation};
pub use policy::SegmentPolicy;
pub use violation::{Verdict, Violation, ViolationDetector};
