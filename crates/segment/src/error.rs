//! Segmentation error type.

use std::fmt;

/// Convenience alias using the crate [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building segmentations and policies.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The graph facet is unsuitable (segmentation needs an IP-facet graph).
    WrongFacet {
        /// The facet that was supplied.
        got: String,
    },
    /// Inference labels do not line up with graph nodes.
    LabelMismatch {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A parameter was out of range.
    InvalidArg(String),
    /// An IP was not found in the segmentation.
    UnknownIp(std::net::Ipv4Addr),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::WrongFacet { got } => {
                write!(f, "segmentation needs an ip-facet graph, got {got}")
            }
            Error::LabelMismatch { nodes, labels } => {
                write!(f, "{labels} labels for {nodes} nodes")
            }
            Error::InvalidArg(m) => write!(f, "invalid argument: {m}"),
            Error::UnknownIp(ip) => write!(f, "IP {ip} is not in the segmentation"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Error::WrongFacet { got: "ip-port".into() }.to_string().contains("ip-port"));
        assert!(Error::LabelMismatch { nodes: 5, labels: 3 }.to_string().contains('5'));
    }
}
