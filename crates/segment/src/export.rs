//! Exporting compiled policies as cloud security rules.
//!
//! The adoption path for µsegmentation is the enforcement machinery clouds
//! already run: per-VM rule lists in the network virtualization layer. This
//! module renders a [`SegmentPolicy`] into NSG-style security rules — the
//! JSON an operator could diff against (or import into) their existing
//! configuration — in both flavors the paper discusses: naive per-IP
//! unrolling and tag-based (service-tag-like) rules.

use crate::microseg::{SegmentId, Segmentation};
use crate::policy::{SegmentPolicy, ANY_PORT};
use serde::Serialize;

/// One exported security rule, shaped like an NSG `securityRule`.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct SecurityRule {
    /// Rule name, unique within its list.
    pub name: String,
    /// Rule priority (lower = evaluated first). Allow rules are numbered
    /// from 1000; the final deny-all sits at 4096.
    pub priority: u32,
    /// `"Inbound"` — we render ingress lists (egress is symmetric).
    pub direction: String,
    /// `"Allow"` or `"Deny"`.
    pub access: String,
    /// `"Tcp"` or `"*"`.
    pub protocol: String,
    /// Source prefixes: IPs (per-IP flavor) or one tag (tag flavor).
    pub source: Vec<String>,
    /// Destination port range: a port or `"*"`.
    pub destination_port: String,
}

/// The per-VM rule list for one enforcement target.
#[derive(Debug, Clone, Serialize)]
pub struct VmRuleList {
    /// The VM the rules program.
    pub vm: String,
    /// Its µsegment.
    pub segment: String,
    /// Ordered rules, ending in deny-all.
    pub rules: Vec<SecurityRule>,
}

fn port_str(port: u16) -> String {
    if port == ANY_PORT {
        "*".to_string()
    } else {
        port.to_string()
    }
}

fn deny_all() -> SecurityRule {
    SecurityRule {
        name: "DenyAllInbound".into(),
        priority: 4096,
        direction: "Inbound".into(),
        access: "Deny".into(),
        protocol: "*".into(),
        source: vec!["*".into()],
        destination_port: "*".into(),
    }
}

/// Allowed (peer segment, port) scopes for `segment` under `policy`.
fn scopes_for(policy: &SegmentPolicy, segment: SegmentId) -> Vec<(SegmentId, u16)> {
    let mut scopes: Vec<(SegmentId, u16)> = policy
        .rules()
        .into_iter()
        .filter_map(|r| {
            if r.a == segment {
                Some((r.b, r.port))
            } else if r.b == segment {
                Some((r.a, r.port))
            } else {
                None
            }
        })
        .collect();
    scopes.sort();
    scopes.dedup();
    scopes
}

/// Render the per-IP-unrolled ingress rule list of every internal VM.
pub fn export_ip_rules(seg: &Segmentation, policy: &SegmentPolicy) -> Vec<VmRuleList> {
    let mut out = Vec::new();
    for s in seg.segments() {
        if !s.internal {
            continue;
        }
        let scopes = scopes_for(policy, s.id);
        for &vm in &s.members {
            let mut rules = Vec::new();
            let mut priority = 1000;
            for &(peer, port) in &scopes {
                let p = seg.segment(peer);
                let source: Vec<String> =
                    p.members.iter().filter(|&&ip| ip != vm).map(|ip| format!("{ip}/32")).collect();
                if source.is_empty() {
                    continue;
                }
                rules.push(SecurityRule {
                    name: format!("Allow-{}-p{}", p.name, port_str(port)),
                    priority,
                    direction: "Inbound".into(),
                    access: "Allow".into(),
                    protocol: "Tcp".into(),
                    source,
                    destination_port: port_str(port),
                });
                priority += 10;
            }
            rules.push(deny_all());
            out.push(VmRuleList { vm: vm.to_string(), segment: s.name.clone(), rules });
        }
    }
    out
}

/// Render the tag-based ingress rule list of every internal VM: one rule
/// per (peer segment tag, port scope), identical for every member of a
/// segment — which is exactly why tags compress fleet state.
pub fn export_tag_rules(seg: &Segmentation, policy: &SegmentPolicy) -> Vec<VmRuleList> {
    let mut out = Vec::new();
    for s in seg.segments() {
        if !s.internal {
            continue;
        }
        let scopes = scopes_for(policy, s.id);
        let mut rules = Vec::new();
        let mut priority = 1000;
        for &(peer, port) in &scopes {
            rules.push(SecurityRule {
                name: format!("Allow-tag-{}-p{}", seg.segment(peer).name, port_str(port)),
                priority,
                direction: "Inbound".into(),
                access: "Allow".into(),
                protocol: "Tcp".into(),
                source: vec![format!("tag:{}", seg.segment(peer).name)],
                destination_port: port_str(port),
            });
            priority += 10;
        }
        rules.push(deny_all());
        for &vm in &s.members {
            out.push(VmRuleList {
                vm: vm.to_string(),
                segment: s.name.clone(),
                rules: rules.clone(),
            });
        }
    }
    out
}

/// Serialize rule lists as pretty JSON. Rule lists are plain data
/// structures, so serialization cannot fail in practice; the unreachable
/// `Err` arm degrades to the empty list rather than panicking.
pub fn to_json(lists: &[VmRuleList]) -> String {
    serde_json::to_string_pretty(lists).unwrap_or_else(|_| "[]".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn setup() -> (Segmentation, SegmentPolicy) {
        let seg = Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1), ip(0, 2)], true),
            ("db".into(), vec![ip(1, 1), ip(1, 2), ip(1, 3)], true),
        ]);
        let mut p = SegmentPolicy::deny_all(true);
        p.allow(SegmentId(0), SegmentId(1), 5432);
        (seg, p)
    }

    #[test]
    fn ip_rules_enumerate_peer_members() {
        let (seg, p) = setup();
        let lists = export_ip_rules(&seg, &p);
        assert_eq!(lists.len(), 5, "one list per internal VM");
        let web_vm = lists.iter().find(|l| l.vm == "10.0.0.1").unwrap();
        assert_eq!(web_vm.rules.len(), 2, "one allow + deny-all");
        assert_eq!(web_vm.rules[0].source.len(), 3, "all db members");
        assert!(web_vm.rules[0].source.contains(&"10.0.1.2/32".to_string()));
        assert_eq!(web_vm.rules[0].destination_port, "5432");
        assert_eq!(web_vm.rules.last().unwrap().access, "Deny");
        assert_eq!(web_vm.rules.last().unwrap().priority, 4096);
    }

    #[test]
    fn tag_rules_are_constant_per_segment() {
        let (seg, p) = setup();
        let lists = export_tag_rules(&seg, &p);
        let web: Vec<&VmRuleList> = lists.iter().filter(|l| l.segment == "web").collect();
        assert_eq!(web.len(), 2);
        assert_eq!(web[0].rules, web[1].rules, "same rules on every member");
        assert_eq!(web[0].rules[0].source, vec!["tag:db".to_string()]);
    }

    #[test]
    fn priorities_ascend_and_end_in_deny() {
        let (seg, mut p) = setup();
        p.allow(SegmentId(0), SegmentId(1), 5433);
        p.allow(SegmentId(0), SegmentId(0), ANY_PORT);
        let lists = export_ip_rules(&seg, &p);
        let web_vm = lists.iter().find(|l| l.vm == "10.0.0.1").unwrap();
        let prios: Vec<u32> = web_vm.rules.iter().map(|r| r.priority).collect();
        let mut sorted = prios.clone();
        sorted.sort_unstable();
        assert_eq!(prios, sorted, "rules are ordered by priority");
        assert_eq!(*prios.last().unwrap(), 4096);
    }

    #[test]
    fn self_segment_rules_exclude_self_ip() {
        let (seg, mut p) = setup();
        p.allow(SegmentId(0), SegmentId(0), 7946);
        let lists = export_ip_rules(&seg, &p);
        let web_vm = lists.iter().find(|l| l.vm == "10.0.0.1").unwrap();
        let self_rule = web_vm.rules.iter().find(|r| r.destination_port == "7946").unwrap();
        assert_eq!(self_rule.source, vec!["10.0.0.2/32".to_string()]);
    }

    #[test]
    fn json_is_valid_and_stable() {
        let (seg, p) = setup();
        let a = to_json(&export_tag_rules(&seg, &p));
        let b = to_json(&export_tag_rules(&seg, &p));
        assert_eq!(a, b);
        let parsed: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert!(parsed.as_array().unwrap().len() == 5);
    }
}
