//! Runtime policy checking over record streams.
//!
//! Once µsegments and policies exist, every connection summary can be
//! checked: traffic between segments with no allow rule — or to an address
//! in no segment at all — is a violation. Applied to a telemetry stream
//! this is a detector for exactly the attack classes the simulator injects:
//! lateral movement and port scans cross segment boundaries, exfiltration
//! and C2 beacons reach unknown external peers.

use crate::microseg::{SegmentId, Segmentation};
use crate::policy::{service_port, SegmentPolicy};
use flowlog::record::ConnSummary;
use serde::Serialize;
use std::net::Ipv4Addr;

/// Outcome of checking one record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// Policy explicitly allows this communication.
    Allowed,
    /// Segment pair has no allow rule (for this port, when port-scoped).
    DeniedPair {
        /// Segment of the reporting endpoint.
        local: SegmentId,
        /// Segment of the peer.
        remote: SegmentId,
        /// Service port of the flow.
        port: u16,
    },
    /// The peer is in no segment: an address never seen in normal operation.
    UnknownPeer {
        /// The unrecognized address.
        peer: Ipv4Addr,
    },
}

/// A flagged record.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Timestamp of the offending record.
    pub ts: u64,
    /// Reporting endpoint.
    pub local_ip: Ipv4Addr,
    /// Peer endpoint.
    pub remote_ip: Ipv4Addr,
    /// Service port.
    pub port: u16,
    /// Why it was flagged.
    pub verdict: Verdict,
    /// Bytes involved (severity signal).
    pub bytes: u64,
}

/// Checks records against a segmentation + policy.
#[derive(Debug)]
pub struct ViolationDetector {
    seg: Segmentation,
    policy: SegmentPolicy,
    checked: u64,
    flagged: u64,
}

impl ViolationDetector {
    /// New detector over a segmentation and its policy.
    pub fn new(seg: Segmentation, policy: SegmentPolicy) -> Self {
        ViolationDetector { seg, policy, checked: 0, flagged: 0 }
    }

    /// The segmentation in force.
    pub fn segmentation(&self) -> &Segmentation {
        &self.seg
    }

    /// Records checked and flagged so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.checked, self.flagged)
    }

    /// Check one record; `Some(violation)` if it breaks policy.
    pub fn check(&mut self, r: &ConnSummary) -> Option<Violation> {
        self.checked += 1;
        let port = service_port(&r.key);
        let verdict =
            match (self.seg.segment_of(r.key.local_ip), self.seg.segment_of(r.key.remote_ip)) {
                (Some(a), Some(b)) => {
                    if self.policy.allows(a, b, port) {
                        return None;
                    }
                    Verdict::DeniedPair { local: a, remote: b, port }
                }
                // The local endpoint is inside the subscription by construction
                // (its NIC produced the record); an unsegmented local address
                // can only mean a just-churned-in resource — report the peer
                // side when it is the stranger, otherwise the local address.
                (Some(_), None) => Verdict::UnknownPeer { peer: r.key.remote_ip },
                (None, _) => Verdict::UnknownPeer { peer: r.key.local_ip },
            };
        self.flagged += 1;
        Some(Violation {
            ts: r.ts,
            local_ip: r.key.local_ip,
            remote_ip: r.key.remote_ip,
            port,
            verdict,
            bytes: r.bytes_total(),
        })
    }

    /// Check a batch, returning only the violations.
    pub fn check_all<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a ConnSummary>,
    ) -> Vec<Violation> {
        records.into_iter().filter_map(|r| self.check(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowlog::record::FlowKey;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn setup() -> ViolationDetector {
        let seg = Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1), ip(0, 2)], true),
            ("db".into(), vec![ip(1, 1)], true),
            ("cache".into(), vec![ip(2, 1)], true),
        ]);
        let baseline = vec![rec(ip(0, 1), 40_000, ip(1, 1), 5432)];
        let policy = SegmentPolicy::learn(&baseline, &seg, true);
        ViolationDetector::new(seg, policy)
    }

    fn rec(l: Ipv4Addr, lp: u16, r: Ipv4Addr, rp: u16) -> ConnSummary {
        ConnSummary {
            ts: 60,
            key: FlowKey::tcp(l, lp, r, rp),
            pkts_sent: 2,
            pkts_rcvd: 2,
            bytes_sent: 500,
            bytes_rcvd: 300,
        }
    }

    #[test]
    fn allowed_traffic_passes() {
        let mut d = setup();
        assert!(d.check(&rec(ip(0, 2), 41_000, ip(1, 1), 5432)).is_none());
        assert_eq!(d.counts(), (1, 0));
    }

    #[test]
    fn cross_segment_traffic_flagged() {
        let mut d = setup();
        let v = d.check(&rec(ip(0, 1), 41_000, ip(2, 1), 6379)).expect("must flag");
        assert!(matches!(v.verdict, Verdict::DeniedPair { port: 6379, .. }));
        assert_eq!(v.bytes, 800);
    }

    #[test]
    fn wrong_port_flagged_when_port_scoped() {
        let mut d = setup();
        // web → db is allowed on 5432 only; SSH to the db is lateral movement.
        let v = d.check(&rec(ip(0, 1), 41_000, ip(1, 1), 22)).expect("must flag");
        assert!(matches!(v.verdict, Verdict::DeniedPair { port: 22, .. }));
    }

    #[test]
    fn unknown_peer_flagged() {
        let mut d = setup();
        let c2 = Ipv4Addr::new(203, 0, 113, 7);
        let v = d.check(&rec(ip(0, 1), 41_000, c2, 443)).expect("must flag");
        assert_eq!(v.verdict, Verdict::UnknownPeer { peer: c2 });
    }

    #[test]
    fn batch_check_counts() {
        let mut d = setup();
        let batch = vec![
            rec(ip(0, 1), 41_000, ip(1, 1), 5432), // ok
            rec(ip(0, 1), 41_001, ip(2, 1), 6379), // denied pair
            rec(ip(0, 1), 41_002, Ipv4Addr::new(198, 51, 100, 1), 443), // unknown
        ];
        let vs = d.check_all(&batch);
        assert_eq!(vs.len(), 2);
        assert_eq!(d.counts(), (3, 2));
    }
}
