//! µsegments: groups of same-role resources.

use crate::error::{Error, Result};
use algos::RoleInference;
use commgraph_graph::{CommGraph, NodeId};
use serde::Serialize;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Dense identifier of a µsegment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct SegmentId(pub u16);

/// One µsegment: a set of addresses playing the same inferred role.
#[derive(Debug, Clone, Serialize)]
pub struct Segment {
    /// Identifier; equals the segment's index.
    pub id: SegmentId,
    /// Display name (`"seg-3"` by default; renameable by operators).
    pub name: String,
    /// Member addresses.
    pub members: Vec<Ipv4Addr>,
    /// Whether members are inside the subscription (monitored). External
    /// peers get segments too, so policies can constrain egress, but they
    /// are not enforcement targets.
    pub internal: bool,
}

/// A complete partition of a graph's IP nodes into µsegments.
#[derive(Debug, Clone, Serialize)]
pub struct Segmentation {
    segments: Vec<Segment>,
    #[serde(skip)]
    ip_to_segment: HashMap<Ipv4Addr, SegmentId>,
}

impl Segmentation {
    /// The empty segmentation: no segments, no members. A graceful
    /// fallback when a graph/inference pair cannot be segmented — every
    /// lookup misses, so downstream policies learn nothing.
    pub fn empty() -> Self {
        Segmentation { segments: Vec::new(), ip_to_segment: HashMap::new() }
    }

    /// Build from a role inference over an IP-facet graph.
    ///
    /// `is_internal` classifies addresses (the monitored inventory, which a
    /// cloud provider always has). Nodes that are not IPs (e.g. the
    /// collapsed `Other` node) are skipped — they cannot be policy subjects.
    pub fn from_inference(
        g: &CommGraph,
        inference: &RoleInference,
        is_internal: impl Fn(Ipv4Addr) -> bool,
    ) -> Result<Self> {
        if g.facet_name() != "ip" {
            return Err(Error::WrongFacet { got: g.facet_name().to_string() });
        }
        if inference.labels.len() != g.node_count() {
            return Err(Error::LabelMismatch {
                nodes: g.node_count(),
                labels: inference.labels.len(),
            });
        }
        // Split each inferred role into an internal and an external segment
        // when it mixes both kinds; policies treat them differently.
        let mut buckets: HashMap<(usize, bool), Vec<Ipv4Addr>> = HashMap::new();
        for (idx, node) in g.nodes().iter().enumerate() {
            if let NodeId::Ip(ip) = node {
                let internal = is_internal(*ip);
                buckets.entry((inference.labels[idx], internal)).or_default().push(*ip);
            }
        }
        let mut keys: Vec<(usize, bool)> = buckets.keys().copied().collect();
        keys.sort_by_key(|&(role, internal)| (role, !internal));
        let mut segments = Vec::with_capacity(keys.len());
        let mut ip_to_segment = HashMap::new();
        for (role, internal) in keys {
            let id = SegmentId(segments.len() as u16);
            let Some(mut members) = buckets.remove(&(role, internal)) else {
                continue; // key came from the map; unreachable, but not worth a panic
            };
            members.sort();
            for ip in &members {
                ip_to_segment.insert(*ip, id);
            }
            segments.push(Segment {
                id,
                name: format!("seg-{role}{}", if internal { "" } else { "-ext" }),
                members,
                internal,
            });
        }
        Ok(Segmentation { segments, ip_to_segment })
    }

    /// Build directly from explicit member lists (tests, manual labeling).
    pub fn from_members(groups: Vec<(String, Vec<Ipv4Addr>, bool)>) -> Self {
        let mut segments = Vec::with_capacity(groups.len());
        let mut ip_to_segment = HashMap::new();
        for (i, (name, mut members, internal)) in groups.into_iter().enumerate() {
            let id = SegmentId(i as u16);
            members.sort();
            for ip in &members {
                ip_to_segment.insert(*ip, id);
            }
            segments.push(Segment { id, name, members, internal });
        }
        Segmentation { segments, ip_to_segment }
    }

    /// All segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the segmentation has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The segment an address belongs to, if any.
    pub fn segment_of(&self, ip: Ipv4Addr) -> Option<SegmentId> {
        self.ip_to_segment.get(&ip).copied()
    }

    /// A segment by id.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.0 as usize]
    }

    /// Total member count across internal segments — the enforcement scope.
    pub fn internal_members(&self) -> usize {
        self.segments.iter().filter(|s| s.internal).map(|s| s.members.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commgraph_graph::EdgeStats;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn graph_and_inference() -> (CommGraph, RoleInference) {
        let mut edges = HashMap::new();
        let st = EdgeStats { bytes_fwd: 100, conns: 1, ..Default::default() };
        edges.insert((NodeId::Ip(ip(0, 1)), NodeId::Ip(ip(1, 1))), st);
        edges.insert((NodeId::Ip(ip(0, 2)), NodeId::Ip(ip(1, 1))), st);
        let g = CommGraph::from_edge_map("ip", 0, 3600, edges);
        // Nodes sort: 10.0.0.1, 10.0.0.2, 10.0.1.1 → roles 0, 0, 1.
        let inference = RoleInference {
            labels: vec![0, 0, 1],
            n_roles: 2,
            method: "test".into(),
            clustering_modularity: 0.0,
        };
        (g, inference)
    }

    #[test]
    fn builds_segments_from_roles() {
        let (g, inf) = graph_and_inference();
        let s = Segmentation::from_inference(&g, &inf, |_| true).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.segment_of(ip(0, 1)), s.segment_of(ip(0, 2)));
        assert_ne!(s.segment_of(ip(0, 1)), s.segment_of(ip(1, 1)));
        assert_eq!(s.internal_members(), 3);
    }

    #[test]
    fn splits_internal_and_external_members_of_one_role() {
        let (g, inf) = graph_and_inference();
        let s = Segmentation::from_inference(&g, &inf, |ip| ip.octets()[3] == 1).unwrap();
        // Role 0 has members .1 (internal) and .2 (external) → two segments.
        assert_eq!(s.len(), 3);
        assert_ne!(s.segment_of(ip(0, 1)), s.segment_of(ip(0, 2)));
        let ext = s.segment(s.segment_of(ip(0, 2)).unwrap());
        assert!(!ext.internal);
        assert!(ext.name.ends_with("-ext"));
    }

    #[test]
    fn rejects_wrong_facet() {
        let g = CommGraph::from_edge_map("ip-port", 0, 60, HashMap::new());
        let inf = RoleInference {
            labels: vec![],
            n_roles: 0,
            method: "t".into(),
            clustering_modularity: 0.0,
        };
        assert!(matches!(
            Segmentation::from_inference(&g, &inf, |_| true),
            Err(Error::WrongFacet { .. })
        ));
    }

    #[test]
    fn rejects_label_mismatch() {
        let (g, mut inf) = graph_and_inference();
        inf.labels.pop();
        assert!(matches!(
            Segmentation::from_inference(&g, &inf, |_| true),
            Err(Error::LabelMismatch { .. })
        ));
    }

    #[test]
    fn from_members_round_trips() {
        let s = Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1), ip(0, 2)], true),
            ("clients".into(), vec![ip(9, 9)], false),
        ]);
        assert_eq!(s.segment(SegmentId(0)).name, "web");
        assert_eq!(s.segment_of(ip(9, 9)), Some(SegmentId(1)));
        assert_eq!(s.segment_of(ip(5, 5)), None);
        assert_eq!(s.internal_members(), 2);
    }

    #[test]
    fn members_are_sorted() {
        let s = Segmentation::from_members(vec![(
            "w".into(),
            vec![ip(0, 9), ip(0, 1), ip(0, 5)],
            true,
        )]);
        let m = &s.segment(SegmentId(0)).members;
        assert!(m.windows(2).all(|w| w[0] < w[1]));
    }
}
