//! Blast-radius measurement.
//!
//! The point of micro-segmentation: "the blast radius of breaching a
//! resource reduces to only those that the resource must communicate with
//! during normal operation." This module quantifies that — the number of
//! internal resources an attacker controlling one address can reach,
//! unsegmented (everything) versus under a policy (direct peers, or the
//! transitive closure for multi-hop attackers).

use crate::microseg::{SegmentId, Segmentation};
use crate::policy::SegmentPolicy;
use serde::Serialize;
use std::collections::{BTreeSet, VecDeque};
use std::net::Ipv4Addr;

/// Blast radius of one breached address.
#[derive(Debug, Clone, Serialize)]
pub struct BlastRadius {
    /// The breached address.
    pub breached: Ipv4Addr,
    /// Internal resources reachable with no segmentation (all of them,
    /// minus the breached resource itself).
    pub unsegmented: usize,
    /// Internal resources directly reachable under the policy.
    pub direct: usize,
    /// Internal resources reachable via multi-hop pivoting (transitive
    /// closure of the segment policy graph).
    pub transitive: usize,
    /// `direct / unsegmented` — the headline reduction factor.
    pub direct_fraction: f64,
}

/// Compute the blast radius of `breached` under `(seg, policy)`.
///
/// Counts only internal resources (external peers are not enforcement
/// targets). Returns `None` when the address is not in the segmentation.
pub fn blast_radius(
    seg: &Segmentation,
    policy: &SegmentPolicy,
    breached: Ipv4Addr,
) -> Option<BlastRadius> {
    let home = seg.segment_of(breached)?;
    let total_internal = seg.internal_members();
    let unsegmented = total_internal.saturating_sub(1);

    let count_members = |ids: &BTreeSet<SegmentId>| -> usize {
        let mut n = 0usize;
        for &id in ids {
            let s = seg.segment(id);
            if !s.internal {
                continue;
            }
            n += s.members.len();
            if id == home {
                n -= 1; // don't count the breached resource itself
            }
        }
        n
    };

    // Direct: segments reachable in one hop (own segment counts only if a
    // self-rule exists — replicas of a role often do not talk to peers).
    let direct_segments: BTreeSet<SegmentId> = policy.reachable_from(home).into_iter().collect();
    let direct = count_members(&direct_segments);

    // Transitive: BFS over the segment-level reachability graph.
    let mut visited: BTreeSet<SegmentId> = BTreeSet::new();
    let mut queue: VecDeque<SegmentId> = VecDeque::new();
    queue.push_back(home);
    while let Some(s) = queue.pop_front() {
        for next in policy.reachable_from(s) {
            if visited.insert(next) {
                queue.push_back(next);
            }
        }
    }
    let transitive = count_members(&visited);

    Some(BlastRadius {
        breached,
        unsegmented,
        direct,
        transitive,
        direct_fraction: if unsegmented == 0 { 0.0 } else { direct as f64 / unsegmented as f64 },
    })
}

/// Fleet-wide blast summary: the mean direct fraction across every internal
/// resource — the number the paper's µsegmentation pitch is about.
#[derive(Debug, Clone, Serialize)]
pub struct FleetBlastReport {
    /// Number of internal resources assessed.
    pub resources: usize,
    /// Mean direct-reachable count.
    pub mean_direct: f64,
    /// Largest direct-reachable count (worst resource to lose).
    pub max_direct: usize,
    /// Mean `direct / unsegmented` fraction.
    pub mean_direct_fraction: f64,
    /// Mean transitive-reachable count.
    pub mean_transitive: f64,
}

/// Assess every internal member of the segmentation.
pub fn fleet_blast_report(seg: &Segmentation, policy: &SegmentPolicy) -> FleetBlastReport {
    let mut n = 0usize;
    let (mut sum_direct, mut sum_frac, mut sum_trans) = (0f64, 0f64, 0f64);
    let mut max_direct = 0usize;
    for s in seg.segments() {
        if !s.internal {
            continue;
        }
        for &ip in &s.members {
            if let Some(b) = blast_radius(seg, policy, ip) {
                n += 1;
                sum_direct += b.direct as f64;
                sum_frac += b.direct_fraction;
                sum_trans += b.transitive as f64;
                max_direct = max_direct.max(b.direct);
            }
        }
    }
    let d = n.max(1) as f64;
    FleetBlastReport {
        resources: n,
        mean_direct: sum_direct / d,
        max_direct,
        mean_direct_fraction: sum_frac / d,
        mean_transitive: sum_trans / d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ANY_PORT;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    /// web(3) → api(4) → db(2); metrics(1) isolated.
    fn setup() -> (Segmentation, SegmentPolicy) {
        let seg = Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1), ip(0, 2), ip(0, 3)], true),
            ("api".into(), vec![ip(1, 1), ip(1, 2), ip(1, 3), ip(1, 4)], true),
            ("db".into(), vec![ip(2, 1), ip(2, 2)], true),
            ("metrics".into(), vec![ip(3, 1)], true),
        ]);
        let mut p = SegmentPolicy::deny_all(false);
        p.allow(SegmentId(0), SegmentId(1), ANY_PORT);
        p.allow(SegmentId(1), SegmentId(2), ANY_PORT);
        (seg, p)
    }

    #[test]
    fn direct_radius_is_allowed_peers_only() {
        let (seg, p) = setup();
        let b = blast_radius(&seg, &p, ip(0, 1)).unwrap();
        assert_eq!(b.unsegmented, 9, "9 other internal resources");
        assert_eq!(b.direct, 4, "web reaches only the 4 api replicas");
        assert!((b.direct_fraction - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn transitive_radius_follows_pivots() {
        let (seg, p) = setup();
        let b = blast_radius(&seg, &p, ip(0, 1)).unwrap();
        // web → api → db and, via the BFS revisiting home, web peers too:
        // api can reach web, so transitive includes web's other replicas.
        assert_eq!(b.transitive, 2 + 4 + 2, "web peers + api + db");
        assert!(b.transitive >= b.direct);
    }

    #[test]
    fn isolated_segment_has_zero_radius() {
        let (seg, p) = setup();
        let b = blast_radius(&seg, &p, ip(3, 1)).unwrap();
        assert_eq!(b.direct, 0);
        assert_eq!(b.transitive, 0);
        assert_eq!(b.direct_fraction, 0.0);
    }

    #[test]
    fn unknown_ip_yields_none() {
        let (seg, p) = setup();
        assert!(blast_radius(&seg, &p, ip(9, 9)).is_none());
    }

    #[test]
    fn db_breach_reaches_api_only_directly() {
        let (seg, p) = setup();
        let b = blast_radius(&seg, &p, ip(2, 1)).unwrap();
        assert_eq!(b.direct, 4);
        // Transitive: api → web as well, plus the other db replica via
        // api? No db self-rule, but db is reachable from api, so BFS
        // includes segment db (the other replica).
        assert_eq!(b.transitive, 4 + 3 + 1);
    }

    #[test]
    fn fleet_report_aggregates() {
        let (seg, p) = setup();
        let r = fleet_blast_report(&seg, &p);
        assert_eq!(r.resources, 10);
        assert!(r.mean_direct_fraction < 0.6, "segmentation shrinks reach");
        assert_eq!(r.max_direct, 5, "api replicas reach web(3) + db(2)");
        assert!(r.mean_transitive >= r.mean_direct);
    }

    #[test]
    fn external_members_do_not_count() {
        let seg = Segmentation::from_members(vec![
            ("web".into(), vec![ip(0, 1)], true),
            ("clients".into(), vec![ip(9, 1), ip(9, 2)], false),
        ]);
        let mut p = SegmentPolicy::deny_all(false);
        p.allow(SegmentId(0), SegmentId(1), ANY_PORT);
        let b = blast_radius(&seg, &p, ip(0, 1)).unwrap();
        assert_eq!(b.unsegmented, 0, "no other internal resources");
        assert_eq!(b.direct, 0, "external clients are not blast targets");
    }
}
