//! Policy compilation: the rule-explosion problem and tag-based enforcement.
//!
//! "Clouds today limit the number of rules that can execute on the path in
//! and out of each VM (e.g., no more than 10³ rules at a VM) and naïvely
//! unrolling reachability rules between µsegments into reachability rules
//! between IP addresses … can lead to rule explosion. Adding dynamic tags
//! into packets and extending the network virtualization layer to enforce
//! policies on tags is a potential solution."
//!
//! [`compile`] quantifies both: for every internal VM, the number of per-IP
//! rules naive unrolling needs (one per allowed peer address × port scope),
//! versus the number of tag rules (one per allowed peer *segment* × port
//! scope). The report drives the paper's rule-explosion experiment.

use crate::microseg::Segmentation;
use crate::policy::SegmentPolicy;
use serde::Serialize;
use std::net::Ipv4Addr;

/// The per-VM rule budget the paper cites for today's clouds.
pub const PAPER_VM_RULE_LIMIT: usize = 1000;

/// Rule counts for one VM.
#[derive(Debug, Clone, Serialize)]
pub struct VmRuleCount {
    /// The VM.
    pub ip: Ipv4Addr,
    /// Rules needed when unrolling to per-IP allow rules.
    pub ip_rules: usize,
    /// Rules needed with tag-based enforcement.
    pub tag_rules: usize,
}

/// Compilation outcome across all internal VMs.
#[derive(Debug, Clone, Serialize)]
pub struct CompilationReport {
    /// Per-VM counts, sorted by descending IP-rule count.
    pub per_vm: Vec<VmRuleCount>,
    /// Total per-IP rules across the fleet.
    pub total_ip_rules: usize,
    /// Total tag rules across the fleet.
    pub total_tag_rules: usize,
    /// Largest per-VM IP-rule count.
    pub max_ip_rules: usize,
    /// Largest per-VM tag-rule count.
    pub max_tag_rules: usize,
    /// The rule budget used for the overflow count.
    pub vm_rule_limit: usize,
    /// VMs whose naive unrolling exceeds the budget.
    pub vms_over_limit_ip: usize,
    /// VMs whose tag compilation exceeds the budget.
    pub vms_over_limit_tag: usize,
}

/// Compile `policy` for every internal VM of `seg` and count rules.
///
/// Per-IP unrolling: a VM in segment *s* needs one rule per (allowed peer
/// segment *t*, member of *t*, port scope). Tag enforcement: one rule per
/// (allowed peer segment, port scope).
pub fn compile(
    seg: &Segmentation,
    policy: &SegmentPolicy,
    vm_rule_limit: usize,
) -> CompilationReport {
    assert!(vm_rule_limit > 0, "rule limit must be positive");
    // Pre-compute, per segment: allowed (peer segment, port-scope count).
    // A rule (s, t, p1) and (s, t, p2) are separate scopes.
    let mut per_segment: Vec<Vec<(usize, usize)>> = vec![Vec::new(); seg.len()];
    for rule in policy.rules() {
        let (a, b) = (rule.a.0 as usize, rule.b.0 as usize);
        per_segment[a].push((b, 1));
        if a != b {
            per_segment[b].push((a, 1));
        }
    }

    let mut per_vm = Vec::new();
    let (mut total_ip, mut total_tag) = (0usize, 0usize);
    for s in seg.segments() {
        if !s.internal {
            continue;
        }
        let scopes = &per_segment[s.id.0 as usize];
        // Tag rules: one per (peer segment, port scope) entry.
        let tag_rules = scopes.len();
        // IP rules: peer segment member count per scope. Self-segment rules
        // exclude the VM itself.
        let ip_rules: usize = scopes
            .iter()
            .map(|&(peer, scope_count)| {
                let members = seg.segments()[peer].members.len();
                let members =
                    if peer == s.id.0 as usize { members.saturating_sub(1) } else { members };
                members * scope_count
            })
            .sum();
        for &ip in &s.members {
            per_vm.push(VmRuleCount { ip, ip_rules, tag_rules });
            total_ip += ip_rules;
            total_tag += tag_rules;
        }
    }
    per_vm.sort_by_key(|v| std::cmp::Reverse(v.ip_rules));
    let max_ip_rules = per_vm.first().map_or(0, |v| v.ip_rules);
    let max_tag_rules = per_vm.iter().map(|v| v.tag_rules).max().unwrap_or(0);
    let vms_over_limit_ip = per_vm.iter().filter(|v| v.ip_rules > vm_rule_limit).count();
    let vms_over_limit_tag = per_vm.iter().filter(|v| v.tag_rules > vm_rule_limit).count();
    CompilationReport {
        per_vm,
        total_ip_rules: total_ip,
        total_tag_rules: total_tag,
        max_ip_rules,
        max_tag_rules,
        vm_rule_limit,
        vms_over_limit_ip,
        vms_over_limit_tag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microseg::SegmentId;
    use crate::policy::ANY_PORT;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn many(a: u8, n: u8) -> Vec<Ipv4Addr> {
        (1..=n).map(|b| ip(a, b)).collect()
    }

    #[test]
    fn ip_rules_scale_with_peer_members_tag_rules_do_not() {
        let seg = Segmentation::from_members(vec![
            ("web".into(), many(0, 10), true),
            ("api".into(), many(1, 200), true),
        ]);
        let mut p = SegmentPolicy::deny_all(false);
        p.allow(SegmentId(0), SegmentId(1), ANY_PORT);
        let report = compile(&seg, &p, 1000);
        let web_vm = report.per_vm.iter().find(|v| v.ip == ip(0, 1)).unwrap();
        assert_eq!(web_vm.ip_rules, 200, "one rule per api replica");
        assert_eq!(web_vm.tag_rules, 1, "one rule per peer segment");
        let api_vm = report.per_vm.iter().find(|v| v.ip == ip(1, 1)).unwrap();
        assert_eq!(api_vm.ip_rules, 10);
    }

    #[test]
    fn self_segment_rules_exclude_self() {
        let seg = Segmentation::from_members(vec![("mesh".into(), many(0, 5), true)]);
        let mut p = SegmentPolicy::deny_all(false);
        p.allow(SegmentId(0), SegmentId(0), ANY_PORT);
        let report = compile(&seg, &p, 1000);
        assert_eq!(report.per_vm[0].ip_rules, 4, "peers only, not oneself");
    }

    #[test]
    fn overflow_detection() {
        let seg = Segmentation::from_members(vec![
            ("web".into(), many(0, 2), true),
            (
                "big".into(),
                (0..=250u16)
                    .map(|i| Ipv4Addr::new(10, 1, (i / 250) as u8, (i % 250) as u8))
                    .collect(),
                true,
            ),
        ]);
        let mut p = SegmentPolicy::deny_all(false);
        p.allow(SegmentId(0), SegmentId(1), ANY_PORT);
        let report = compile(&seg, &p, 100);
        // Each web VM needs 251 rules > 100; big VMs need only 2.
        assert_eq!(report.vms_over_limit_ip, 2);
        assert_eq!(report.vms_over_limit_tag, 0, "tags never overflow here");
        assert_eq!(report.max_ip_rules, 251);
    }

    #[test]
    fn port_scopes_multiply_ip_rules() {
        let seg = Segmentation::from_members(vec![
            ("web".into(), many(0, 1), true),
            ("api".into(), many(1, 50), true),
        ]);
        let mut p = SegmentPolicy::deny_all(true);
        p.allow(SegmentId(0), SegmentId(1), 443);
        p.allow(SegmentId(0), SegmentId(1), 8080);
        let report = compile(&seg, &p, 1000);
        let web_vm = report.per_vm.iter().find(|v| v.ip == ip(0, 1)).unwrap();
        assert_eq!(web_vm.ip_rules, 100, "two port scopes × 50 peers");
        assert_eq!(web_vm.tag_rules, 2);
    }

    #[test]
    fn external_segments_are_not_compiled() {
        let seg = Segmentation::from_members(vec![
            ("web".into(), many(0, 3), true),
            ("clients".into(), many(9, 100), false),
        ]);
        let mut p = SegmentPolicy::deny_all(false);
        p.allow(SegmentId(0), SegmentId(1), ANY_PORT);
        let report = compile(&seg, &p, 1000);
        assert_eq!(report.per_vm.len(), 3, "only internal VMs enforce");
        // But web VMs still carry rules admitting the external segment.
        assert_eq!(report.per_vm[0].ip_rules, 100);
    }

    #[test]
    fn empty_policy_compiles_to_zero_rules() {
        let seg = Segmentation::from_members(vec![("web".into(), many(0, 3), true)]);
        let p = SegmentPolicy::deny_all(false);
        let report = compile(&seg, &p, 1000);
        assert_eq!(report.total_ip_rules, 0);
        assert_eq!(report.max_ip_rules, 0);
        assert_eq!(report.vms_over_limit_ip, 0);
    }
}
