//! Dense row-major matrix.

use crate::error::{Error, Result};
use crate::par::{self, Parallelism};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in &rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data; the parallel kernels split it into
    /// disjoint row tiles.
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A single row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_with(rhs, Parallelism::serial())
    }

    /// Matrix product `self * rhs`, output rows partitioned over workers.
    ///
    /// Every output row is computed with the same ikj loop as the serial
    /// product, so the result is bit-for-bit identical at any worker count.
    pub fn matmul_with(&self, rhs: &Matrix, parallelism: Parallelism) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        if self.rows == 0 || rhs.cols == 0 {
            return Ok(out);
        }
        let cols = rhs.cols;
        let band = par::tile_size(self.rows, parallelism);
        let tasks: Vec<(usize, &mut [f64])> = out
            .data
            .chunks_mut(cols * band)
            .enumerate()
            .map(|(t, chunk)| (t * band, chunk))
            .collect();
        par::for_each_task(parallelism, tasks, |(first_row, chunk)| {
            // ikj loop order per row: streams over rhs rows, cache-friendly.
            for (r, orow) in chunk.chunks_mut(cols).enumerate() {
                let i = first_row + r;
                for k in 0..self.cols {
                    let a = self[(i, k)];
                    if a == 0.0 {
                        continue;
                    }
                    for (o, &b) in orow.iter_mut().zip(rhs.row(k)) {
                        *o += a * b;
                    }
                }
            }
        });
        Ok(out)
    }

    /// Elementwise subtraction `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if (self.rows, self.cols) != (rhs.rows, rhs.cols) {
            return Err(Error::ShapeMismatch {
                op: "sub",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Sum of absolute values of all entries (entrywise L1 norm).
    pub fn abs_sum(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute difference `|self[i,j] - self[j,i]|`; 0 for a
    /// perfectly symmetric matrix. Square matrices only.
    pub fn max_asymmetry(&self) -> Result<f64> {
        if self.rows != self.cols {
            return Err(Error::InvalidArg(format!(
                "symmetry is defined for square matrices, got {}x{}",
                self.rows, self.cols
            )));
        }
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        Ok(worst)
    }

    /// Check symmetry within `tol` (absolute).
    pub fn require_symmetric(&self, tol: f64) -> Result<()> {
        let a = self.max_asymmetry()?;
        if a > tol {
            return Err(Error::NotSymmetric { max_asymmetry: a });
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn identity_multiplication() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(vec![vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(vec![vec![58.0, 64.0], vec![139.0, 154.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(Error::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(vec![vec![3.0, -4.0]]);
        assert_eq!(m.abs_sum(), 7.0);
        assert_eq!(m.frobenius(), 5.0);
    }

    #[test]
    fn symmetry_check() {
        let sym = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 5.0]]);
        sym.require_symmetric(1e-12).unwrap();
        let asym = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.5, 5.0]]);
        assert!(matches!(asym.require_symmetric(1e-12), Err(Error::NotSymmetric { .. })));
        assert!(Matrix::zeros(2, 3).max_asymmetry().is_err());
    }

    #[test]
    fn matmul_with_is_worker_count_invariant() {
        let n = 17;
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f64 / 16_777_216.0
        };
        let a = Matrix::from_rows((0..n).map(|_| (0..n).map(|_| next()).collect()).collect());
        let b = Matrix::from_rows((0..n).map(|_| (0..n).map(|_| next()).collect()).collect());
        let serial = a.matmul(&b).unwrap();
        for workers in [2, 3, 8] {
            let p = a.matmul_with(&b, Parallelism::new(workers)).unwrap();
            assert_eq!(p, serial, "bitwise equality at {workers} workers");
        }
    }

    #[test]
    fn sub_elementwise() {
        let a = Matrix::from_rows(vec![vec![5.0, 7.0]]);
        let b = Matrix::from_rows(vec![vec![1.0, 2.0]]);
        assert_eq!(a.sub(&b).unwrap(), Matrix::from_rows(vec![vec![4.0, 5.0]]));
        assert!(a.sub(&Matrix::zeros(2, 2)).is_err());
    }
}
