//! Dense linear algebra for communication-matrix analysis, from scratch.
//!
//! The paper's succinct-summaries analysis (§2.2) rests on one observation:
//! cloud communication matrices are exceedingly low-rank, so a handful of
//! eigenvectors reconstructs them almost perfectly (k = 25 of n > 500 gives
//! < 5% error on the K8s PaaS cluster). This crate provides everything that
//! analysis needs without an external linear-algebra dependency:
//!
//! * [`matrix`] — a dense row-major matrix with the handful of operations
//!   the analyses use (multiply, transpose, norms).
//! * [`eigen`] — cyclic Jacobi eigendecomposition for symmetric matrices:
//!   simple, robust, and exact enough at the few-hundred-node scale of
//!   collapsed IP graphs.
//! * [`pca`] — the paper's sparse transform `M_k = E_k D_k E_kᵀ` and its
//!   `ReconErr` metric.
//! * [`ica`] — FastICA (the paper's footnote 6 alternative), implemented
//!   with whitening + deflationary fixed-point iteration.
//! * [`quantize`] — the log-scale normalization behind the Figure 4/5
//!   heatmaps.
//! * [`par`] — the `std`-only data-parallel scheduler (scoped-thread tile /
//!   task work queues) and the [`Parallelism`] knob the dense kernels share.
//! * [`sym`] — [`SymMatrix`], a flat packed-upper-triangular symmetric
//!   matrix whose contiguous rows give the scheduler disjoint `&mut` tiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eigen;
pub mod error;
pub mod ica;
pub mod matrix;
pub mod par;
pub mod pca;
pub mod quantize;
pub mod sym;

pub use eigen::{
    eigen_symmetric, eigen_symmetric_warm_with, eigen_symmetric_with, EigenDecomposition,
};
pub use error::{Error, Result};
pub use ica::{fast_ica, IcaDecomposition};
pub use matrix::Matrix;
pub use par::Parallelism;
pub use pca::{
    pca_sweep, pca_sweep_warm_with, pca_sweep_with, recon_err, sparse_transform, PcaSummary,
};
pub use sym::SymMatrix;
