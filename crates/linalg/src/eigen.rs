//! Cyclic Jacobi eigendecomposition for symmetric matrices.
//!
//! Jacobi rotation is the right tool here: communication matrices are
//! symmetric, a few hundred rows after heavy-hitter collapsing, and the
//! analyses need *all* eigenpairs (to sweep k in the reconstruction-error
//! experiment). Jacobi is unconditionally stable, needs no pivoting or
//! shifts, and converges quadratically once off-diagonal mass is small.

use crate::error::{Error, Result};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `M = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted by descending absolute value.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix *columns*, in the same order.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// Reconstruct the original matrix from the top `k` eigenpairs.
    pub fn reconstruct(&self, k: usize) -> Result<Matrix> {
        let n = self.values.len();
        if k > n {
            return Err(Error::InvalidArg(format!("k={k} exceeds dimension {n}")));
        }
        // M_k = Σ_{c<k} λ_c v_c v_cᵀ, accumulated directly: O(k n²).
        let mut out = Matrix::zeros(n, n);
        for c in 0..k {
            let lambda = self.values[c];
            if lambda == 0.0 {
                continue;
            }
            for i in 0..n {
                let vi = self.vectors[(i, c)] * lambda;
                if vi == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += vi * self.vectors[(j, c)];
                }
            }
        }
        Ok(out)
    }
}

/// Decompose a symmetric matrix with the cyclic Jacobi method.
///
/// `tol` bounds the final off-diagonal Frobenius mass relative to the
/// matrix's own scale; `1e-10` is a good default. Fails with
/// [`Error::NotSymmetric`] if the input is meaningfully asymmetric and with
/// [`Error::NoConvergence`] after 100 sweeps (which, for symmetric input,
/// does not happen in practice).
pub fn eigen_symmetric(m: &Matrix, tol: f64) -> Result<EigenDecomposition> {
    let n = m.rows();
    if n != m.cols() {
        return Err(Error::InvalidArg(format!(
            "eigendecomposition needs a square matrix, got {}x{}",
            n,
            m.cols()
        )));
    }
    // Tolerate tiny float asymmetry from accumulation, relative to scale.
    let scale = m.frobenius().max(1.0);
    m.require_symmetric(scale * 1e-9)?;

    let mut a = m.clone();
    let mut v = Matrix::identity(n);
    let threshold = tol * scale;

    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&a);
        if off <= threshold {
            return Ok(sorted_decomposition(a, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= threshold / (n as f64) {
                    continue;
                }
                let (c, s) = rotation(a[(p, p)], a[(q, q)], apq);
                apply_rotation(&mut a, &mut v, p, q, c, s);
            }
        }
    }
    Err(Error::NoConvergence { algorithm: "jacobi", iterations: MAX_SWEEPS })
}

/// Frobenius norm of the strictly upper triangle.
fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += a[(i, j)] * a[(i, j)];
        }
    }
    (2.0 * sum).sqrt()
}

/// Jacobi rotation (c, s) that annihilates `a_pq`.
fn rotation(app: f64, aqq: f64, apq: f64) -> (f64, f64) {
    let theta = (aqq - app) / (2.0 * apq);
    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
    let c = 1.0 / (t * t + 1.0).sqrt();
    (c, t * c)
}

/// Apply the (p, q) rotation to `a` (two-sided) and accumulate into `v`.
fn apply_rotation(a: &mut Matrix, v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = a.rows();
    for i in 0..n {
        let (aip, aiq) = (a[(i, p)], a[(i, q)]);
        a[(i, p)] = c * aip - s * aiq;
        a[(i, q)] = s * aip + c * aiq;
    }
    for j in 0..n {
        let (apj, aqj) = (a[(p, j)], a[(q, j)]);
        a[(p, j)] = c * apj - s * aqj;
        a[(q, j)] = s * apj + c * aqj;
    }
    for i in 0..n {
        let (vip, viq) = (v[(i, p)], v[(i, q)]);
        v[(i, p)] = c * vip - s * viq;
        v[(i, q)] = s * vip + c * viq;
    }
}

/// Extract the diagonal, sort eigenpairs by |λ| descending.
fn sorted_decomposition(a: Matrix, v: Matrix) -> EigenDecomposition {
    let n = a.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a[(j, j)].abs().partial_cmp(&a[(i, i)].abs()).expect("eigenvalues are finite")
    });
    let values: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors[(row, new_col)] = v[(row, old_col)];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let m =
            Matrix::from_rows(vec![vec![3.0, 0.0, 0.0], vec![0.0, -5.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        assert!(close(d.values[0], -5.0, 1e-9), "sorted by |λ|: {:?}", d.values);
        assert!(close(d.values[1], 3.0, 1e-9));
        assert!(close(d.values[2], 1.0, 1e-9));
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        assert!(close(d.values[0], 3.0, 1e-9));
        assert!(close(d.values[1], 1.0, 1e-9));
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = (d.vectors[(0, 0)], d.vectors[(1, 0)]);
        assert!(close(v0.0.abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-9));
        assert!(close(v0.0, v0.1, 1e-9));
    }

    #[test]
    fn full_reconstruction_recovers_matrix() {
        let m = Matrix::from_rows(vec![
            vec![4.0, 1.0, 2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.5],
            vec![2.0, 0.0, 5.0, 1.0],
            vec![0.5, 1.5, 1.0, 2.0],
        ]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        let r = d.reconstruct(4).unwrap();
        assert!(m.sub(&r).unwrap().abs_sum() < 1e-8, "M_n must equal M");
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m =
            Matrix::from_rows(vec![vec![4.0, 1.0, 2.0], vec![1.0, 3.0, 0.0], vec![2.0, 0.0, 5.0]]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        let vtv = d.vectors.transpose().matmul(&d.vectors).unwrap();
        let i = Matrix::identity(3);
        assert!(vtv.sub(&i).unwrap().abs_sum() < 1e-9);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let m =
            Matrix::from_rows(vec![vec![6.0, 2.0, 1.0], vec![2.0, 3.0, 1.0], vec![1.0, 1.0, 1.0]]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        for c in 0..3 {
            for i in 0..3 {
                let mv: f64 = (0..3).map(|j| m[(i, j)] * d.vectors[(j, c)]).sum();
                assert!(
                    close(mv, d.values[c] * d.vectors[(i, c)], 1e-8),
                    "M v = λ v violated at column {c}"
                );
            }
        }
    }

    #[test]
    fn low_rank_matrix_truncates_exactly() {
        // Rank-1: outer product of u = (1,2,3).
        let u = [1.0, 2.0, 3.0];
        let mut rows = Vec::new();
        for i in 0..3 {
            rows.push((0..3).map(|j| u[i] * u[j]).collect());
        }
        let m = Matrix::from_rows(rows);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        let r1 = d.reconstruct(1).unwrap();
        assert!(m.sub(&r1).unwrap().abs_sum() < 1e-8, "rank-1 needs only k=1");
        assert!(d.values[1].abs() < 1e-9);
    }

    #[test]
    fn rejects_asymmetric_input() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, 1.0]]);
        assert!(matches!(eigen_symmetric(&m, 1e-10), Err(Error::NotSymmetric { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(eigen_symmetric(&m, 1e-10).is_err());
    }

    #[test]
    fn reconstruct_k_bounds_checked() {
        let m = Matrix::identity(2);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        assert!(d.reconstruct(3).is_err());
        assert!(d.reconstruct(0).unwrap().abs_sum() == 0.0);
    }

    #[test]
    fn moderate_size_random_symmetric_converges() {
        // Deterministic pseudo-random symmetric 40x40.
        let n = 40;
        let mut m = Matrix::zeros(n, n);
        let mut state = 0x12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let d = eigen_symmetric(&m, 1e-10).unwrap();
        let r = d.reconstruct(n).unwrap();
        let rel = m.sub(&r).unwrap().frobenius() / m.frobenius();
        assert!(rel < 1e-8, "relative reconstruction error {rel}");
    }
}
