//! Cyclic Jacobi eigendecomposition for symmetric matrices.
//!
//! Jacobi rotation is the right tool here: communication matrices are
//! symmetric, a few hundred rows after heavy-hitter collapsing, and the
//! analyses need *all* eigenpairs (to sweep k in the reconstruction-error
//! experiment). Jacobi is unconditionally stable, needs no pivoting or
//! shifts, and converges quadratically once off-diagonal mass is small.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::par::{self, Parallelism};

/// Result of a symmetric eigendecomposition: `M = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted by descending absolute value.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix *columns*, in the same order.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// Reconstruct the original matrix from the top `k` eigenpairs.
    pub fn reconstruct(&self, k: usize) -> Result<Matrix> {
        self.reconstruct_with(k, Parallelism::serial())
    }

    /// Rank-k reconstruction with output rows partitioned over workers.
    ///
    /// Row `i` of `M_k = Σ_{c<k} λ_c v_c v_cᵀ` depends only on the
    /// decomposition, so rows parallelize freely; each element accumulates
    /// its `k` terms in the same ascending-`c` order as the serial loop,
    /// making the result bit-for-bit identical at any worker count.
    pub fn reconstruct_with(&self, k: usize, parallelism: Parallelism) -> Result<Matrix> {
        let n = self.values.len();
        if k > n {
            return Err(Error::InvalidArg(format!("k={k} exceeds dimension {n}")));
        }
        let mut out = Matrix::zeros(n, n);
        if n == 0 {
            return Ok(out);
        }
        let band = par::tile_size(n, parallelism);
        let tasks: Vec<(usize, &mut [f64])> = out
            .data_mut()
            .chunks_mut(n * band)
            .enumerate()
            .map(|(t, chunk)| (t * band, chunk))
            .collect();
        par::for_each_task(parallelism, tasks, |(first_row, chunk)| {
            for (r, orow) in chunk.chunks_mut(n).enumerate() {
                let i = first_row + r;
                for c in 0..k {
                    let lambda = self.values[c];
                    if lambda == 0.0 {
                        continue;
                    }
                    let vi = self.vectors[(i, c)] * lambda;
                    if vi == 0.0 {
                        continue;
                    }
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o += vi * self.vectors[(j, c)];
                    }
                }
            }
        });
        Ok(out)
    }
}

/// Decompose a symmetric matrix with the cyclic Jacobi method.
///
/// `tol` bounds the final off-diagonal Frobenius mass relative to the
/// matrix's own scale; `1e-10` is a good default. Fails with
/// [`Error::NotSymmetric`] if the input is meaningfully asymmetric and with
/// [`Error::NoConvergence`] after 100 sweeps (which, for symmetric input,
/// does not happen in practice).
pub fn eigen_symmetric(m: &Matrix, tol: f64) -> Result<EigenDecomposition> {
    let n = m.rows();
    if n != m.cols() {
        return Err(Error::InvalidArg(format!(
            "eigendecomposition needs a square matrix, got {}x{}",
            n,
            m.cols()
        )));
    }
    // Tolerate tiny float asymmetry from accumulation, relative to scale.
    let scale = m.frobenius().max(1.0);
    m.require_symmetric(scale * 1e-9)?;

    let a = m.clone();
    let v = Matrix::identity(n);
    jacobi_sweeps(a, v, tol * scale)
}

/// Serial cyclic-Jacobi sweep loop from an arbitrary starting state
/// `(A, V)` with `M = V A Vᵀ` as invariant.
fn jacobi_sweeps(mut a: Matrix, mut v: Matrix, threshold: f64) -> Result<EigenDecomposition> {
    let n = a.rows();
    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&a);
        if off <= threshold {
            return Ok(sorted_decomposition(a, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= threshold / (n as f64) {
                    continue;
                }
                let (c, s) = rotation(a[(p, p)], a[(q, q)], apq);
                apply_rotation(&mut a, &mut v, p, q, c, s);
            }
        }
    }
    Err(Error::NoConvergence { algorithm: "jacobi", iterations: MAX_SWEEPS })
}

/// Decompose a symmetric matrix with parallel cyclic-Jacobi sweeps.
///
/// Each sweep is ordered as a round-robin tournament: the `n` columns are
/// paired into `n/2` disjoint `(p, q)` pivots per round, so all rotations in
/// a round commute and can be applied concurrently. Rotation angles are
/// computed from the matrix state at the start of the round (the classic
/// parallel-Jacobi formulation), which changes the rotation *trajectory*
/// relative to the serial element-by-element sweep — eigenvalues agree to
/// the convergence tolerance, not bit-for-bit. With
/// [`Parallelism::is_serial`] this dispatches to [`eigen_symmetric`], the
/// exact legacy path.
pub fn eigen_symmetric_with(
    m: &Matrix,
    tol: f64,
    parallelism: Parallelism,
) -> Result<EigenDecomposition> {
    if parallelism.is_serial() {
        return eigen_symmetric(m, tol);
    }
    let n = m.rows();
    if n != m.cols() {
        return Err(Error::InvalidArg(format!(
            "eigendecomposition needs a square matrix, got {}x{}",
            n,
            m.cols()
        )));
    }
    let scale = m.frobenius().max(1.0);
    m.require_symmetric(scale * 1e-9)?;

    let a = m.clone();
    let v = Matrix::identity(n);
    jacobi_sweeps_with(a, v, tol * scale, parallelism)
}

/// Parallel tournament-Jacobi sweep loop from an arbitrary starting state
/// `(A, V)` with `M = V A Vᵀ` as invariant.
fn jacobi_sweeps_with(
    mut a: Matrix,
    mut v: Matrix,
    threshold: f64,
    parallelism: Parallelism,
) -> Result<EigenDecomposition> {
    let n = a.rows();
    // Round-robin tournament over the columns, padded to an even count: in
    // each of the `players − 1` rounds every column meets exactly one other,
    // so the round's pivot pairs are pairwise disjoint.
    let players = n + (n & 1);

    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        if off_diagonal_norm(&a) <= threshold {
            return Ok(sorted_decomposition(a, v));
        }
        for round in 0..players.saturating_sub(1) {
            let rotations: Vec<(usize, usize, f64, f64)> = tournament_round(n, players, round)
                .into_iter()
                .filter_map(|(p, q)| {
                    let apq = a[(p, q)];
                    if apq.abs() <= threshold / (n as f64) {
                        return None;
                    }
                    let (c, s) = rotation(a[(p, p)], a[(q, q)], apq);
                    Some((p, q, c, s))
                })
                .collect();
            if !rotations.is_empty() {
                apply_rotation_batch(&mut a, &mut v, &rotations, parallelism);
            }
        }
    }
    Err(Error::NoConvergence { algorithm: "jacobi", iterations: MAX_SWEEPS })
}

/// Decompose a symmetric matrix with Jacobi sweeps **warm-started** from a
/// previous window's eigenbasis.
///
/// Instead of starting from `(A, V) = (M, I)`, the iteration starts from
/// `A = V₀ᵀ M V₀`, `V = V₀` where `V₀ = prev.vectors`. When `M` changed
/// little since the previous window, `A` is already nearly diagonal and the
/// quadratic convergence regime is entered immediately — typically one or
/// two sweeps instead of the cold path's handful. The invariant
/// `M = V A Vᵀ` holds at every step, so the result is a faithful
/// decomposition of `M` regardless of how stale `prev` is: a bad seed only
/// costs sweeps, never correctness.
///
/// Like the parallel path, the warm trajectory differs from the cold one,
/// so eigenvalues agree with [`eigen_symmetric`] to the convergence
/// tolerance, not bit-for-bit (the same contract the parallel solver
/// carries). Fails with [`Error::InvalidArg`] if `prev`'s dimension does
/// not match `m` — callers fall back to the cold path on window reshape.
pub fn eigen_symmetric_warm_with(
    m: &Matrix,
    tol: f64,
    prev: &EigenDecomposition,
    parallelism: Parallelism,
) -> Result<EigenDecomposition> {
    let n = m.rows();
    if n != m.cols() {
        return Err(Error::InvalidArg(format!(
            "eigendecomposition needs a square matrix, got {}x{}",
            n,
            m.cols()
        )));
    }
    if prev.values.len() != n || prev.vectors.rows() != n {
        return Err(Error::InvalidArg(format!(
            "warm-start basis of dimension {} does not match matrix {}x{}",
            prev.values.len(),
            n,
            n
        )));
    }
    let scale = m.frobenius().max(1.0);
    m.require_symmetric(scale * 1e-9)?;
    // A = V₀ᵀ M V₀, symmetrized to stamp out accumulation asymmetry (the
    // sweep loop reads only the upper triangle's mirror consistency).
    let mut a = prev.vectors.transpose().matmul(m)?.matmul(&prev.vectors)?;
    for i in 0..n {
        for j in (i + 1)..n {
            let mean = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = mean;
            a[(j, i)] = mean;
        }
    }
    let v = prev.vectors.clone();
    let threshold = tol * scale;
    if parallelism.is_serial() {
        jacobi_sweeps(a, v, threshold)
    } else {
        jacobi_sweeps_with(a, v, threshold, parallelism)
    }
}

/// Pivot pairs of one tournament round: the circle method fixes player 0 and
/// rotates the rest, pairing opposite seats. Pairs involving the padding
/// player (when `n` is odd) are dropped; all returned `(p, q)` have `p < q`
/// and are pairwise disjoint.
fn tournament_round(n: usize, players: usize, round: usize) -> Vec<(usize, usize)> {
    let m = players - 1; // rotating players
    let seat = |k: usize| -> usize {
        if k == 0 {
            0
        } else {
            (k - 1 + round) % m + 1
        }
    };
    (0..players / 2)
        .filter_map(|i| {
            let (x, y) = (seat(i), seat(players - 1 - i));
            let (p, q) = if x < y { (x, y) } else { (y, x) };
            if q < n {
                Some((p, q))
            } else {
                None // padding player sits this round out
            }
        })
        .collect()
}

/// Apply one round's disjoint rotations `A ← JᵀAJ`, `V ← VJ` in two
/// parallel passes: first all column updates (rows of `A` and `V` are
/// independent tiles), then all row updates (each rotation owns its disjoint
/// `(p, q)` row pair).
fn apply_rotation_batch(
    a: &mut Matrix,
    v: &mut Matrix,
    rotations: &[(usize, usize, f64, f64)],
    parallelism: Parallelism,
) {
    let n = a.rows();
    let band = par::tile_size(n, parallelism);
    // Pass 1: column rotations, one task per row band of A and of V.
    let a_tiles = a.data_mut().chunks_mut(n * band);
    let v_tiles = v.data_mut().chunks_mut(n * band);
    let tasks: Vec<&mut [f64]> = a_tiles.chain(v_tiles).collect();
    par::for_each_task(parallelism, tasks, |chunk| {
        for row in chunk.chunks_mut(n) {
            for &(p, q, c, s) in rotations {
                let (rp, rq) = (row[p], row[q]);
                row[p] = c * rp - s * rq;
                row[q] = s * rp + c * rq;
            }
        }
    });
    // Pass 2: row rotations on A. Split A into single-row slices and hand
    // each rotation its own (p, q) pair — disjoint by tournament order.
    let mut rows: Vec<Option<&mut [f64]>> = a.data_mut().chunks_mut(n).map(Some).collect();
    let tasks: Vec<(&mut [f64], &mut [f64], f64, f64)> = rotations
        .iter()
        .filter_map(|&(p, q, c, s)| {
            // Pivot rows are disjoint within a round by tournament order, so
            // both takes always succeed; a collision would skip the rotation.
            let rp = rows[p].take()?;
            let rq = rows[q].take()?;
            Some((rp, rq, c, s))
        })
        .collect();
    par::for_each_task(parallelism, tasks, |(rp, rq, c, s)| {
        for (ap, aq) in rp.iter_mut().zip(rq.iter_mut()) {
            let (x, y) = (*ap, *aq);
            *ap = c * x - s * y;
            *aq = s * x + c * y;
        }
    });
}

/// Frobenius norm of the strictly upper triangle.
fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += a[(i, j)] * a[(i, j)];
        }
    }
    (2.0 * sum).sqrt()
}

/// Jacobi rotation (c, s) that annihilates `a_pq`.
fn rotation(app: f64, aqq: f64, apq: f64) -> (f64, f64) {
    let theta = (aqq - app) / (2.0 * apq);
    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
    let c = 1.0 / (t * t + 1.0).sqrt();
    (c, t * c)
}

/// Apply the (p, q) rotation to `a` (two-sided) and accumulate into `v`.
fn apply_rotation(a: &mut Matrix, v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = a.rows();
    for i in 0..n {
        let (aip, aiq) = (a[(i, p)], a[(i, q)]);
        a[(i, p)] = c * aip - s * aiq;
        a[(i, q)] = s * aip + c * aiq;
    }
    for j in 0..n {
        let (apj, aqj) = (a[(p, j)], a[(q, j)]);
        a[(p, j)] = c * apj - s * aqj;
        a[(q, j)] = s * apj + c * aqj;
    }
    for i in 0..n {
        let (vip, viq) = (v[(i, p)], v[(i, q)]);
        v[(i, p)] = c * vip - s * viq;
        v[(i, q)] = s * vip + c * viq;
    }
}

/// Extract the diagonal, sort eigenpairs by |λ| descending.
fn sorted_decomposition(a: Matrix, v: Matrix) -> EigenDecomposition {
    let n = a.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[(j, j)].abs().total_cmp(&a[(i, i)].abs()));
    let values: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors[(row, new_col)] = v[(row, old_col)];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let m =
            Matrix::from_rows(vec![vec![3.0, 0.0, 0.0], vec![0.0, -5.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        assert!(close(d.values[0], -5.0, 1e-9), "sorted by |λ|: {:?}", d.values);
        assert!(close(d.values[1], 3.0, 1e-9));
        assert!(close(d.values[2], 1.0, 1e-9));
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        assert!(close(d.values[0], 3.0, 1e-9));
        assert!(close(d.values[1], 1.0, 1e-9));
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = (d.vectors[(0, 0)], d.vectors[(1, 0)]);
        assert!(close(v0.0.abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-9));
        assert!(close(v0.0, v0.1, 1e-9));
    }

    #[test]
    fn full_reconstruction_recovers_matrix() {
        let m = Matrix::from_rows(vec![
            vec![4.0, 1.0, 2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.5],
            vec![2.0, 0.0, 5.0, 1.0],
            vec![0.5, 1.5, 1.0, 2.0],
        ]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        let r = d.reconstruct(4).unwrap();
        assert!(m.sub(&r).unwrap().abs_sum() < 1e-8, "M_n must equal M");
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m =
            Matrix::from_rows(vec![vec![4.0, 1.0, 2.0], vec![1.0, 3.0, 0.0], vec![2.0, 0.0, 5.0]]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        let vtv = d.vectors.transpose().matmul(&d.vectors).unwrap();
        let i = Matrix::identity(3);
        assert!(vtv.sub(&i).unwrap().abs_sum() < 1e-9);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let m =
            Matrix::from_rows(vec![vec![6.0, 2.0, 1.0], vec![2.0, 3.0, 1.0], vec![1.0, 1.0, 1.0]]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        for c in 0..3 {
            for i in 0..3 {
                let mv: f64 = (0..3).map(|j| m[(i, j)] * d.vectors[(j, c)]).sum();
                assert!(
                    close(mv, d.values[c] * d.vectors[(i, c)], 1e-8),
                    "M v = λ v violated at column {c}"
                );
            }
        }
    }

    #[test]
    fn low_rank_matrix_truncates_exactly() {
        // Rank-1: outer product of u = (1,2,3).
        let u = [1.0, 2.0, 3.0];
        let mut rows = Vec::new();
        for i in 0..3 {
            rows.push((0..3).map(|j| u[i] * u[j]).collect());
        }
        let m = Matrix::from_rows(rows);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        let r1 = d.reconstruct(1).unwrap();
        assert!(m.sub(&r1).unwrap().abs_sum() < 1e-8, "rank-1 needs only k=1");
        assert!(d.values[1].abs() < 1e-9);
    }

    #[test]
    fn rejects_asymmetric_input() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, 1.0]]);
        assert!(matches!(eigen_symmetric(&m, 1e-10), Err(Error::NotSymmetric { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(eigen_symmetric(&m, 1e-10).is_err());
    }

    #[test]
    fn reconstruct_k_bounds_checked() {
        let m = Matrix::identity(2);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        assert!(d.reconstruct(3).is_err());
        assert!(d.reconstruct(0).unwrap().abs_sum() == 0.0);
    }

    #[test]
    fn tournament_rounds_cover_all_pairs_disjointly() {
        for n in [2usize, 5, 6, 9] {
            let players = n + (n & 1);
            let mut seen = std::collections::HashSet::new();
            for round in 0..players - 1 {
                let pairs = tournament_round(n, players, round);
                let mut touched = std::collections::HashSet::new();
                for (p, q) in pairs {
                    assert!(p < q && q < n, "ordered, in-range pivot ({p},{q})");
                    assert!(touched.insert(p) && touched.insert(q), "disjoint within round");
                    assert!(seen.insert((p, q)), "no pair repeats across rounds");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "n={n}: every pair visited once");
        }
    }

    #[test]
    fn parallel_jacobi_matches_serial_within_tolerance() {
        let n = 24;
        let mut m = Matrix::zeros(n, n);
        let mut state = 0xfeedu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                let x = next();
                m[(i, j)] = x;
                m[(j, i)] = x;
            }
        }
        let serial = eigen_symmetric(&m, 1e-10).unwrap();
        for workers in [2, 4] {
            let d = eigen_symmetric_with(&m, 1e-10, Parallelism::new(workers)).unwrap();
            // Same spectrum within tolerance (different rotation trajectory).
            for (a, b) in serial.values.iter().zip(&d.values) {
                assert!(close(*a, *b, 1e-7), "eigenvalue {a} vs {b} ({workers} workers)");
            }
            // And a faithful decomposition in its own right.
            let r = d.reconstruct(n).unwrap();
            let rel = m.sub(&r).unwrap().frobenius() / m.frobenius();
            assert!(rel < 1e-8, "parallel reconstruction error {rel}");
        }
    }

    #[test]
    fn parallel_jacobi_serial_knob_is_exact_legacy() {
        let m =
            Matrix::from_rows(vec![vec![4.0, 1.0, 2.0], vec![1.0, 3.0, 0.0], vec![2.0, 0.0, 5.0]]);
        let legacy = eigen_symmetric(&m, 1e-12).unwrap();
        let knob1 = eigen_symmetric_with(&m, 1e-12, Parallelism::serial()).unwrap();
        assert_eq!(legacy.values, knob1.values, "workers=1 must be bit-for-bit legacy");
        assert_eq!(legacy.vectors, knob1.vectors);
    }

    #[test]
    fn reconstruct_with_is_worker_count_invariant() {
        let m = Matrix::from_rows(vec![
            vec![4.0, 1.0, 2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.5],
            vec![2.0, 0.0, 5.0, 1.0],
            vec![0.5, 1.5, 1.0, 2.0],
        ]);
        let d = eigen_symmetric(&m, 1e-12).unwrap();
        for k in 0..=4 {
            let serial = d.reconstruct(k).unwrap();
            for workers in [2, 3, 8] {
                let p = d.reconstruct_with(k, Parallelism::new(workers)).unwrap();
                assert_eq!(p, serial, "k={k}, {workers} workers");
            }
        }
    }

    /// Deterministic pseudo-random symmetric matrix.
    fn random_symmetric(n: usize, mut state: u64) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                let x = next();
                m[(i, j)] = x;
                m[(j, i)] = x;
            }
        }
        m
    }

    #[test]
    fn warm_start_from_own_basis_matches_cold_within_tolerance() {
        let m = random_symmetric(20, 0xabcd);
        let cold = eigen_symmetric(&m, 1e-10).unwrap();
        for workers in [1, 2, 4] {
            let warm =
                eigen_symmetric_warm_with(&m, 1e-10, &cold, Parallelism::new(workers)).unwrap();
            for (a, b) in cold.values.iter().zip(&warm.values) {
                assert!(close(*a, *b, 1e-7), "eigenvalue {a} vs {b} ({workers} workers)");
            }
            let r = warm.reconstruct(20).unwrap();
            let rel = m.sub(&r).unwrap().frobenius() / m.frobenius();
            assert!(rel < 1e-8, "warm reconstruction error {rel} ({workers} workers)");
        }
    }

    #[test]
    fn warm_start_from_perturbed_window_stays_faithful() {
        // The incremental-pipeline shape: decompose window 1, warm-start
        // window 2 = window 1 + a small churn perturbation.
        let m1 = random_symmetric(16, 0x777);
        let prev = eigen_symmetric(&m1, 1e-10).unwrap();
        let mut m2 = m1.clone();
        let bump = |m: &mut Matrix, i: usize, j: usize, d: f64| {
            m[(i, j)] += d;
            m[(j, i)] = m[(i, j)];
        };
        bump(&mut m2, 0, 3, 0.05);
        bump(&mut m2, 7, 7, -0.02);
        bump(&mut m2, 10, 15, 0.04);
        let cold = eigen_symmetric(&m2, 1e-10).unwrap();
        for workers in [1, 4] {
            let warm =
                eigen_symmetric_warm_with(&m2, 1e-10, &prev, Parallelism::new(workers)).unwrap();
            for (a, b) in cold.values.iter().zip(&warm.values) {
                assert!(close(*a, *b, 1e-7), "eigenvalue {a} vs {b} ({workers} workers)");
            }
            // Faithful decomposition: orthonormal basis + exact reconstruction.
            let vtv = warm.vectors.transpose().matmul(&warm.vectors).unwrap();
            assert!(vtv.sub(&Matrix::identity(16)).unwrap().abs_sum() < 1e-8);
            let r = warm.reconstruct(16).unwrap();
            let rel = m2.sub(&r).unwrap().frobenius() / m2.frobenius();
            assert!(rel < 1e-8, "warm reconstruction error {rel}");
        }
    }

    #[test]
    fn warm_start_rejects_dimension_mismatch() {
        let m = random_symmetric(6, 1);
        let prev = eigen_symmetric(&random_symmetric(5, 2), 1e-10).unwrap();
        assert!(matches!(
            eigen_symmetric_warm_with(&m, 1e-10, &prev, Parallelism::serial()),
            Err(Error::InvalidArg(_))
        ));
    }

    #[test]
    fn moderate_size_random_symmetric_converges() {
        // Deterministic pseudo-random symmetric 40x40.
        let n = 40;
        let mut m = Matrix::zeros(n, n);
        let mut state = 0x12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let d = eigen_symmetric(&m, 1e-10).unwrap();
        let r = d.reconstruct(n).unwrap();
        let rel = m.sub(&r).unwrap().frobenius() / m.frobenius();
        assert!(rel < 1e-8, "relative reconstruction error {rel}");
    }
}
