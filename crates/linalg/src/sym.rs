//! Flat symmetric matrix with packed upper-triangular storage.
//!
//! Similarity matrices (Jaccard, MinHash, SimRank) are symmetric by
//! construction, so storing both triangles as `Vec<Vec<f64>>` wastes half the
//! memory and all of the cache locality. [`SymMatrix`] keeps only the upper
//! triangle in one contiguous buffer: entry `(i, j)` with `i ≤ j` lives at
//! `i·n − i·(i−1)/2 + (j − i)`, i.e. row `i` owns the contiguous slice of its
//! `n − i` entries from the diagonal rightwards. That row-contiguity is what
//! makes the parallel fills in [`crate::par`] safe: the buffer splits into
//! disjoint `&mut` row tiles with `split_at_mut`, no `unsafe` required.

use crate::par::{self, Parallelism};
use std::ops::Index;

/// A symmetric `n × n` matrix storing only the packed upper triangle.
///
/// Reads may use any `(i, j)` order — `m[(i, j)] == m[(j, i)]` by
/// construction, since both map to the same packed entry. Writes via
/// [`SymMatrix::set`] therefore keep the matrix exactly symmetric.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// All-zero symmetric matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SymMatrix { n, data: vec![0.0; n * (n + 1) / 2] }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The packed upper-triangular buffer (row-major, diagonal first).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        assert!(j < self.n, "index ({i}, {j}) out of bounds for dimension {}", self.n);
        // Row i starts at Σ_{r<i}(n − r) = i(2n − i + 1)/2.
        i * (2 * self.n - i + 1) / 2 + (j - i)
    }

    /// Read entry `(i, j)` (either triangle).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.idx(i, j)]
    }

    /// Write entry `(i, j)`; the mirrored entry `(j, i)` is the same storage,
    /// so symmetry is invariant.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let k = self.idx(i, j);
        self.data[k] = v;
    }

    /// Full (logical) row `i` as an owned vector, mirroring the lower
    /// triangle from the packed storage.
    pub fn row_to_vec(&self, i: usize) -> Vec<f64> {
        (0..self.n).map(|j| self.get(i, j)).collect()
    }

    /// Expand to a dense [`crate::Matrix`].
    pub fn to_dense(&self) -> crate::Matrix {
        crate::Matrix::from_rows((0..self.n).map(|i| self.row_to_vec(i)).collect())
    }

    /// Split the packed buffer into per-row `(i, row)` tiles, where `row`
    /// holds entries `(i, i..n)`. The tiles are disjoint `&mut` slices, so
    /// they can be dispatched to worker threads.
    fn row_tiles_mut(&mut self) -> Vec<(usize, &mut [f64])> {
        let n = self.n;
        let mut rest: &mut [f64] = &mut self.data;
        let mut tiles = Vec::with_capacity(n);
        for i in 0..n {
            let (row, tail) = rest.split_at_mut(n - i);
            tiles.push((i, row));
            rest = tail;
        }
        tiles
    }

    /// Fill every upper-triangular entry (diagonal included) as
    /// `(i, j) ← f(i, j)`, distributing rows over `par` workers.
    ///
    /// Each entry is computed by exactly one invocation of `f`, so the result
    /// is bit-for-bit identical at any worker count.
    pub fn fill_upper<F>(&mut self, parallelism: Parallelism, f: F)
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        par::for_each_task(parallelism, self.row_tiles_mut(), |(i, row)| {
            for (k, slot) in row.iter_mut().enumerate() {
                *slot = f(i, i + k);
            }
        });
    }

    /// Update every upper-triangular entry in place as
    /// `(i, j) ← f(i, j, current)`, distributing rows over `par` workers.
    pub fn update_upper<F>(&mut self, parallelism: Parallelism, f: F)
    where
        F: Fn(usize, usize, f64) -> f64 + Sync,
    {
        par::for_each_task(parallelism, self.row_tiles_mut(), |(i, row)| {
            for (k, slot) in row.iter_mut().enumerate() {
                *slot = f(i, i + k, *slot);
            }
        });
    }

    /// Fill every upper-triangular entry, carrying entries over from a
    /// previous matrix where possible: when `reuse(i, j)` names a coordinate
    /// of `prev`, that entry is copied verbatim; otherwise `f(i, j)` is
    /// computed fresh. The incremental-maintenance primitive: callers map
    /// *clean* pairs back to their previous coordinates and pay recomputation
    /// only for dirty rows.
    ///
    /// Each entry is produced by exactly one `reuse`-then-`f` decision, so
    /// the result is bit-for-bit identical at any worker count — and
    /// bit-identical to a full [`SymMatrix::fill_upper`] whenever `reuse`
    /// only maps pairs whose value is unchanged.
    pub fn fill_upper_incremental<R, F>(
        &mut self,
        parallelism: Parallelism,
        prev: &SymMatrix,
        reuse: R,
        f: F,
    ) where
        R: Fn(usize, usize) -> Option<(usize, usize)> + Sync,
        F: Fn(usize, usize) -> f64 + Sync,
    {
        par::for_each_task(parallelism, self.row_tiles_mut(), |(i, row)| {
            for (k, slot) in row.iter_mut().enumerate() {
                let j = i + k;
                *slot = match reuse(i, j) {
                    Some((pi, pj)) => prev.get(pi, pj),
                    None => f(i, j),
                };
            }
        });
    }
}

impl Index<(usize, usize)> for SymMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[self.idx(i, j)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_layout_round_trips() {
        let mut m = SymMatrix::zeros(4);
        let mut v = 0.0;
        for i in 0..4 {
            for j in i..4 {
                v += 1.0;
                m.set(i, j, v);
            }
        }
        // Row starts: 0, 4, 7, 9 — buffer length 10.
        assert_eq!(m.data().len(), 10);
        assert_eq!(m[(0, 3)], 4.0);
        assert_eq!(m[(3, 0)], 4.0, "lower triangle mirrors upper");
        assert_eq!(m[(2, 2)], 8.0);
        assert_eq!(m.row_to_vec(1), vec![2.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn set_keeps_symmetry_from_either_triangle() {
        let mut m = SymMatrix::zeros(3);
        m.set(2, 0, 7.5);
        assert_eq!(m.get(0, 2), 7.5);
        assert_eq!(m.get(2, 0), 7.5);
    }

    #[test]
    fn fill_upper_is_worker_count_invariant() {
        let f = |i: usize, j: usize| (i * 31 + j) as f64 / 7.0;
        let mut serial = SymMatrix::zeros(33);
        serial.fill_upper(Parallelism::serial(), f);
        for workers in [2, 3, 8] {
            let mut m = SymMatrix::zeros(33);
            m.fill_upper(Parallelism::new(workers), f);
            assert_eq!(m, serial, "{workers} workers");
        }
    }

    #[test]
    fn incremental_fill_copies_reused_and_computes_the_rest() {
        let mut prev = SymMatrix::zeros(4);
        prev.fill_upper(Parallelism::serial(), |i, j| (i * 10 + j) as f64);
        let f = |i: usize, j: usize| -((i + j) as f64);
        // Reuse everything except row/col 2; shifted coordinates exercise the
        // prev-index mapping.
        let reuse = |i: usize, j: usize| {
            if i == 2 || j == 2 {
                None
            } else {
                Some((i, j))
            }
        };
        let mut serial = SymMatrix::zeros(4);
        serial.fill_upper_incremental(Parallelism::serial(), &prev, reuse, f);
        assert_eq!(serial[(0, 1)], 1.0, "copied from prev");
        assert_eq!(serial[(2, 3)], -5.0, "computed fresh");
        for workers in [2, 3, 8] {
            let mut m = SymMatrix::zeros(4);
            m.fill_upper_incremental(Parallelism::new(workers), &prev, reuse, f);
            assert_eq!(m, serial, "{workers} workers");
        }
    }

    #[test]
    fn to_dense_is_symmetric() {
        let mut m = SymMatrix::zeros(5);
        m.fill_upper(Parallelism::serial(), |i, j| (i + 2 * j) as f64);
        let d = m.to_dense();
        d.require_symmetric(0.0).unwrap();
        assert_eq!(d[(1, 4)], m[(4, 1)]);
    }

    #[test]
    fn empty_matrix() {
        let m = SymMatrix::zeros(0);
        assert_eq!(m.n(), 0);
        assert!(m.data().is_empty());
        assert_eq!(m.to_dense().rows(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = SymMatrix::zeros(2);
        let _ = m.get(0, 2);
    }
}
