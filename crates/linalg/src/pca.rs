//! PCA sparse transforms and reconstruction error (§2.2).
//!
//! For a square symmetric matrix `M = E D Eᵀ`, the k'th *sparse transform*
//! keeps only the first k eigenpairs: `M_k = E_k D_k E_kᵀ`. The paper's
//! finding is that cloud communication matrices need very few eigenvectors —
//! `ReconErr(M, M_25) < 0.05` on a > 500-node matrix — because redundancy
//! (many replicas, same role) makes the matrix low-rank.

use crate::eigen::{
    eigen_symmetric, eigen_symmetric_warm_with, eigen_symmetric_with, EigenDecomposition,
};
use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::par::{self, Parallelism};
use serde::Serialize;

/// Reconstruction error as defined in the paper: the normalized absolute sum
/// of the entries of `M − M_k` — i.e. `Σ|M − M_k| / Σ|M|`. An error of 0.05
/// means reconstructed entries are within 5% of their true values on
/// average. Returns 0 for an all-zero `M` only if `M_k` is also all-zero.
pub fn recon_err(m: &Matrix, mk: &Matrix) -> Result<f64> {
    let diff = m.sub(mk)?.abs_sum();
    let denom = m.abs_sum();
    if denom == 0.0 {
        return Ok(if diff == 0.0 { 0.0 } else { f64::INFINITY });
    }
    Ok(diff / denom)
}

/// Compute `M_k` directly from a symmetric matrix.
pub fn sparse_transform(m: &Matrix, k: usize) -> Result<Matrix> {
    let d = eigen_symmetric(m, 1e-10)?;
    d.reconstruct(k)
}

/// Compute `M_k` with the parallel eigensolver and rank-k reconstruction.
pub fn sparse_transform_with(m: &Matrix, k: usize, parallelism: Parallelism) -> Result<Matrix> {
    let d = eigen_symmetric_with(m, 1e-10, parallelism)?;
    d.reconstruct_with(k, parallelism)
}

/// Reconstruction error at one value of k.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct KError {
    /// Number of eigenpairs retained.
    pub k: usize,
    /// `ReconErr(M, M_k)`.
    pub err: f64,
}

/// The full k-sweep result for one matrix.
#[derive(Debug, Clone, Serialize)]
pub struct PcaSummary {
    /// Matrix dimension.
    pub n: usize,
    /// Errors at each requested k, ascending in k.
    pub errors: Vec<KError>,
    /// Smallest k with error below 0.05, if any was requested.
    pub k_for_5_percent: Option<usize>,
}

/// The reconstruction error at **every** k from 0 to n, computed
/// incrementally (`M_k = M_{k-1} + λ_k v_k v_kᵀ`) in O(n³) total.
///
/// Needed because the entrywise-L1 error is *not* guaranteed monotone in k:
/// adjacency matrices have large negative eigenvalues (bipartite tier
/// structure), and adding such an eigenpair can transiently raise the
/// absolute-sum error even as the Frobenius error falls.
pub fn recon_err_profile(d: &EigenDecomposition, m: &Matrix) -> Result<Vec<f64>> {
    let n = m.rows();
    if d.values.len() != n || m.cols() != n {
        return Err(Error::InvalidArg(format!(
            "decomposition of size {} does not match matrix {}x{}",
            d.values.len(),
            m.rows(),
            m.cols()
        )));
    }
    let denom = m.abs_sum();
    let mut mk = Matrix::zeros(n, n);
    let mut profile = Vec::with_capacity(n + 1);
    let err_of = |mk: &Matrix| -> f64 {
        // Both operands are n×n by construction; a mismatch cannot reconstruct.
        let diff = m.sub(mk).map_or(f64::INFINITY, |d| d.abs_sum());
        if denom == 0.0 {
            if diff == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            diff / denom
        }
    };
    profile.push(err_of(&mk));
    for c in 0..n {
        let lambda = d.values[c];
        for i in 0..n {
            let vi = d.vectors[(i, c)] * lambda;
            if vi == 0.0 {
                continue;
            }
            for j in 0..n {
                mk[(i, j)] += vi * d.vectors[(j, c)];
            }
        }
        profile.push(err_of(&mk));
    }
    Ok(profile)
}

/// Parallel incremental reconstruction-error profile.
///
/// Same contract as [`recon_err_profile`], with the rank-1 updates and the
/// error reduction partitioned over row bands. Each row's `Σ|M − M_k|`
/// partial is computed in the serial column order and the partials are
/// folded in ascending row order, so the profile is bit-for-bit identical at
/// any worker count (including 1). Note the fixed row-wise summation tree
/// differs from [`recon_err_profile`]'s single running sum, so the two
/// functions may differ in the last ulp.
pub fn recon_err_profile_with(
    d: &EigenDecomposition,
    m: &Matrix,
    parallelism: Parallelism,
) -> Result<Vec<f64>> {
    let n = m.rows();
    if d.values.len() != n || m.cols() != n {
        return Err(Error::InvalidArg(format!(
            "decomposition of size {} does not match matrix {}x{}",
            d.values.len(),
            m.rows(),
            m.cols()
        )));
    }
    let denom = m.abs_sum();
    let err_of = |row_err: &[f64]| -> f64 {
        let diff: f64 = row_err.iter().sum();
        if denom == 0.0 {
            if diff == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            diff / denom
        }
    };
    let mut mk = Matrix::zeros(n, n);
    let mut row_err: Vec<f64> = (0..n).map(|i| m.row(i).iter().map(|v| v.abs()).sum()).collect();
    let mut profile = Vec::with_capacity(n + 1);
    profile.push(err_of(&row_err));
    let band = par::tile_size(n, parallelism);
    for c in 0..n {
        let lambda = d.values[c];
        let tasks: Vec<(usize, &mut [f64], &mut [f64])> = mk
            .data_mut()
            .chunks_mut(n * band)
            .zip(row_err.chunks_mut(band))
            .enumerate()
            .map(|(t, (mk_chunk, err_chunk))| (t * band, mk_chunk, err_chunk))
            .collect();
        par::for_each_task(parallelism, tasks, |(first_row, mk_chunk, err_chunk)| {
            for (r, mk_row) in mk_chunk.chunks_mut(n).enumerate() {
                let i = first_row + r;
                let vi = d.vectors[(i, c)] * lambda;
                if vi != 0.0 {
                    for (j, slot) in mk_row.iter_mut().enumerate() {
                        *slot += vi * d.vectors[(j, c)];
                    }
                }
                err_chunk[r] = m.row(i).iter().zip(mk_row.iter()).map(|(a, b)| (a - b).abs()).sum();
            }
        });
        profile.push(err_of(&row_err));
    }
    Ok(profile)
}

/// Sweep reconstruction error across `ks` (decomposing once).
///
/// `ks` values above the dimension are clamped to n. `k_for_5_percent` is
/// the smallest k anywhere in `0..=n` whose error drops below 0.05, found
/// by a full scan of the incremental profile (robust to non-monotonicity).
/// ```
/// use linalg::{pca_sweep, Matrix};
///
/// // A rank-1 matrix reconstructs perfectly from one component.
/// let u = [1.0, 2.0, 3.0];
/// let m = Matrix::from_rows(
///     (0..3).map(|i| (0..3).map(|j| u[i] * u[j]).collect()).collect(),
/// );
/// let sweep = pca_sweep(&m, &[1]).unwrap();
/// assert!(sweep.errors[0].err < 1e-9);
/// ```
pub fn pca_sweep(m: &Matrix, ks: &[usize]) -> Result<PcaSummary> {
    pca_sweep_with(m, ks, Parallelism::serial())
}

/// [`pca_sweep`] with the decomposition and error profile parallelized.
///
/// With a serial knob this uses the legacy eigensolver; the incremental
/// profile always uses the fixed row-banded summation of
/// [`recon_err_profile_with`], so sweeps agree bit-for-bit across worker
/// counts whenever the decomposition does.
pub fn pca_sweep_with(m: &Matrix, ks: &[usize], parallelism: Parallelism) -> Result<PcaSummary> {
    if m.rows() != m.cols() {
        return Err(Error::InvalidArg(format!(
            "PCA sweep needs a square matrix, got {}x{}",
            m.rows(),
            m.cols()
        )));
    }
    let d = eigen_symmetric_with(m, 1e-10, parallelism)?;
    let profile = recon_err_profile_with(&d, m, parallelism)?;
    Ok(summarize(m.rows(), &profile, ks))
}

/// Reduce an incremental error profile to the sweep summary for `ks`.
fn summarize(n: usize, profile: &[f64], ks: &[usize]) -> PcaSummary {
    let mut errors: Vec<KError> = ks
        .iter()
        .map(|&k| {
            let k = k.min(n);
            KError { k, err: profile[k] }
        })
        .collect();
    errors.sort_by_key(|e| e.k);
    errors.dedup_by_key(|e| e.k);
    let k_for_5_percent = profile.iter().position(|&e| e < 0.05);
    PcaSummary { n, errors, k_for_5_percent }
}

/// [`pca_sweep_with`], warm-starting the eigensolver from a previous
/// window's decomposition and returning this window's decomposition for the
/// next warm start.
///
/// With `prev = None`, or a `prev` whose dimension no longer matches `m`
/// (the matrix grew or shrank between windows), this silently falls back to
/// the cold solver — staleness costs sweeps, never correctness. The summary
/// carries the same tolerance-agreement contract as the parallel solver:
/// errors match a cold [`pca_sweep_with`] to the convergence tolerance, not
/// bit-for-bit.
pub fn pca_sweep_warm_with(
    m: &Matrix,
    ks: &[usize],
    prev: Option<&EigenDecomposition>,
    parallelism: Parallelism,
) -> Result<(PcaSummary, EigenDecomposition)> {
    if m.rows() != m.cols() {
        return Err(Error::InvalidArg(format!(
            "PCA sweep needs a square matrix, got {}x{}",
            m.rows(),
            m.cols()
        )));
    }
    let n = m.rows();
    let d = match prev {
        Some(prev) if prev.values.len() == n => {
            eigen_symmetric_warm_with(m, 1e-10, prev, parallelism)?
        }
        _ => eigen_symmetric_with(m, 1e-10, parallelism)?,
    };
    let profile = recon_err_profile_with(&d, m, parallelism)?;
    Ok((summarize(n, &profile, ks), d))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block matrix of two "roles": low-rank by construction.
    fn two_block(n_per: usize) -> Matrix {
        let n = n_per * 2;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let same_block = (i < n_per) == (j < n_per);
                m[(i, j)] = if same_block { 10.0 } else { 100.0 };
            }
        }
        m
    }

    #[test]
    fn recon_err_zero_for_identical() {
        let m = two_block(3);
        assert_eq!(recon_err(&m, &m).unwrap(), 0.0);
    }

    #[test]
    fn recon_err_is_normalized() {
        let m = Matrix::from_rows(vec![vec![10.0, 0.0], vec![0.0, 10.0]]);
        let z = Matrix::zeros(2, 2);
        assert_eq!(recon_err(&m, &z).unwrap(), 1.0, "all mass missing = error 1");
    }

    #[test]
    fn full_rank_transform_is_exact() {
        let m = two_block(4);
        let mk = sparse_transform(&m, 8).unwrap();
        assert!(recon_err(&m, &mk).unwrap() < 1e-9);
    }

    #[test]
    fn error_decreases_monotonically_in_k() {
        let m = two_block(5);
        let sweep = pca_sweep(&m, &[1, 2, 3, 5, 10]).unwrap();
        for w in sweep.errors.windows(2) {
            assert!(
                w[1].err <= w[0].err + 1e-12,
                "error must not increase with k: {:?}",
                sweep.errors
            );
        }
    }

    #[test]
    fn low_rank_structure_needs_few_components() {
        // Two-role structure: rank ≈ 3 (two block patterns + diagonal
        // correction), so tiny k already reconstructs well.
        let m = two_block(10);
        let sweep = pca_sweep(&m, &[1, 2, 3, 4]).unwrap();
        let k5 = sweep.k_for_5_percent.expect("low-rank matrix must hit 5%");
        assert!(k5 <= 4, "two-block matrix should need ≤ 4 components, needed {k5}");
    }

    #[test]
    fn sweep_clamps_oversized_k() {
        let m = two_block(2);
        let sweep = pca_sweep(&m, &[100]).unwrap();
        assert_eq!(sweep.errors.len(), 1);
        assert_eq!(sweep.errors[0].k, 4);
        assert!(sweep.errors[0].err < 1e-9);
    }

    #[test]
    fn random_full_rank_matrix_needs_many_components() {
        // Contrast case: an unstructured matrix is NOT low-rank, so k=1
        // reconstruction stays bad. This is what makes the paper's finding
        // about *cloud* matrices non-trivial.
        let n = 16;
        let mut m = Matrix::zeros(n, n);
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f64 / 16_777_216.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let sweep = pca_sweep(&m, &[1]).unwrap();
        assert!(
            sweep.errors[0].err > 0.3,
            "unstructured matrix must reconstruct poorly at k=1, got {}",
            sweep.errors[0].err
        );
    }

    #[test]
    fn parallel_profile_is_worker_count_invariant() {
        let m = two_block(6);
        let d = eigen_symmetric(&m, 1e-10).unwrap();
        let serial = recon_err_profile_with(&d, &m, Parallelism::serial()).unwrap();
        for workers in [2, 3, 8] {
            let p = recon_err_profile_with(&d, &m, Parallelism::new(workers)).unwrap();
            assert_eq!(p, serial, "bitwise profile equality at {workers} workers");
        }
        // And it tracks the legacy running-sum profile to float precision.
        let legacy = recon_err_profile(&d, &m).unwrap();
        for (a, b) in legacy.iter().zip(&serial) {
            assert!((a - b).abs() < 1e-12, "legacy {a} vs banded {b}");
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_sweep() {
        // Random symmetric matrix: distinct eigenvalues almost surely, so
        // serial and parallel Jacobi agree on the eigenbasis (a degenerate
        // spectrum like two_block's would make partial reconstructions
        // legitimately basis-dependent).
        let n = 12;
        let mut m = Matrix::zeros(n, n);
        let mut state = 31u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f64 / 16_777_216.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let serial = pca_sweep(&m, &[1, 3, 12]).unwrap();
        let par = pca_sweep_with(&m, &[1, 3, 12], Parallelism::new(4)).unwrap();
        assert_eq!(serial.n, par.n);
        assert_eq!(serial.k_for_5_percent, par.k_for_5_percent);
        // The parallel Jacobi trajectory differs, so errors agree to the
        // convergence tolerance, not bitwise.
        for (a, b) in serial.errors.iter().zip(&par.errors) {
            assert_eq!(a.k, b.k);
            assert!((a.err - b.err).abs() < 1e-6, "k={}: {} vs {}", a.k, a.err, b.err);
        }
        let mk = sparse_transform_with(&m, 12, Parallelism::new(2)).unwrap();
        assert!(recon_err(&m, &mk).unwrap() < 1e-9);
    }

    #[test]
    fn warm_sweep_matches_cold_sweep_within_tolerance() {
        // Window 1 decomposed cold; window 2 = window 1 + small churn,
        // swept warm from window 1's basis.
        let n = 12;
        let mut m1 = Matrix::zeros(n, n);
        let mut state = 97u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f64 / 16_777_216.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                m1[(i, j)] = v;
                m1[(j, i)] = v;
            }
        }
        let p = Parallelism::new(2);
        let (s1, d1) = pca_sweep_warm_with(&m1, &[1, 3, 12], None, p).unwrap();
        let cold1 = pca_sweep_with(&m1, &[1, 3, 12], p).unwrap();
        for (a, b) in s1.errors.iter().zip(&cold1.errors) {
            assert!((a.err - b.err).abs() < 1e-6, "no-prev warm = cold, k={}", a.k);
        }
        let mut m2 = m1.clone();
        m2[(0, 5)] += 0.03;
        m2[(5, 0)] = m2[(0, 5)];
        let (s2, d2) = pca_sweep_warm_with(&m2, &[1, 3, 12], Some(&d1), p).unwrap();
        let cold2 = pca_sweep_with(&m2, &[1, 3, 12], p).unwrap();
        assert_eq!(s2.n, cold2.n);
        for (a, b) in s2.errors.iter().zip(&cold2.errors) {
            assert_eq!(a.k, b.k);
            assert!((a.err - b.err).abs() < 1e-6, "k={}: warm {} vs cold {}", a.k, a.err, b.err);
        }
        assert_eq!(d2.values.len(), n, "returned decomposition feeds the next window");
    }

    #[test]
    fn warm_sweep_falls_back_on_dimension_change() {
        let small = two_block(2);
        let (_, d_small) = pca_sweep_warm_with(&small, &[4], None, Parallelism::serial()).unwrap();
        let big = two_block(4);
        // Stale 4x4 basis against an 8x8 window: silently cold-started.
        let (s, d) =
            pca_sweep_warm_with(&big, &[8], Some(&d_small), Parallelism::serial()).unwrap();
        assert_eq!(d.values.len(), 8);
        assert!(s.errors[0].err < 1e-9);
    }

    #[test]
    fn zero_matrix_edge_case() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(recon_err(&z, &Matrix::zeros(3, 3)).unwrap(), 0.0);
        let bad = Matrix::identity(3);
        assert_eq!(recon_err(&z, &bad).unwrap(), f64::INFINITY);
    }
}
