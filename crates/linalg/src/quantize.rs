//! Log-scale quantization for adjacency-matrix heatmaps (Figures 4 & 5).
//!
//! The paper renders byte matrices "normalized and color-coded in log
//! scale": entries span six-plus orders of magnitude, so a linear scale
//! would show only the elephants. [`log_normalize`] maps entries to `[0, 1]`
//! on a log axis spanning `decades` orders of magnitude below the maximum;
//! [`to_csv`] emits the result for external plotting.

use crate::matrix::Matrix;

/// Log-normalize a non-negative matrix to `[0, 1]`.
///
/// The maximum entry maps to 1; entries `decades` orders of magnitude below
/// it (or zero) map to 0; everything between maps linearly in log-space.
/// The paper's figures use 6 decades.
///
/// # Panics
/// Panics if `decades` is not positive or any entry is negative.
pub fn log_normalize(m: &Matrix, decades: f64) -> Matrix {
    assert!(decades > 0.0, "decades must be positive");
    let max = m.data().iter().fold(0.0f64, |a, &b| {
        assert!(b >= 0.0, "log heatmaps need non-negative matrices");
        a.max(b)
    });
    let mut out = Matrix::zeros(m.rows(), m.cols());
    if max == 0.0 {
        return out;
    }
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            let v = m[(i, j)];
            if v > 0.0 {
                let rel = (v / max).log10(); // ≤ 0
                out[(i, j)] = ((rel + decades) / decades).clamp(0.0, 1.0);
            }
        }
    }
    out
}

/// Quantize a `[0, 1]` matrix into `levels` integer buckets `0..levels`.
/// Bucket `levels - 1` holds the maximum.
///
/// # Panics
/// Panics if `levels` is zero.
pub fn bucketize(normalized: &Matrix, levels: u8) -> Vec<Vec<u8>> {
    assert!(levels > 0, "need at least one level");
    let mut out = vec![vec![0u8; normalized.cols()]; normalized.rows()];
    for i in 0..normalized.rows() {
        for j in 0..normalized.cols() {
            let v = normalized[(i, j)].clamp(0.0, 1.0);
            out[i][j] = ((v * levels as f64) as u8).min(levels - 1);
        }
    }
    out
}

/// Render a matrix as CSV (one row per line, `%.6g` entries).
pub fn to_csv(m: &Matrix) -> String {
    let mut out = String::with_capacity(m.rows() * m.cols() * 8);
    for i in 0..m.rows() {
        let mut first = true;
        for j in 0..m.cols() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{:.6}", m[(i, j)]));
        }
        out.push('\n');
    }
    out
}

/// Coarse ASCII heatmap for terminal eyeballing (examples use it to show the
/// Figure 4 patterns without a plotting stack). One character per cell.
pub fn to_ascii(normalized: &Matrix) -> String {
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let buckets = bucketize(normalized, 10);
    let mut out = String::with_capacity(normalized.rows() * (normalized.cols() + 1));
    for row in buckets {
        for b in row {
            out.push(RAMP[b as usize]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_maps_to_one_zero_to_zero() {
        let m = Matrix::from_rows(vec![vec![0.0, 1e6], vec![1.0, 1e3]]);
        let n = log_normalize(&m, 6.0);
        assert_eq!(n[(0, 1)], 1.0);
        assert_eq!(n[(0, 0)], 0.0);
        // 1e3 is 3 decades below 1e6: maps to 0.5 on a 6-decade scale.
        assert!((n[(1, 1)] - 0.5).abs() < 1e-12);
        // 1.0 is exactly 6 decades below: clamps to 0.
        assert_eq!(n[(1, 0)], 0.0);
    }

    #[test]
    fn below_range_clamps_to_zero() {
        let m = Matrix::from_rows(vec![vec![1e-3, 1e6]]);
        let n = log_normalize(&m, 6.0);
        assert_eq!(n[(0, 0)], 0.0);
    }

    #[test]
    fn zero_matrix_stays_zero() {
        let n = log_normalize(&Matrix::zeros(3, 3), 6.0);
        assert_eq!(n.abs_sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_entries_panic() {
        log_normalize(&Matrix::from_rows(vec![vec![-1.0]]), 6.0);
    }

    #[test]
    fn bucketize_covers_range() {
        let m = Matrix::from_rows(vec![vec![0.0, 0.49, 0.99, 1.0]]);
        let b = bucketize(&m, 10);
        assert_eq!(b[0], vec![0, 4, 9, 9]);
    }

    #[test]
    fn csv_shape() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let csv = to_csv(&m);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), 2);
    }

    #[test]
    fn ascii_heatmap_dimensions() {
        let m = Matrix::from_rows(vec![vec![0.0, 1.0], vec![0.5, 0.2]]);
        let art = to_ascii(&m);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().count(), 2);
        assert_eq!(lines[0].chars().nth(1), Some('@'), "max cell uses densest glyph");
        assert_eq!(lines[0].chars().next(), Some(' '), "zero cell is blank");
    }
}
