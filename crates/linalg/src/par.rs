//! Data-parallel execution primitives shared by the dense kernels.
//!
//! Everything here is built on `std` only (scoped threads + atomics), per the
//! crate-policy ban on external dependencies. The only other ingredient is
//! the workspace's own zero-dep `obs` crate: when a process-global registry
//! is installed (`obs::install_global`), each scheduler invocation reports
//! tiles scheduled and per-worker busy time; without one the hooks are inert
//! branches. Two scheduling shapes cover all the kernels in this workspace:
//!
//! * [`for_each_tile`] — a work queue over an index space: workers pull
//!   fixed-size tiles of `0..n` off an atomic ticket counter. Use when the
//!   body only needs shared (`&`) access, e.g. reductions into per-tile
//!   buffers the caller owns.
//! * [`for_each_task`] — a work queue over *owned* tasks, typically disjoint
//!   `&mut` row tiles produced by `chunks_mut`/`split_at_mut`. Workers claim
//!   tasks by ticket, so load balances dynamically while the borrow checker
//!   still proves the writes disjoint — no `unsafe` anywhere.
//!
//! For *graph-shaped* work where tiles are not independent — greedy sweeps
//! whose per-node step reads neighbor state — the module also provides
//! conflict-avoidance coloring: [`greedy_coloring`] (classic smallest-
//! available-color classes) and [`independent_runs`] (maximal consecutive
//! runs of pairwise non-adjacent indices). Runs of the latter preserve the
//! serial visiting order under a batched schedule, which is how the
//! parallel Louvain kernel in `commgraph-algos` stays bit-for-bit equal to
//! its serial sweep.
//!
//! Determinism contract: the schedulers never change *what* is computed, only
//! *who* computes it. Every kernel built on them computes each output element
//! with a fixed, serial-identical operation order, so results are bit-for-bit
//! identical at any worker count (property-tested in `algos` and the root
//! crate). The cyclic-Jacobi eigensolver is the one exception — its parallel
//! batches change the rotation *trajectory* — and therefore dispatches to the
//! untouched legacy loop when [`Parallelism::is_serial`] holds.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Scheduler-level metrics, resolved from the process-global observability
/// registry (noop until `obs::install_global`). Handles are looked up once
/// per kernel invocation, never per tile.
struct SchedObs {
    /// `commgraph_par_tiles_total{shape}` — tiles/tasks scheduled.
    tiles: obs::Counter,
    /// `commgraph_par_worker_busy_seconds{shape}` — one sample per worker
    /// per invocation; `sum / (workers × wall)` is the utilization.
    busy: obs::Histogram,
}

impl SchedObs {
    fn resolve(shape: &'static str) -> SchedObs {
        let o = obs::global();
        SchedObs {
            tiles: o.counter(
                "commgraph_par_tiles_total",
                "Tiles/tasks scheduled by the data-parallel work queues.",
                &[("shape", shape)],
            ),
            busy: o.histogram(
                "commgraph_par_worker_busy_seconds",
                "Per-worker busy time of one scheduler invocation.",
                &[("shape", shape)],
            ),
        }
    }
}

/// How many worker threads the dense kernels may use.
///
/// The default is [`Parallelism::available`] (one worker per logical core);
/// [`Parallelism::serial`] (`1`) runs everything inline on the calling thread
/// and reproduces the exact legacy behaviour of every kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    workers: usize,
}

impl Parallelism {
    /// Exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Parallelism { workers: workers.max(1) }
    }

    /// Single-threaded: run kernels inline, exactly as the legacy code did.
    pub fn serial() -> Self {
        Parallelism { workers: 1 }
    }

    /// One worker per logical core reported by the OS (1 if unknown).
    pub fn available() -> Self {
        Parallelism::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True when work runs inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

/// Tile work queue over the index space `0..n`.
///
/// Splits `0..n` into tiles of `tile` indices and lets workers claim tiles
/// from an atomic ticket counter until the queue drains. `body` must be safe
/// to run concurrently on disjoint tiles (it only gets `&` access to its
/// environment; use [`for_each_task`] when tiles need `&mut` state).
pub fn for_each_tile<F>(par: Parallelism, n: usize, tile: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let tile = tile.max(1);
    let n_tiles = n.div_ceil(tile);
    let sched = SchedObs::resolve("tile");
    sched.tiles.add(n_tiles as u64);
    if par.is_serial() || n_tiles <= 1 {
        // lint:allow(clock-hygiene) busy-time telemetry only; results are order-insensitive and clock-free
        let t0 = sched.busy.is_enabled().then(Instant::now);
        let mut start = 0;
        while start < n {
            let end = (start + tile).min(n);
            body(start..end);
            start = end;
        }
        if let Some(t0) = t0 {
            sched.busy.record(t0.elapsed().as_secs_f64());
        }
        return;
    }
    let workers = par.workers().min(n_tiles);
    let next = AtomicUsize::new(0);
    let (next, body, sched) = (&next, &body, &sched);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move || {
                // lint:allow(clock-hygiene) busy-time telemetry only; results are order-insensitive and clock-free
                let t0 = sched.busy.is_enabled().then(Instant::now);
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= n_tiles {
                        break;
                    }
                    let start = t * tile;
                    body(start..(start + tile).min(n));
                }
                if let Some(t0) = t0 {
                    sched.busy.record(t0.elapsed().as_secs_f64());
                }
            });
        }
    });
}

/// Task work queue: run `body` once per task, distributing tasks over
/// workers via an atomic ticket counter.
///
/// Tasks commonly carry disjoint `&mut` row tiles (from `chunks_mut` or
/// iterated `split_at_mut`), which is what makes mutable parallel fills
/// expressible without `unsafe`: ownership of each tile moves into exactly
/// one `body` invocation. Each task slot is locked exactly once, so the
/// mutexes are uncontended bookkeeping, not a synchronization hot spot.
pub fn for_each_task<T, F>(par: Parallelism, tasks: Vec<T>, body: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let sched = SchedObs::resolve("task");
    sched.tiles.add(tasks.len() as u64);
    if par.is_serial() || tasks.len() <= 1 {
        // lint:allow(clock-hygiene) busy-time telemetry only; results are order-insensitive and clock-free
        let t0 = sched.busy.is_enabled().then(Instant::now);
        for t in tasks {
            body(t);
        }
        if let Some(t0) = t0 {
            sched.busy.record(t0.elapsed().as_secs_f64());
        }
        return;
    }
    let workers = par.workers().min(tasks.len());
    let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let (slots, next, body, sched) = (&slots, &next, &body, &sched);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move || {
                // lint:allow(clock-hygiene) busy-time telemetry only; results are order-insensitive and clock-free
                let t0 = sched.busy.is_enabled().then(Instant::now);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    // Each slot is locked exactly once; a poisoned slot can
                    // only mean another worker unwound mid-`body`, and the
                    // task inside is still intact — recover it.
                    let task =
                        slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
                    if let Some(task) = task {
                        body(task);
                    }
                }
                if let Some(t0) = t0 {
                    sched.busy.record(t0.elapsed().as_secs_f64());
                }
            });
        }
    });
}

/// Greedy graph coloring in index order: `color[u]` is the smallest color
/// not used by any already-colored neighbor of `u`.
///
/// `neighbors(u)` yields the indices adjacent to `u` (out-of-range and
/// self entries are ignored). The coloring is proper — adjacent indices
/// never share a color — and deterministic, so color classes can serve as
/// conflict-free concurrent move batches (nodes of one class are pairwise
/// non-adjacent). This is the relaxed-determinism building block; the
/// Louvain kernel uses the stricter [`independent_runs`] so its reduction
/// order can match the serial sweep exactly.
pub fn greedy_coloring<I, F>(n: usize, mut neighbors: F) -> Vec<usize>
where
    F: FnMut(usize) -> I,
    I: IntoIterator<Item = usize>,
{
    let mut color = vec![usize::MAX; n];
    // stamp[c] == u marks color c as taken by a neighbor of the current u.
    let mut stamp: Vec<usize> = Vec::new();
    for u in 0..n {
        for v in neighbors(u) {
            if v < n && v != u && color[v] != usize::MAX {
                let c = color[v];
                if c >= stamp.len() {
                    stamp.resize(c + 1, usize::MAX);
                }
                stamp[c] = u;
            }
        }
        let mut c = 0;
        while c < stamp.len() && stamp[c] == u {
            c += 1;
        }
        color[u] = c;
    }
    color
}

/// Greedy *interval* coloring: partition `0..n` into maximal consecutive
/// runs whose members are pairwise non-adjacent under `neighbors`.
///
/// Each run is an independent set, so run members can be processed
/// concurrently without read/write conflicts on neighbor state — and
/// because the runs are consecutive index intervals applied in order, a
/// serial reduction over them visits indices in exactly `0..n` order.
/// That is what lets a parallel greedy sweep (Louvain's local-move phase)
/// reproduce the serial sweep bit-for-bit: within a run, no member's
/// neighborhood is touched by the other members' moves.
///
/// Runs cover `0..n` exactly once; self edges and out-of-range entries are
/// ignored. `independent_runs(0, ..)` is empty.
pub fn independent_runs<I, F>(n: usize, mut neighbors: F) -> Vec<Range<usize>>
where
    F: FnMut(usize) -> I,
    I: IntoIterator<Item = usize>,
{
    let mut runs = Vec::new();
    if n == 0 {
        return runs;
    }
    // blocked[v]: v is adjacent to some member of the current run.
    let mut blocked = vec![false; n];
    let mut marked: Vec<usize> = Vec::new();
    let mut start = 0usize;
    for u in 0..n {
        if blocked[u] {
            runs.push(start..u);
            start = u;
            for &v in &marked {
                blocked[v] = false;
            }
            marked.clear();
        }
        for v in neighbors(u) {
            if v < n && v != u && !blocked[v] {
                blocked[v] = true;
                marked.push(v);
            }
        }
    }
    runs.push(start..n);
    runs
}

/// Parallel map preserving input order: `out[i] = f(&items[i])`.
///
/// Items are processed in contiguous tiles; each output element is produced
/// by exactly one invocation of `f`, so the result is identical at any
/// worker count.
pub fn par_map<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let tile = tile_size(n, par);
    // One owned Vec per tile: each task fills its own buffer completely,
    // so reassembly is a flatten — no placeholder slots to unwrap.
    let mut chunks: Vec<Vec<U>> = (0..n.div_ceil(tile)).map(|_| Vec::new()).collect();
    let tasks: Vec<(usize, &mut Vec<U>)> =
        chunks.iter_mut().enumerate().map(|(t, buf)| (t * tile, buf)).collect();
    for_each_task(par, tasks, |(start, buf)| {
        *buf = items[start..(start + tile).min(n)].iter().map(&f).collect();
    });
    chunks.into_iter().flatten().collect()
}

/// A reasonable tile size: enough tiles per worker for dynamic balancing
/// without drowning in per-task overhead.
pub fn tile_size(n: usize, par: Parallelism) -> usize {
    n.div_ceil(par.workers() * 4).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn knob_defaults_and_clamps() {
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::new(0).workers(), 1);
        assert!(Parallelism::available().workers() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::available());
    }

    #[test]
    fn tiles_cover_index_space_exactly_once() {
        for workers in [1, 2, 5] {
            let seen = AtomicU64::new(0);
            for_each_tile(Parallelism::new(workers), 64, 7, |r| {
                for i in r {
                    seen.fetch_add(1 << i, Ordering::Relaxed);
                }
            });
            assert_eq!(seen.load(Ordering::Relaxed), u64::MAX, "{workers} workers");
        }
    }

    #[test]
    fn tasks_run_exactly_once_with_mut_tiles() {
        for workers in [1, 2, 8] {
            let mut data = vec![0u32; 100];
            let tasks: Vec<(usize, &mut [u32])> =
                data.chunks_mut(9).enumerate().map(|(t, c)| (t * 9, c)).collect();
            for_each_task(Parallelism::new(workers), tasks, |(start, chunk)| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v += (start + k) as u32;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
        }
    }

    #[test]
    fn par_map_preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 16] {
            assert_eq!(par_map(Parallelism::new(workers), &items, |x| x * x), expect);
        }
    }

    #[test]
    fn scheduler_reports_to_a_global_registry() {
        let r = std::sync::Arc::new(obs::Registry::new());
        // First install wins process-wide; either way `r` only observes the
        // scheduler when this test's install succeeded.
        if obs::install_global(r.clone()) {
            for_each_tile(Parallelism::new(2), 64, 8, |_| {});
            let tiles = r.counter("commgraph_par_tiles_total", "", &[("shape", "tile")]);
            assert!(tiles.get() >= 8, "8 tiles scheduled");
            let busy = r.histogram("commgraph_par_worker_busy_seconds", "", &[("shape", "tile")]);
            assert!(busy.count() >= 1, "worker busy time recorded");
        }
    }

    /// Deterministic scale-free-ish adjacency for the coloring tests.
    fn test_adjacency(n: usize) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for u in 0..n {
            // Ring + a couple of long chords.
            let peers = [(u + 1) % n, (u + n - 1) % n, (u * 7 + 3) % n, (u / 2)];
            for &v in &peers {
                if v != u && !adj[u].contains(&v) {
                    adj[u].push(v);
                    adj[v].push(u);
                }
            }
        }
        adj
    }

    #[test]
    fn greedy_coloring_is_proper_and_deterministic() {
        let adj = test_adjacency(64);
        let color = greedy_coloring(64, |u| adj[u].iter().copied());
        for u in 0..64 {
            for &v in &adj[u] {
                assert_ne!(color[u], color[v], "edge ({u},{v}) shares a color");
            }
        }
        assert_eq!(color, greedy_coloring(64, |u| adj[u].iter().copied()));
        // Greedy uses at most max-degree + 1 colors.
        let max_deg = adj.iter().map(Vec::len).max().unwrap();
        assert!(color.iter().max().unwrap() <= &max_deg);
    }

    #[test]
    fn independent_runs_cover_in_order_and_are_independent() {
        let adj = test_adjacency(64);
        let runs = independent_runs(64, |u| adj[u].iter().copied());
        let flat: Vec<usize> = runs.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(flat, (0..64).collect::<Vec<_>>(), "runs cover 0..n in order");
        for r in &runs {
            for a in r.clone() {
                for b in r.clone() {
                    assert!(a == b || !adj[a].contains(&b), "run members {a},{b} adjacent");
                }
            }
        }
    }

    #[test]
    fn independent_runs_edge_cases() {
        assert!(independent_runs(0, |_| Vec::new()).is_empty());
        // Isolated nodes: one run covering everything.
        assert_eq!(independent_runs(5, |_| Vec::new()), vec![0..5]);
        // A path graph: greedy runs split at every adjacent pair.
        let runs = independent_runs(4, |u| {
            let mut v = Vec::new();
            if u > 0 {
                v.push(u - 1);
            }
            if u + 1 < 4 {
                v.push(u + 1);
            }
            v
        });
        assert_eq!(runs, vec![0..1, 1..2, 2..3, 3..4]);
        // Self-loops never block a run.
        assert_eq!(independent_runs(3, |u| vec![u]), vec![0..3]);
        // A clique degenerates to singleton runs.
        let clique = independent_runs(3, |u| (0..3).filter(move |&v| v != u));
        assert_eq!(clique, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn empty_inputs_are_fine() {
        for_each_tile(Parallelism::new(4), 0, 8, |_| panic!("no tiles"));
        for_each_task(Parallelism::new(4), Vec::<u8>::new(), |_| panic!("no tasks"));
        assert!(par_map(Parallelism::new(4), &[] as &[u8], |&b| b).is_empty());
    }
}
