//! FastICA — the paper's footnote-6 alternative to PCA.
//!
//! "Similar results hold when using independent components, e.g., FastICA,
//! instead of PCA's eigen vectors." This module implements deflationary
//! FastICA with a tanh contrast function: center, whiten into the top-k PCA
//! subspace, then rotate to maximal non-Gaussianity. Reconstruction from k
//! independent components spans the same subspace as k principal components,
//! which is exactly why the footnote's observation holds.

use crate::eigen::eigen_symmetric;
use crate::error::{Error, Result};
use crate::matrix::Matrix;

/// Result of a FastICA decomposition of an `n × m` data matrix into `k`
/// components: `X ≈ mixing · sources + mean`.
#[derive(Debug, Clone)]
pub struct IcaDecomposition {
    /// `n × k` mixing matrix.
    pub mixing: Matrix,
    /// `k × m` source (independent component) matrix.
    pub sources: Matrix,
    /// Per-row means removed before decomposition (length n).
    pub row_means: Vec<f64>,
    /// Fixed-point iterations used per component.
    pub iterations: Vec<usize>,
}

impl IcaDecomposition {
    /// Reconstruct the data matrix from the components.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let mut x = self.mixing.matmul(&self.sources)?;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                x[(i, j)] += self.row_means[i];
            }
        }
        Ok(x)
    }
}

/// Run FastICA extracting `k` components from the rows of `x`.
///
/// Deterministic: component initialization derives from a fixed LCG, so the
/// same input always yields the same decomposition.
pub fn fast_ica(x: &Matrix, k: usize, max_iter: usize) -> Result<IcaDecomposition> {
    let (n, m) = (x.rows(), x.cols());
    if k == 0 || k > n {
        return Err(Error::InvalidArg(format!("k={k} out of range for {n} rows")));
    }
    if m < 2 {
        return Err(Error::InvalidArg("need at least 2 columns of data".into()));
    }

    // Center rows.
    let mut xc = x.clone();
    let mut row_means = vec![0.0; n];
    for i in 0..n {
        let mean = x.row(i).iter().sum::<f64>() / m as f64;
        row_means[i] = mean;
        for j in 0..m {
            xc[(i, j)] -= mean;
        }
    }

    // Whiten: covariance C = Xc Xcᵀ / m, eigendecompose, keep top-k.
    let cov = {
        let xt = xc.transpose();
        let mut c = xc.matmul(&xt)?;
        for v in 0..n {
            for w in 0..n {
                c[(v, w)] /= m as f64;
            }
        }
        // Symmetrize against accumulation noise.
        for v in 0..n {
            for w in (v + 1)..n {
                let avg = 0.5 * (c[(v, w)] + c[(w, v)]);
                c[(v, w)] = avg;
                c[(w, v)] = avg;
            }
        }
        c
    };
    let eig = eigen_symmetric(&cov, 1e-10)?;
    // Whitening matrix K (k × n) = D^{-1/2} Eᵀ over the top-k eigenpairs.
    let mut k_mat = Matrix::zeros(k, n);
    let mut dewhiten = Matrix::zeros(n, k); // E D^{1/2}
    for c in 0..k {
        let lambda = eig.values[c].max(1e-12);
        let s = lambda.sqrt();
        for r in 0..n {
            k_mat[(c, r)] = eig.vectors[(r, c)] / s;
            dewhiten[(r, c)] = eig.vectors[(r, c)] * s;
        }
    }
    let z = k_mat.matmul(&xc)?; // k × m, unit covariance

    // Deflationary fixed-point iteration with g = tanh.
    let mut w_rows: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut iterations = Vec::with_capacity(k);
    let mut lcg = 0x5DEECE66Du64;
    let mut rand_unit = |dim: usize| -> Vec<f64> {
        let mut v = Vec::with_capacity(dim);
        for _ in 0..dim {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            v.push(((lcg >> 33) as f64 / (1u64 << 31) as f64) - 1.0);
        }
        normalize(&mut v);
        v
    };

    for comp in 0..k {
        let mut w = rand_unit(k);
        let mut used = max_iter;
        for it in 0..max_iter {
            let mut w_new = vec![0.0; k];
            let mut g_prime_mean = 0.0;
            for col in 0..m {
                let mut proj = 0.0;
                for r in 0..k {
                    proj += w[r] * z[(r, col)];
                }
                let g = proj.tanh();
                let gp = 1.0 - g * g;
                g_prime_mean += gp;
                for r in 0..k {
                    w_new[r] += z[(r, col)] * g;
                }
            }
            let mf = m as f64;
            g_prime_mean /= mf;
            for r in 0..k {
                w_new[r] = w_new[r] / mf - g_prime_mean * w[r];
            }
            // Deflation: orthogonalize against already-found components.
            for prev in &w_rows {
                let dot: f64 = w_new.iter().zip(prev).map(|(a, b)| a * b).sum();
                for r in 0..k {
                    w_new[r] -= dot * prev[r];
                }
            }
            normalize(&mut w_new);
            let agreement: f64 = w_new.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>().abs();
            w = w_new;
            if (agreement - 1.0).abs() < 1e-8 {
                used = it + 1;
                break;
            }
        }
        iterations.push(used);
        w_rows.push(w);
        let _ = comp;
    }

    // W is k × k (rows = unmixing vectors in whitened space).
    let w_mat = Matrix::from_rows(w_rows);
    let sources = w_mat.matmul(&z)?; // k × m
    let mixing = dewhiten.matmul(&w_mat.transpose())?; // n × k

    Ok(IcaDecomposition { mixing, sources, row_means, iterations })
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    } else if let Some(first) = v.first_mut() {
        *first = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::recon_err;

    /// Mix two clearly non-Gaussian sources (square + sawtooth).
    fn mixed_signals(m: usize) -> Matrix {
        let s1: Vec<f64> = (0..m).map(|t| if (t / 10) % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let s2: Vec<f64> = (0..m).map(|t| ((t % 17) as f64 / 8.5) - 1.0).collect();
        let rows = vec![
            s1.iter().zip(&s2).map(|(a, b)| 2.0 * a + 0.5 * b + 1.0).collect(),
            s1.iter().zip(&s2).map(|(a, b)| -1.0 * a + 1.5 * b - 2.0).collect(),
            s1.iter().zip(&s2).map(|(a, b)| 0.7 * a - 0.9 * b + 0.5).collect(),
        ];
        Matrix::from_rows(rows)
    }

    #[test]
    fn reconstruction_with_full_rank_is_near_exact() {
        let x = mixed_signals(400);
        // Data is rank 2 (two sources): k=2 should reconstruct ~perfectly.
        let d = fast_ica(&x, 2, 500).unwrap();
        let r = d.reconstruct().unwrap();
        let err = recon_err(&x, &r).unwrap();
        assert!(err < 1e-6, "rank-2 mix must reconstruct from 2 components, err {err}");
    }

    #[test]
    fn sources_are_decorrelated() {
        let x = mixed_signals(600);
        let d = fast_ica(&x, 2, 500).unwrap();
        let m = d.sources.cols() as f64;
        let (s0, s1) = (d.sources.row(0), d.sources.row(1));
        let corr: f64 = s0.iter().zip(s1).map(|(a, b)| a * b).sum::<f64>() / m;
        let v0: f64 = s0.iter().map(|a| a * a).sum::<f64>() / m;
        let v1: f64 = s1.iter().map(|a| a * a).sum::<f64>() / m;
        let rho = corr / (v0.sqrt() * v1.sqrt());
        assert!(rho.abs() < 0.1, "components should be decorrelated, rho={rho}");
    }

    #[test]
    fn recovers_nongaussian_source_shape() {
        let x = mixed_signals(800);
        let d = fast_ica(&x, 2, 500).unwrap();
        // One recovered source must correlate strongly with the square wave.
        let square: Vec<f64> =
            (0..800).map(|t| if (t / 10) % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let best = (0..2)
            .map(|c| {
                let s = d.sources.row(c);
                let m = s.len() as f64;
                let num: f64 = s.iter().zip(&square).map(|(a, b)| a * b).sum::<f64>() / m;
                let den = (s.iter().map(|a| a * a).sum::<f64>() / m).sqrt();
                (num / den).abs()
            })
            .fold(0.0f64, f64::max);
        assert!(best > 0.9, "a component must match the square source, best |corr| {best}");
    }

    #[test]
    fn deterministic_across_runs() {
        let x = mixed_signals(300);
        let a = fast_ica(&x, 2, 300).unwrap();
        let b = fast_ica(&x, 2, 300).unwrap();
        assert_eq!(a.sources.data(), b.sources.data());
    }

    #[test]
    fn invalid_k_rejected() {
        let x = mixed_signals(100);
        assert!(fast_ica(&x, 0, 100).is_err());
        assert!(fast_ica(&x, 4, 100).is_err(), "k > rows");
    }

    #[test]
    fn tiny_data_rejected() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0]]);
        assert!(fast_ica(&x, 1, 100).is_err());
    }
}
