//! Linear-algebra error type.

use std::fmt;

/// Convenience alias using the crate [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by matrix operations and decompositions.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Operand shapes do not line up.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left operand shape `(rows, cols)`.
        left: (usize, usize),
        /// Right operand shape `(rows, cols)`.
        right: (usize, usize),
    },
    /// An operation required a symmetric matrix but got an asymmetric one.
    NotSymmetric {
        /// Worst absolute asymmetry found.
        max_asymmetry: f64,
    },
    /// An iterative method failed to converge.
    NoConvergence {
        /// Which algorithm.
        algorithm: &'static str,
        /// Iterations/sweeps performed.
        iterations: usize,
    },
    /// A parameter was out of range (e.g. k > n).
    InvalidArg(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, left, right } => {
                write!(f, "shape mismatch in {op}: {left:?} vs {right:?}")
            }
            Error::NotSymmetric { max_asymmetry } => {
                write!(f, "matrix is not symmetric (max asymmetry {max_asymmetry:.3e})")
            }
            Error::NoConvergence { algorithm, iterations } => {
                write!(f, "{algorithm} did not converge after {iterations} iterations")
            }
            Error::InvalidArg(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = Error::ShapeMismatch { op: "matmul", left: (2, 3), right: (4, 5) };
        assert!(e.to_string().contains("matmul"));
        assert!(Error::NoConvergence { algorithm: "jacobi", iterations: 3 }
            .to_string()
            .contains("jacobi"));
    }
}
