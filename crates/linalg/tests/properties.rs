//! Property-based tests for the linear-algebra kernels.

use linalg::eigen::eigen_symmetric;
use linalg::ica::fast_ica;
use linalg::pca::{pca_sweep, recon_err, recon_err_profile};
use linalg::quantize::{bucketize, log_normalize};
use linalg::Matrix;
use proptest::prelude::*;

/// Arbitrary symmetric matrix with entries in [-scale, scale].
fn arb_symmetric() -> impl Strategy<Value = Matrix> {
    (2usize..12, 0.1f64..1000.0).prop_flat_map(|(n, scale)| {
        prop::collection::vec(-1.0f64..1.0, n * (n + 1) / 2).prop_map(move |upper| {
            let mut m = Matrix::zeros(n, n);
            let mut it = upper.into_iter();
            for i in 0..n {
                for j in i..n {
                    let v = it.next().expect("enough entries") * scale;
                    m[(i, j)] = v;
                    m[(j, i)] = v;
                }
            }
            m
        })
    })
}

/// Arbitrary non-negative symmetric matrix (byte-matrix-like).
fn arb_nonneg_symmetric() -> impl Strategy<Value = Matrix> {
    arb_symmetric().prop_map(|m| {
        let n = m.rows();
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] = m[(i, j)].abs();
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full-rank reconstruction recovers the matrix; eigenvectors are
    /// orthonormal; eigenpairs satisfy M v = λ v.
    #[test]
    fn eigen_soundness(m in arb_symmetric()) {
        let n = m.rows();
        let d = eigen_symmetric(&m, 1e-11).expect("symmetric by construction");
        // Reconstruction.
        let full = d.reconstruct(n).expect("k = n is valid");
        let scale = m.frobenius().max(1.0);
        prop_assert!(m.sub(&full).unwrap().frobenius() / scale < 1e-7);
        // Orthonormality.
        let vtv = d.vectors.transpose().matmul(&d.vectors).unwrap();
        prop_assert!(vtv.sub(&Matrix::identity(n)).unwrap().frobenius() < 1e-7);
        // Definition, every pair.
        for c in 0..n {
            for i in 0..n {
                let mv: f64 = (0..n).map(|j| m[(i, j)] * d.vectors[(j, c)]).sum();
                prop_assert!(
                    (mv - d.values[c] * d.vectors[(i, c)]).abs() < 1e-6 * scale.max(1.0),
                    "Mv = λv violated"
                );
            }
        }
        // Sorted by |λ| descending.
        for w in d.values.windows(2) {
            prop_assert!(w[0].abs() + 1e-12 >= w[1].abs());
        }
    }

    /// Trace is preserved: Σλ = tr(M).
    #[test]
    fn eigen_preserves_trace(m in arb_symmetric()) {
        let d = eigen_symmetric(&m, 1e-11).expect("symmetric");
        let trace: f64 = (0..m.rows()).map(|i| m[(i, i)]).sum();
        let sum: f64 = d.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * m.frobenius().max(1.0));
    }

    /// The error profile starts at 1 (k=0, nonzero matrix), ends at ~0
    /// (k=n), and pca_sweep agrees with it pointwise.
    #[test]
    fn pca_profile_endpoints(m in arb_nonneg_symmetric()) {
        prop_assume!(m.abs_sum() > 1e-6);
        let n = m.rows();
        let d = eigen_symmetric(&m, 1e-11).expect("symmetric");
        let profile = recon_err_profile(&d, &m).expect("aligned");
        prop_assert_eq!(profile.len(), n + 1);
        prop_assert!((profile[0] - 1.0).abs() < 1e-9, "k=0 misses everything");
        prop_assert!(profile[n] < 1e-6, "k=n is exact, got {}", profile[n]);
        // pca_sweep decomposes at its own tolerance; allow small numeric
        // divergence from our tighter-tolerance profile.
        let sweep = pca_sweep(&m, &[0, 1, n]).expect("square");
        for e in &sweep.errors {
            prop_assert!((e.err - profile[e.k]).abs() < 1e-6, "k={} {} vs {}", e.k, e.err, profile[e.k]);
        }
    }

    /// recon_err is a scaled L1 distance: zero iff equal, symmetric wrt
    /// the difference's sign.
    #[test]
    fn recon_err_axioms(m in arb_nonneg_symmetric()) {
        prop_assume!(m.abs_sum() > 1e-9);
        prop_assert_eq!(recon_err(&m, &m).unwrap(), 0.0);
        let zero = Matrix::zeros(m.rows(), m.cols());
        prop_assert!((recon_err(&m, &zero).unwrap() - 1.0).abs() < 1e-12);
    }

    /// FastICA reconstruction with all components is near-exact whenever the
    /// data has enough columns.
    #[test]
    fn ica_full_rank_reconstructs(
        rows in 2usize..5,
        cols in 24usize..64,
        seed_vals in prop::collection::vec(-10.0f64..10.0, 8),
    ) {
        // Build deterministic non-Gaussian-ish data from the seeds.
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        let s = seed_vals[(r * 3 + c) % seed_vals.len()];
                        let saw = ((c as f64 * (r as f64 + 1.3)) % 7.0) - 3.5;
                        s + saw
                    })
                    .collect()
            })
            .collect();
        let m = Matrix::from_rows(data);
        let d = fast_ica(&m, rows, 400).expect("valid dims");
        let r = d.reconstruct().expect("shapes align");
        let denom = m.abs_sum().max(1.0);
        prop_assert!(
            m.sub(&r).unwrap().abs_sum() / denom < 1e-6,
            "full-rank ICA must reconstruct"
        );
    }

    /// Quantization: outputs bounded, monotone wrt the input, max maps to 1.
    #[test]
    fn quantize_axioms(m in arb_nonneg_symmetric()) {
        prop_assume!(m.abs_sum() > 0.0);
        let norm = log_normalize(&m, 6.0);
        let max_in = m.data().iter().cloned().fold(0.0f64, f64::max);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert!((0.0..=1.0).contains(&norm[(i, j)]));
                if m[(i, j)] == max_in {
                    prop_assert_eq!(norm[(i, j)], 1.0);
                }
            }
        }
        let buckets = bucketize(&norm, 10);
        for row in &buckets {
            for &b in row {
                prop_assert!(b < 10);
            }
        }
    }
}
