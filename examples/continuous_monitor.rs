//! The always-on security loop: learn a baseline from live telemetry, then
//! watch every window for policy violations, anomalies, and structural
//! drift — with a mid-stream breach to catch. The monitor runs traced: the
//! moment the first incident fires (a policy violation or an anomalous
//! window), the flight recorder is dumped so the spans leading up to the
//! alert are on screen — the "what was the pipeline doing right before
//! this?" view an operator wants at page time.
//!
//! ```sh
//! cargo run --release --example continuous_monitor
//! ```

use commgraph::cloudsim::attack::{AttackKind, AttackScenario};
use commgraph::cloudsim::{ClusterPreset, SimConfig, Simulator};
use commgraph::monitor::{MonitorConfig, MonitorEvent, SecurityMonitor};
use commgraph::obs::alert::query_pack;
use commgraph::obs::{
    trace, AlertEngine, Obs, RecordingRule, Registry, Scraper, Tracer, Tsdb, TsdbConfig,
};
use std::sync::Arc;

fn main() {
    let preset = ClusterPreset::MicroserviceBench;
    let topo = preset.topology_scaled(0.5);
    let breached = topo.ip_of(topo.role_named("frontend").expect("role").id, 0).expect("slot 0");

    // Two hours of traffic; an attacker lands in minute 80.
    let sim_cfg = SimConfig {
        attacks: vec![AttackScenario {
            kind: AttackKind::LateralMovement,
            start_min: 80,
            duration_min: 30,
            breached,
            intensity: 6,
        }],
        ..preset.default_sim_config()
    };
    let mut sim = Simulator::new(topo, sim_cfg).expect("preset is valid");
    let monitored =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();

    // 20-minute windows: three to learn, the rest enforced. The monitor is
    // fully instrumented: metrics land in `registry`, window spans in the
    // flight recorder.
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::new(512));
    let obs = Obs::new(registry.clone()).with_tracer(tracer.clone());
    // Metrics history + alerting: each closed window is one logical tick.
    let store = Arc::new(Tsdb::new(TsdbConfig::default()));
    let scraper = Arc::new(Scraper::new(registry, store.clone()));
    // Each scrape also evaluates this recording rule, materialising the
    // per-window violation delta as its own series in the store.
    scraper.add_recording_rule(
        RecordingRule::new(
            "monitor:violations:delta1",
            "delta(commgraph_monitor_violations_total[1])",
        )
        .expect("rule expression parses"),
    );
    let alerts = Arc::new(AlertEngine::new(obs.clone()));
    let mut monitor = SecurityMonitor::with_obs(
        MonitorConfig { window_len: 1200, learn_windows: 3, ..Default::default() },
        monitored,
        obs.clone(),
    );
    monitor.max_violation_events = 3; // headline examples only

    // The expression twin of the default pack: the freshness SLO is sized by
    // expected records per tick; each WindowSummary below advances one tick.
    alerts.add_rules(query_pack(2000.0).expect("pack expressions parse"));
    let mut tick = 0u64;

    println!("streaming two hours of '{}' telemetry through the monitor …\n", preset.name());
    let root = obs.trace_root("monitor_run");
    let mut events = Vec::new();
    let mut recorder_dumped = false;
    sim.run(120, |_, batch| {
        for e in monitor.ingest(batch) {
            if matches!(e, MonitorEvent::WindowSummary { .. }) {
                tick += 1;
                scraper.scrape(tick);
                alerts.evaluate(tick, &store);
            }
            // First incident → dump the flight recorder: the trace of every
            // window closed so far, with the anomaly event on its span.
            let incident = matches!(e, MonitorEvent::PolicyViolation(_))
                || matches!(e, MonitorEvent::WindowSummary { anomalous: true, .. });
            if incident && !recorder_dumped {
                recorder_dumped = true;
                println!("⚠ first incident — dumping the flight recorder:\n");
                print!("{}", trace::render_tree(&tracer.dump()));
                println!();
            }
            events.push(e);
        }
    });
    events.extend(monitor.flush());
    drop(root);

    for e in &events {
        match e {
            MonitorEvent::BaselineReady { windows, segments, allow_rules, anomaly_threshold } => {
                println!(
                    "[baseline] learned from {windows} windows: {segments} µsegments, \
                     {allow_rules} allow rules, anomaly threshold {anomaly_threshold:.2}\n"
                );
            }
            MonitorEvent::WindowSummary {
                window_start,
                records,
                violations,
                anomaly_score,
                anomalous,
                new_edges,
                gone_edges,
            } => {
                println!(
                    "[t+{:>3}m] {:>7} records | {:>5} violations | anomaly {:>5.2}{} | Δedges +{new_edges}/-{gone_edges}",
                    window_start / 60,
                    records,
                    violations,
                    anomaly_score,
                    if *anomalous { "  ⚠ ANOMALY" } else { "" },
                );
            }
            MonitorEvent::PolicyViolation(v) => {
                println!(
                    "         ⚠ {} -> {} port {} ({:?})",
                    v.local_ip, v.remote_ip, v.port, v.verdict
                );
            }
        }
    }
    println!("\nthe attack lands at t+80m: the policy layer flags its probe flows");
    println!("immediately (lateral probes are tiny — far too small to disturb the");
    println!("byte-matrix eigenstructure, so the anomaly score stays flat; bulk");
    println!("exfiltration is what trips that detector — see exp_anomaly).");

    let firing = alerts.firing();
    if firing.is_empty() {
        println!("\nno metric alerts firing after {tick} ticks");
    } else {
        println!("\nmetric alerts firing after {tick} ticks:");
        for a in firing {
            println!("  ⚠ {} [{}] since tick {}", a.rule, a.severity, a.since_tick);
        }
    }

    // Exit report: the questions an on-call engineer asks of the history,
    // phrased as query expressions and evaluated in-process against the
    // scraped TSDB (the HTTP twin of this is /query_range — see the
    // live_dashboard example).
    println!("\n── named queries over the scraped history ──────────────────────");
    let named_queries: [(&str, &str); 3] = [
        ("violations per window", "delta(commgraph_monitor_violations_total[1])"),
        (
            "anomaly score, 3-window max",
            "max_over_time(commgraph_monitor_anomaly_score{field=\"max\"}[3])",
        ),
        ("recorded violation delta", "monitor:violations:delta1"),
    ];
    for (label, expr) in named_queries {
        match commgraph::obs::query::query_range_json(&store, expr, 1, tick, 1) {
            Ok(body) => println!("{label}\n  expr: {expr}\n  {body}"),
            Err(e) => println!("{label}\n  expr: {expr}\n  error: {e}"),
        }
    }
}
