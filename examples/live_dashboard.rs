//! A live "what changed?" dashboard over streaming telemetry — Figure 5 as
//! a terminal app. Simulates six hours of the K8s PaaS cluster with a flash
//! crowd and a tenant scale-out, builds one graph per hour through the
//! streaming pipeline, and prints an hourly changes digest plus an ASCII
//! heatmap of the final byte matrix. The run is fully instrumented and
//! traced: it boots the introspection server on an ephemeral port, scrapes
//! its own `/metrics` over real HTTP, and prints the flight-recorder span
//! tree (set `COMMGRAPH_LOG=info` to also stream the event log to stderr).
//!
//! ```sh
//! cargo run --release --example live_dashboard
//! COMMGRAPH_LOG=info cargo run --release --example live_dashboard
//! # keep the server up for 60 s to poke it with curl / Perfetto:
//! COMMGRAPH_SERVE_SECS=60 cargo run --release --example live_dashboard
//! #   curl http://<printed addr>/metrics
//! #   curl http://<printed addr>/trace > trace.json   # load in ui.perfetto.dev
//! ```

use commgraph::cloudsim::churn::ChurnPlan;
use commgraph::cloudsim::load::{LoadSchedule, LoadShape};
use commgraph::cloudsim::{ClusterPreset, Simulator};
use commgraph::graph::Facet;
use commgraph::linalg::quantize::{log_normalize, to_ascii};
use commgraph::linalg::Matrix;
use commgraph::obs::alert::query_pack;
use commgraph::obs::{
    trace, AlertEngine, IntrospectionServer, Obs, RecordingRule, Registry, Scraper, Tracer, Tsdb,
    TsdbConfig,
};
use commgraph::pipeline::{Pipeline, PipelineConfig};
use std::io::{Read as _, Write as _};
use std::sync::Arc;

fn main() {
    let preset = ClusterPreset::K8sPaas;
    let scale = 0.25;
    let topo = preset.topology_scaled(scale);
    let web = topo.role_named("tenant2-web").expect("preset role").id;
    let mut cfg = preset.default_sim_config();
    cfg.load = LoadSchedule::steady()
        .with(LoadShape::Diurnal { period_min: 1440.0, amplitude: 0.3, phase_min: 0.0 })
        .with(LoadShape::Spike { start_min: 150, duration_min: 45, factor: 3.5 });
    cfg.churn = ChurnPlan::none().with(200, web, 4);

    println!("streaming 6 hours of '{}' telemetry …\n", preset.name());
    let mut sim = Simulator::new(topo, cfg).expect("preset is valid");
    let monitored = sim
        .ground_truth()
        .ip_roles
        .keys()
        .copied()
        .filter(|ip| ip.octets()[0] == 10)
        .collect::<std::collections::HashSet<_>>();
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::new(2048));
    let obs = Obs::new(registry.clone()).with_tracer(tracer.clone());
    // Metrics history + alerting: every displayed hour is one logical tick —
    // the registry is scraped into the TSDB and the default alert pack is
    // evaluated against the fresh history.
    let store = Arc::new(Tsdb::new(TsdbConfig::default()));
    let scraper = Arc::new(Scraper::new(registry.clone(), store.clone()));
    // A recording rule runs inside every scrape, writing the per-tick
    // watermark progress back into the TSDB as its own queryable series.
    scraper.add_recording_rule(
        RecordingRule::new(
            "pipeline:watermark:delta1",
            "delta(commgraph_ingest_watermark_seconds{source=\"pipeline\"}[1])",
        )
        .expect("rule expression parses"),
    );
    let alerts = Arc::new(AlertEngine::new(obs.clone()));
    let mut pipeline = Pipeline::new(PipelineConfig {
        facet: Facet::Ip,
        window_len: 3600,
        monitored: Some(monitored),
        obs: obs.clone(),
        ..Default::default()
    });
    let root = obs.trace_root("pipeline_run");
    sim.run(6 * 60, |_, batch| pipeline.ingest(batch));
    let out = pipeline.finish().expect("windows arrive in order");
    drop(root);

    println!(
        "{} records total, {:.0} records/min average\n",
        out.total_records,
        out.mean_records_per_minute()
    );
    println!(
        "{:<6} {:>7} {:>7} {:>10} {:>12} {:>11} {:>11} {:>13}",
        "hour",
        "nodes",
        "edges",
        "MB moved",
        "edge-jacc",
        "new edges",
        "gone edges",
        "volume moves"
    );
    let seq = &out.sequence;
    // The expression-based twin of the default alert pack: same rules, same
    // transitions, but every condition is a query the engine parses and
    // evaluates per tick.
    alerts.add_rules(
        query_pack(out.total_records as f64 / seq.len().max(1) as f64)
            .expect("pack expressions parse"),
    );
    for (i, g) in seq.graphs().iter().enumerate() {
        let tick = i as u64 + 1;
        scraper.scrape(tick);
        alerts.evaluate(tick, &store);
        let (ej, added, removed, changed) = if i == 0 {
            (1.0, 0, 0, 0)
        } else {
            let d = seq.diff_adjacent(i - 1, 3.0).expect("adjacent pair");
            (d.edge_jaccard, d.added_edges.len(), d.removed_edges.len(), d.changed_edges.len())
        };
        let mut notes = Vec::new();
        if changed > 50 {
            notes.push("⚠ volume shift");
        }
        if added > 100 {
            notes.push("⚠ new structure");
        }
        println!(
            "{:<6} {:>7} {:>7} {:>10.0} {:>12.3} {:>11} {:>11} {:>13}  {}",
            format!("+{i}"),
            g.node_count(),
            g.edge_count(),
            g.totals().bytes() as f64 / 1e6,
            ej,
            added,
            removed,
            changed,
            notes.join(" ")
        );
    }

    let p = seq.persistence(3.0);
    println!("\nmean hour-over-hour edge similarity: {:.3}", p.mean_edge_jaccard);
    if let Some(t) = p.most_changed_transition {
        println!("biggest change: hour +{} → +{} (the flash crowd / scale-out)", t, t + 1);
    }

    // Final-hour matrix, Figure 4 style.
    let last = seq.graphs().last().expect("six windows");
    let raw = Matrix::from_rows(last.byte_matrix(4096).expect("collapsed scale"));
    println!("\nfinal-hour byte matrix (log scale, darker = more bytes):");
    print!("{}", to_ascii(&downsample(&log_normalize(&raw, 6.0), 56)));

    obs.event(
        commgraph::obs::Level::Info,
        "dashboard",
        "run complete",
        &[("records", out.total_records.to_string()), ("windows", seq.len().to_string())],
    );

    // Boot the real introspection server and scrape ourselves over HTTP —
    // this is exactly what a Prometheus scraper (or curl) would see.
    let server = IntrospectionServer::new(registry.clone())
        .with_tracer(tracer.clone())
        .with_tsdb(store.clone())
        .with_alerts(alerts.clone())
        .start("127.0.0.1:0")
        .expect("bind an ephemeral port");
    println!("\nintrospection server listening on http://{}", server.addr());

    // Instead of dumping the raw /metrics text, ask the query engine the
    // questions a dashboard actually asks — each one served over real HTTP
    // via /query_range, exactly as curl would see it.
    println!("── named queries (served over /query_range) ────────────────────");
    let named_queries: [(&str, &str); 4] = [
        (
            "ingest watermark (high-water telemetry seconds)",
            "commgraph_ingest_watermark_seconds{source=\"pipeline\"}",
        ),
        (
            "window roll-lag p99 (seconds)",
            "histogram_quantile(0.99, commgraph_window_roll_lag_seconds{source=\"pipeline\"})",
        ),
        (
            "late-record drop ratio",
            "commgraph_pipeline_dropped_late_records_total \
             / clamp_min(commgraph_pipeline_late_records_total, 1)",
        ),
        ("recorded per-tick watermark progress", "pipeline:watermark:delta1"),
    ];
    for (label, expr) in named_queries {
        let body = http_get(
            server.addr(),
            &format!("/query_range?expr={}&from=1&to={}&step=1", url_encode(expr), seq.len()),
        );
        println!("{label}\n  expr: {expr}\n  {}", body.trim_end());
    }
    println!();

    println!("── /alerts (scraped over HTTP) ─────────────────────────────────");
    println!("{}", http_get(server.addr(), "/alerts"));

    println!("── flight recorder (/trace.txt) ────────────────────────────────");
    print!("{}", trace::render_tree(&tracer.dump()));

    // Leave the endpoints up for interactive poking when asked to.
    if let Some(secs) =
        std::env::var("COMMGRAPH_SERVE_SECS").ok().and_then(|s| s.parse::<u64>().ok())
    {
        println!(
            "\nserving http://{} for {secs}s — try /metrics, /query?name=..., /alerts, /slo, /trace",
            server.addr()
        );
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
    server.shutdown();

    let firing = alerts.firing();
    if firing.is_empty() {
        println!("\nno alerts firing after {} ticks", seq.len());
    } else {
        println!("\nalerts firing after {} ticks:", seq.len());
        for a in firing {
            println!("  ⚠ {} [{}] since tick {}", a.rule, a.severity, a.since_tick);
        }
    }
}

/// Percent-encode an expression for use as a `/query_range?expr=` value.
fn url_encode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'(' | b')' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Minimal HTTP/1.0 GET against our own introspection server.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("server reachable");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    }
}

/// Max-pool to at most `target` rows/cols for terminal display.
fn downsample(m: &Matrix, target: usize) -> Matrix {
    let n = m.rows();
    if n <= target {
        return m.clone();
    }
    let stride = n.div_ceil(target);
    let out_n = n.div_ceil(stride);
    let mut out = Matrix::zeros(out_n, out_n);
    for i in 0..n {
        for j in 0..n {
            if m[(i, j)] > out[(i / stride, j / stride)] {
                out[(i / stride, j / stride)] = m[(i, j)];
            }
        }
    }
    out
}
