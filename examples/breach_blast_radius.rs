//! Breach containment: learn µsegmentation from a clean window, then replay
//! a window with an active lateral-movement attack and watch the policies
//! light up — the paper's core security scenario.
//!
//! ```sh
//! cargo run --release --example breach_blast_radius
//! ```

use commgraph::cloudsim::attack::{AttackKind, AttackScenario};
use commgraph::cloudsim::{ClusterPreset, SimConfig, Simulator};
use commgraph::segment::blast::blast_radius;
use commgraph::segment::Verdict;
use commgraph::workbench::Workbench;

fn main() {
    let preset = ClusterPreset::MicroserviceBench;
    let topo = preset.topology_scaled(1.0);

    // ---- Phase 1: learn from a clean hour --------------------------------
    let mut clean_sim =
        Simulator::new(topo.clone(), preset.default_sim_config()).expect("preset is valid");
    let clean = clean_sim.collect(30);
    let monitored = clean_sim
        .ground_truth()
        .ip_roles
        .keys()
        .copied()
        .filter(|ip| ip.octets()[0] == 10)
        .collect();
    let mut wb = Workbench::new(clean, monitored);
    println!(
        "learned: {} µsegments, {} allow rules from the clean window",
        wb.segmentation().len(),
        wb.policy().rule_count()
    );

    // ---- Phase 2: an attacker lands on a frontend replica ----------------
    let breached =
        topo.ip_of(topo.role_named("frontend").expect("role exists").id, 0).expect("slot 0 exists");
    println!("\nbreach: attacker controls {breached}");

    let seg = wb.segmentation().clone();
    let policy = wb.policy().clone();
    let b = blast_radius(&seg, &policy, breached).expect("breached IP is segmented");
    println!(
        "blast radius: {} of {} internal resources directly reachable ({:.0}% — was 100%)",
        b.direct,
        b.unsegmented,
        b.direct_fraction * 100.0
    );
    println!("multi-hop pivoting could reach {} resources", b.transitive);

    // ---- Phase 3: the attack plays out; policies detect it ---------------
    let attack_cfg = SimConfig {
        attacks: vec![AttackScenario {
            kind: AttackKind::LateralMovement,
            start_min: 2,
            duration_min: 20,
            breached,
            intensity: 6,
        }],
        ..preset.default_sim_config()
    };
    let mut attack_sim = Simulator::new(topo, attack_cfg).expect("preset is valid");
    let attacked = attack_sim.collect(25);
    let truth = attack_sim.ground_truth().clone();

    let violations = wb.detect(&attacked);
    let denied =
        violations.iter().filter(|v| matches!(v.verdict, Verdict::DeniedPair { .. })).count();
    let unknown = violations.len() - denied;
    println!("\nreplay: {} records checked against the learned policy", attacked.len());
    println!("  {denied} cross-segment violations (lateral probes blocked by default-deny)");
    println!("  {unknown} unknown-peer violations");

    let attack_flows = truth.attack_flows.len();
    let hits = violations
        .iter()
        .filter(|v| {
            truth.attack_flows.keys().any(|k| {
                k.local_ip == v.local_ip && k.remote_ip == v.remote_ip
                    || k.local_ip == v.remote_ip && k.remote_ip == v.local_ip
            })
        })
        .count();
    println!(
        "  attack coverage: {hits} violations map to the {attack_flows} injected attack flows"
    );
    println!(
        "  ground truth: attacker infected {} machines during the window",
        truth.infected.len()
    );
    println!("\nwith enforcement on, every flagged probe would have been dropped —");
    println!("the breach stays inside one µsegment instead of owning the subscription.");
}
