//! Quickstart: telemetry → communication graph → roles → µsegments, in one
//! page of code.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use commgraph::cloudsim::{ClusterPreset, Simulator};
use commgraph::workbench::Workbench;
use std::collections::HashSet;
use std::net::Ipv4Addr;

fn main() {
    // 1. Get connection summaries. Here: simulate 15 minutes of the
    //    microservices reference cluster. In production these records
    //    arrive as NSG/VPC flow logs with the exact same schema.
    let preset = ClusterPreset::MicroserviceBench;
    let topo = preset.topology_scaled(0.5);
    let mut sim = Simulator::new(topo, preset.default_sim_config()).expect("preset is valid");
    let records = sim.collect(15);
    let monitored: HashSet<Ipv4Addr> =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();
    println!("telemetry: {} connection summaries from {} VMs", records.len(), monitored.len());

    // 2. One Workbench gives you every analysis, lazily computed.
    let mut wb = Workbench::new(records, monitored);

    // 3. The communication graph (heavy-hitters collapsed).
    let g = wb.ip_graph();
    println!(
        "graph: {} nodes, {} edges, {} distinct connections, {:.1} MB exchanged",
        g.node_count(),
        g.edge_count(),
        g.totals().conns,
        g.totals().bytes() as f64 / 1e6
    );

    // 4. Role inference (Jaccard similarity + hierarchical Louvain).
    let roles = wb.roles().clone();
    println!("roles: {} inferred for {} resources", roles.n_roles, roles.labels.len());

    // 5. µsegments and a default-deny policy learned from this window.
    let n_segments = wb.segmentation().len();
    let n_rules = wb.policy().rule_count();
    println!(
        "segmentation: {n_segments} µsegments, {n_rules} allow rules (everything else denied)"
    );

    // 6. What did segmentation buy? Blast-radius reduction.
    let blast = wb.blast_report();
    println!(
        "blast radius: breach reaches {:.1} resources on average (was {}; {:.1}x reduction)",
        blast.mean_direct,
        blast.resources - 1,
        (blast.resources as f64 - 1.0) / blast.mean_direct.max(1.0),
    );

    // 7. Where does the traffic concentrate? (Figure 6 in one line.)
    let ccdf = wb.ccdf();
    if let Some(p) = ccdf.iter().find(|p| p.frac_nodes >= 0.1) {
        println!(
            "traffic skew: the top 10% of nodes carry {:.1}% of all bytes",
            (1.0 - p.ccdf) * 100.0
        );
    }
}
