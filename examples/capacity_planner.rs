//! Capacity planning from flow telemetry (§2.3): where are the bottlenecks,
//! which VMs deserve a bigger SKU, and which pairs belong in one proximity
//! group — plus what the telemetry itself costs to collect and analyze.
//!
//! ```sh
//! cargo run --release --example capacity_planner
//! ```

use commgraph::analytics::cogs::CogsModel;
use commgraph::cloudsim::{ClusterPreset, Simulator};
use commgraph::counterfactual::{
    capacity_plan, flow_sizes, inter_arrivals, proximity_plan_filtered,
};
use commgraph::workbench::Workbench;

fn main() {
    let preset = ClusterPreset::K8sPaas;
    let topo = preset.topology_scaled(0.5);
    let mut sim = Simulator::new(topo, preset.default_sim_config()).expect("preset is valid");
    let minutes = 20;
    let records = sim.collect(minutes);
    let monitored = sim
        .ground_truth()
        .ip_roles
        .keys()
        .copied()
        .filter(|ip| ip.octets()[0] == 10)
        .collect::<std::collections::HashSet<_>>();
    let n_vms = monitored.len();
    let records_per_min = records.len() as f64 / minutes as f64;

    // Flow-level distributions straight from the summaries.
    let sizes = flow_sizes(&records);
    println!("flow sizes across {} flows:", sizes.flows);
    for (q, v) in &sizes.quantiles {
        println!("  p{:<4} {:>12} bytes", (q * 100.0) as u32, v);
    }
    let arrivals = inter_arrivals(&records, 60);
    println!(
        "inter-arrivals: {} active pairs, median gap {:.0}s, {:.0}% continuously busy",
        arrivals.pairs,
        arrivals.median_secs,
        arrivals.continuously_active_frac * 100.0
    );

    // Where to invest: the CCDF head.
    let mut wb = Workbench::new(records, monitored);
    let g = wb.ip_graph();
    println!("\ncapacity advice (nodes above 2% of cluster bytes):");
    for a in capacity_plan(g, 0.02) {
        println!("  {:<18} {:>6.1}% of bytes → {}", a.node, a.byte_share * 100.0, a.action);
    }
    println!("\nproximity advice (heaviest placeable pairs):");
    // Only resources inside the subscription can be moved.
    let placeable =
        |n: &commgraph::graph::NodeId| n.ip().map(|ip| ip.octets()[0] == 10).unwrap_or(false);
    for p in proximity_plan_filtered(g, 5, placeable) {
        println!("  {:<18} <-> {:<18} {:>8.1} MB → {}", p.a, p.b, p.bytes as f64 / 1e6, p.action);
    }

    // And what observing all of this costs.
    let model = CogsModel::paper_defaults(2_000_000.0);
    let cogs = model.assess(n_vms, records_per_min);
    println!(
        "\ntelemetry cost: {:.2} GB/day collected (${:.2}/day), {:.4} analytics \
         VM-equivalents\n  ⇒ ${:.5} per monitored VM-hour ({:.2}% of the VM price; target ≤ 4%)",
        cogs.gb_per_day,
        cogs.collection_usd_per_day,
        cogs.analytics_vms_fractional,
        cogs.surcharge_per_vm_hour_usd,
        cogs.surcharge_fraction_of_vm_price * 100.0
    );
}
