//! The one-shot subscription security report — what the paper's SaaS tier
//! (Figure 8) would deliver to a customer at the end of every window.
//!
//! ```sh
//! cargo run --release --example security_report
//! ```

use commgraph::cloudsim::{ClusterPreset, Simulator};
use commgraph::report::security_report;
use commgraph::workbench::Workbench;

fn main() {
    let preset = ClusterPreset::K8sPaas;
    let topo = preset.topology_scaled(0.5);
    let mut sim = Simulator::new(topo, preset.default_sim_config()).expect("preset is valid");
    let records = sim.collect(20);
    let monitored =
        sim.ground_truth().ip_roles.keys().copied().filter(|ip| ip.octets()[0] == 10).collect();

    let mut wb = Workbench::new(records, monitored);
    let report = security_report(&mut wb);

    println!("{}", report.to_text());
    let path = std::env::temp_dir().join("commgraph_security_report.json");
    std::fs::write(&path, report.to_json()).expect("write report");
    println!("machine-readable copy: {}", path.display());
}
