//! Multi-faceted views of one telemetry stream: the same records rendered
//! as an IP graph, an IP-port graph, and a *service* graph — plus per-edge
//! time series showing which conversations breathe together.
//!
//! The paper's point about facets: "one communication trace may be
//! represented as many different communication graphs … choosing which
//! graph to construct requires networking insights."
//!
//! ```sh
//! cargo run --release --example service_topology
//! ```

use commgraph::cloudsim::{ClusterPreset, Simulator};
use commgraph::graph::timeseries::EdgeSeriesBuilder;
use commgraph::graph::{Facet, GraphBuilder};
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn main() {
    let preset = ClusterPreset::MicroserviceBench;
    let topo = preset.topology_scaled(1.0);
    let mut sim = Simulator::new(topo, preset.default_sim_config()).expect("preset is valid");
    let minutes = 15;
    let records = sim.collect(minutes);
    let truth = sim.ground_truth().clone();
    println!("{} connection summaries over {minutes} minutes\n", records.len());

    // ---- One stream, three graphs ----------------------------------------
    // The service facet resolves IPs to roles — in production this mapping
    // comes from the deployment inventory; here, from simulator ground truth.
    let resolver: HashMap<Ipv4Addr, u32> =
        truth.ip_roles.iter().map(|(ip, role)| (*ip, role.0 as u32)).collect();
    let names: Vec<String> = truth.role_names.clone();
    let facets: Vec<(&str, Facet)> = vec![
        ("IP graph", Facet::Ip),
        ("IP-port graph", Facet::IpPort),
        ("service graph", Facet::Service { resolver, names }),
    ];
    println!("{:<16} {:>10} {:>10}   view", "facet", "nodes", "edges");
    let mut service_graph = None;
    for (label, facet) in facets {
        let mut b = GraphBuilder::new(facet, 0, minutes * 60);
        b.add_all(&records);
        let g = b.finish();
        let view = match label {
            "IP graph" => "one node per VM — segmentation's working set",
            "IP-port graph" => "separates services sharing a host — huge",
            _ => "one node per role — the executive summary",
        };
        println!("{:<16} {:>10} {:>10}   {}", label, g.node_count(), g.edge_count(), view);
        if label == "service graph" {
            service_graph = Some(g);
        }
    }

    // ---- The service graph, spelled out -----------------------------------
    let g = service_graph.expect("built above");
    println!("\nheaviest service conversations:");
    let mut edges: Vec<(u64, String, String)> = Vec::new();
    let facet = Facet::Service { resolver: HashMap::new(), names: truth.role_names.clone() };
    for i in 0..g.node_count() as u32 {
        for (j, stats) in g.neighbors(i) {
            if *j >= i {
                edges.push((stats.bytes(), facet.label(&g.node(i)), facet.label(&g.node(*j))));
            }
        }
    }
    edges.sort_by_key(|(b, _, _)| std::cmp::Reverse(*b));
    for (bytes, a, b) in edges.iter().take(8) {
        println!("  {:<18} <-> {:<18} {:>9.1} MB", a, b, *bytes as f64 / 1e6);
    }

    // ---- Per-edge time series: who breathes together? ---------------------
    let mut ts = EdgeSeriesBuilder::new(Facet::Ip, 0, 60, minutes as usize);
    ts.add_all(&records);
    println!("\nper-edge time series ({} edges tracked):", ts.edge_count());
    let mut heavy: Vec<_> = ts.iter().map(|(k, s)| (s.total(), *k, s.clone())).collect();
    heavy.sort_by_key(|(t, _, _)| std::cmp::Reverse(*t));
    for (total, key, series) in heavy.iter().take(3) {
        let partner = ts.most_correlated(key, 1_000_000);
        println!(
            "  {} <-> {}: {:.1} MB, activity {:.0}%, burstiness {:.2}{}",
            key.0,
            key.1,
            *total as f64 / 1e6,
            series.activity() * 100.0,
            series.burstiness(),
            partner
                .map(|((a, b), c)| format!(", breathes with {a}<->{b} (r = {c:.2})"))
                .unwrap_or_default()
        );
    }
}
