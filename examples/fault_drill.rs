//! Run a fault script against a simulated cluster and watch what the
//! analytics tier sees: delivery/loss/dedup counters from the network,
//! late/dropped-late accounting from the pipeline, and per-subscription
//! engine totals — twice, to demonstrate that the same seed replays to
//! byte-identical outcomes.
//!
//! Usage:
//!   cargo run --release --example fault_drill
//!   cargo run --release --example fault_drill -- 'at 2 crash 10.0.0.1 for 3 replay'
//!   cargo run --release --example fault_drill -- 'at 1 partition 10.0.0.1,10.0.0.2 for 4; at 8 skew 10.0.0.3 -3600'
//!
//! Script grammar (statements split on `;`/newlines, `#` comments):
//!   at TICK crash HOST for N (lose|replay)
//!   at TICK delay HOST for N
//!   at TICK skew HOST SECS
//!   at TICK partition HOST[,HOST...] for N

use commgraph::analytics::sharded::{ShardedConfig, ShardedEngine};
use commgraph::cloudsim::net::{FaultScript, NetConfig, NetSim};
use commgraph::flowlog::record::{ConnSummary, FlowKey};
use commgraph::obs;
use commgraph::pipeline::{Pipeline, PipelineConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;

const TICKS: u64 = 12;
const HOSTS: u8 = 4;

/// One tick's flow summaries: each host reports one flow to a shared
/// server, one window (3600 s) per six ticks.
fn batch(t: u64) -> Vec<ConnSummary> {
    (1..=HOSTS)
        .map(|h| ConnSummary {
            ts: t * 600,
            key: FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, h),
                40_000 + t as u16,
                Ipv4Addr::new(10, 0, 9, 9),
                443,
            ),
            pkts_sent: 6,
            pkts_rcvd: 4,
            bytes_sent: 2_000,
            bytes_rcvd: 400,
        })
        .collect()
}

fn run(script: &FaultScript) -> (String, String) {
    let registry = Arc::new(obs::Registry::new());
    let o = obs::Obs::new(registry.clone());
    let mut pipeline = Pipeline::new(PipelineConfig { obs: o, ..Default::default() });
    let mut front = ShardedEngine::new(ShardedConfig::default()).expect("valid front-door config");
    let cfg = NetConfig { latency_ticks: (0, 2), ..NetConfig::default() };
    let mut net = NetSim::new(cfg, script.clone()).expect("valid net config");

    let mut dedup_dropped = 0u64;
    let mut sink = |front: &mut ShardedEngine, pipeline: &mut Pipeline, d: &_| {
        let d: &commgraph::cloudsim::net::Delivery = d;
        let fresh = front
            .ingest_sequenced("tenant-a", &d.source.to_string(), d.seq, &d.records)
            .expect("seam ingest succeeds");
        if fresh {
            pipeline.ingest(&d.records);
        } else {
            dedup_dropped += d.records.len() as u64;
        }
    };
    for t in 0..TICKS {
        net.offer(&batch(t));
        net.step(|d| sink(&mut front, &mut pipeline, d));
    }
    net.drain(|d| sink(&mut front, &mut pipeline, d));

    let s = net.stats();
    let late = registry.counter("commgraph_pipeline_late_records_total", "", &[]).get();
    let dropped_late =
        registry.counter("commgraph_pipeline_dropped_late_records_total", "", &[]).get();
    let out = pipeline.finish().expect("pipeline finishes");
    let (reports, _) = front.finish().expect("front door finishes");
    let engine = &reports[0].stats;

    let network = format!(
        "network   offered {:>3}  delivered {:>3}  net-dropped {:>2}  agent-lost {:>2}  \
         duplicated {:>2}  replayed {:>2}  reordered {:>2}",
        s.offered_records,
        s.delivered_records,
        s.dropped_records,
        s.lost_at_agent_records,
        s.duplicated_packets,
        s.replayed_packets,
        s.reordered_packets,
    );
    let analytics = format!(
        "analytics accepted {:>3}  dedup-dropped {:>2}  late {:>2}  dropped-late {:>2}  \
         windows {}  pipeline-records {}",
        engine.records_in,
        dedup_dropped,
        late,
        dropped_late,
        out.sequence.len(),
        out.total_records,
    );
    (network, analytics)
}

fn main() {
    let text = std::env::args().nth(1).unwrap_or_else(|| {
        "at 2 crash 10.0.0.1 for 3 replay; at 5 delay 10.0.0.2 for 2".to_string()
    });
    let script = match FaultScript::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad fault script: {e}");
            std::process::exit(2);
        }
    };
    println!("fault script ({} event(s)): {text}\n", script.len());

    let first = run(&script);
    println!("{}\n{}", first.0, first.1);
    let second = run(&script);
    assert_eq!(first, second, "same seed must replay byte-identically");
    println!("\nreplayed: second run is byte-identical (seeded logical clock)");
}
