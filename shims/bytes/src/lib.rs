//! Offline stand-in for the `bytes` crate covering the subset the workspace
//! uses: big-endian `BufMut`-style writers on [`BytesMut`], the [`Buf`]
//! reader trait, and cheap (here: owned) [`Bytes`] handles.

use std::ops::{Bound, Deref, Index, IndexMut, RangeBounds};

/// Read side of a byte cursor, big-endian accessors.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// View of the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

/// Write side: big-endian appenders. Blanket surface used via `BytesMut`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Finalize into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self { data: src.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.data[i]
    }
}

impl IndexMut<usize> for BytesMut {
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.data[i]
    }
}

/// Immutable byte handle with an internal read cursor (for [`Buf`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Length of the unconsumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether there are no unconsumed bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-range view (copies here; the real crate refcounts).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let view = &self.data[self.pos..];
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => view.len(),
        };
        Bytes { data: view[start..end].to_vec(), pos: 0 }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Self { data: src.to_vec(), pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_be() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_u64(0x0708090a0b0c0d0e);
        b.put_slice(&[1, 2, 3]);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x03040506);
        assert_eq!(r.get_u64(), 0x0708090a0b0c0d0e);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(tail, [1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(..3);
        assert_eq!(&s[..], &[1, 2, 3]);
    }
}
