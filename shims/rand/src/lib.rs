//! Offline stand-in for `rand` covering the workspace surface:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float ranges.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed, which is all the simulators and tests rely on.

use std::ops::Range;

/// Minimal raw-entropy trait.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods; blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `[range.start, range.end)`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draw from `[range.start, range.end)`; panics on an empty range.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-high rejection-free mapping; bias is < 2^-64 * span,
                // immaterial for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}

impl_sample_uint!(u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_int!(i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                // 53 high-quality mantissa bits -> u in [0, 1).
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                range.start + (u as $t) * (range.end - range.start)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream seeds the four state words.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unsized_rng_bound_compiles() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            use super::SampleUniform;
            f64::sample_range(rng, 0.0..1.0)
        }
        let mut r = StdRng::seed_from_u64(3);
        let v = draw(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
