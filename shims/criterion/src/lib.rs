//! Offline stand-in for `criterion`: same authoring surface
//! (`criterion_group!`, `benchmark_group`, `bench_with_input`, `Bencher::iter`),
//! backed by a plain wall-clock measurement loop printing median times.
//!
//! Not statistically rigorous — it exists so `cargo bench` compiles and gives
//! usable numbers offline. The serious measurements live in the `bench_report`
//! binary.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Harness entry point; one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Fresh harness with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark("", id, 20, None, f);
        self
    }
}

/// Named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Units processed per iteration, for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(&self.name, &id.to_string(), self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.0, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group (prints nothing extra here).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the parameter value alone.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Build an id from a function name and parameter.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

/// Work units per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the measured closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`, `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed samples.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if b.samples.is_empty() {
        println!("bench {label}: no samples");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / median.as_secs_f64()),
        Throughput::Bytes(n) => format!(" ({:.0} B/s)", n as f64 / median.as_secs_f64()),
    });
    println!(
        "bench {label}: median {:?} over {} samples{}",
        median,
        b.samples.len(),
        rate.unwrap_or_default()
    );
}

/// Re-export so `criterion::black_box` call sites work.
pub use std::hint::black_box;

/// Declare a group runner function invoking each benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
