//! Offline stand-in for `proptest`: deterministic random generation with the
//! combinator + macro surface the workspace's property tests use. Failing
//! inputs are reported verbatim (no shrinking).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };

    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let budget = config.cases.saturating_mul(20).saturating_add(100);
            while passed < config.cases && attempts < budget {
                attempts += 1;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' case {} failed: {}", stringify!($name), passed, msg);
                    }
                }
            }
            assert!(
                passed >= config.cases,
                "proptest '{}': too many rejected cases ({} passed of {})",
                stringify!($name),
                passed,
                config.cases
            );
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

/// Build a named strategy function out of sub-strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
            ($($pat:pat in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), rng);
                    )+
                    $body
                },
            )
        }
    };
}

/// Uniformly choose among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($s)),+];
        $crate::strategy::OneOf::new(options)
    }};
}

/// Soft assertion: fails the current case (reported, not panicked mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Soft equality assertion with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assert_ne failed: both {:?}", l);
    }};
}

/// Discard the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
