//! Deterministic test RNG and case-level control flow.

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — aborts the test with this message.
    Fail(String),
    /// `prop_assume!` precondition failed — the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// Convenience constructor for failures.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// SplitMix64 generator, seeded from the test name so every test gets an
/// independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (the test function name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
