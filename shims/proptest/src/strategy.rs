//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Owned trait object form, matching proptest's name.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// String literals are regex strategies in proptest. The shim supports the
/// `.{lo,hi}` form (arbitrary chars, length in `[lo, hi]`), which is all the
/// workspace uses; anything else panics loudly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!("unsupported regex strategy {self:?} (shim handles .{{lo,hi}} only)")
        });
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| {
                // Mostly printable ASCII, occasionally arbitrary unicode, to
                // stress decoders the way proptest's char strategy would.
                if rng.below(8) == 0 {
                    char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
                } else {
                    (0x20 + rng.below(0x5f)) as u8 as char
                }
            })
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Closure-backed strategy; the basis of `prop_compose!`.
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    /// Wrap a generation closure.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Uniform choice among boxed strategies; the basis of `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choose uniformly among `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_float {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_range_inclusive_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($S:ident : $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
}
