//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Element-count specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below(self.hi - self.lo)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end }
    }
}

/// `Vec` of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` of values drawn from `element`. Tries to hit the sampled
/// target size exactly, giving up after a bounded number of duplicate draws.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 30 + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
