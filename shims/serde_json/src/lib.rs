//! Offline stand-in for `serde_json`, backed by the `serde` shim's value
//! model. Provides the workspace's full call surface: `Value`/`Map`,
//! `to_string{,_pretty}`, `to_value`, `from_str`, and the `json!` macro.

pub use serde::value::{Map, Number, Value};
pub use serde::DeError as Error;

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::render(&value.to_content()))
}

/// Serialize to pretty (2-space indented) JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::render_pretty(&value.to_content()))
}

/// Lower any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::parse_json(s)?;
    T::from_content(&v)
}

/// Build a [`Value`] from JSON-like syntax. Supports object/array literals,
/// `null`/`true`/`false`, and arbitrary serializable expressions — the same
/// token-munching strategy as the real `serde_json::json!`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`]; exported only because macro expansion
/// crosses crate boundaries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////////////////////// array munching ////////////////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*
        )
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*
        )
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!($next),] $($rest)*
        )
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////// object munching ////////////////////////
    // Done with all entries.
    (@object $object:ident () () ()) => {};
    // Insert the current entry (trailing comma follows).
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry (no trailing comma).
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Value for the current key is null / true / false.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*
        );
    };
    // Value is an array or object literal.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*
        );
    };
    // Value is an arbitrary expression followed by more entries.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*
        );
    };
    // Value is the final expression.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////////// primary entry points ////////////////////////
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut __object = $crate::Map::new();
            $crate::json_internal!(@object __object () ($($tt)+) ($($tt)+));
            __object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = json!({
            "name": "edge",
            "bytes": 1024u64,
            "ratio": 0.5,
            "tags": ["a", "b"],
            "nested": { "ok": true, "nothing": null },
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["bytes"].as_u64(), Some(1024));
        assert_eq!(back["nested"]["ok"].as_bool(), Some(true));
        assert_eq!(back["tags"].as_array().unwrap().len(), 2);
        assert!(back["nested"]["nothing"].is_null());
    }

    #[test]
    fn expressions_embed_via_serialize() {
        let xs = vec![1u32, 2, 3];
        let v = json!({ "xs": xs, "n": (xs.len()) });
        assert_eq!(v["xs"][2].as_u64(), Some(3));
        assert_eq!(v["n"].as_u64(), Some(3));
    }

    #[test]
    fn map_insert_and_object_wrap() {
        let mut m = Map::new();
        m.insert("k".into(), json!(7u8));
        let v = Value::Object(m);
        assert_eq!(v["k"].as_u64(), Some(7));
    }
}
