//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! syn/quote are not vendored, so the item is parsed directly from the
//! `proc_macro` token stream: enough structure for plain (non-generic)
//! structs and enums with named, tuple, or unit shapes, plus the
//! `#[serde(rename = "...")]` and `#[serde(skip)]` field attributes the
//! workspace uses. Generated impls target the value model in `serde`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------- model

struct Field {
    /// Rust-side field name (named structs/variants) or index (tuple).
    name: String,
    /// JSON key (rename honored).
    key: String,
    /// `#[serde(skip)]`.
    skip: bool,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    key: String,
    shape: Shape,
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

// ------------------------------------------------------------------ parsing

struct SerdeAttrs {
    skip: bool,
    rename: Option<String>,
}

/// Scan one `#[...]` bracket group for serde attributes.
fn scan_attr(group: &proc_macro::Group, attrs: &mut SerdeAttrs) {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = tokens.next() else { return };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => attrs.skip = true,
            TokenTree::Ident(id) if id.to_string() == "rename" => {
                // rename = "..."
                if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                    attrs.rename = Some(unquote(&lit.to_string()));
                    i += 2;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

/// Consume leading attributes, returning collected serde options.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs { skip: false, rename: None };
    while *pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*pos] else { break };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*pos + 1] else { break };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        scan_attr(g, &mut attrs);
        *pos += 2;
    }
    attrs
}

/// Skip `pub`, `pub(crate)`, etc.
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let _ = take_attrs(&tokens, &mut pos);
    skip_vis(&tokens, &mut pos);
    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types ({name})");
        }
    }
    match kind.as_str() {
        "struct" => Item::Struct { name, shape: parse_struct_shape(&tokens, pos) },
        "enum" => {
            let TokenTree::Group(body) = &tokens[pos] else {
                panic!("expected enum body for {name}");
            };
            Item::Enum { name, variants: parse_variants(body.stream()) }
        }
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn parse_struct_shape(tokens: &[TokenTree], pos: usize) -> Shape {
    match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(parse_tuple_fields(g.stream()))
        }
        _ => Shape::Unit,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        let Some(TokenTree::Ident(id)) = tokens.get(pos) else { break };
        let name = id.to_string();
        pos += 1;
        // Skip `:` and the type, up to a top-level `,`.
        let mut angle = 0i32;
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
        let key = attrs.rename.clone().unwrap_or_else(|| name.clone());
        fields.push(Field { name, key, skip: attrs.skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    let mut idx = 0usize;
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        // Skip the type, up to a top-level `,`.
        let mut angle = 0i32;
        let mut saw_type = false;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => saw_type = true,
                },
                _ => saw_type = true,
            }
            pos += 1;
        }
        if !saw_type {
            break;
        }
        fields.push(Field { name: idx.to_string(), key: idx.to_string(), skip: attrs.skip });
        idx += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        let Some(TokenTree::Ident(id)) = tokens.get(pos) else { break };
        let name = id.to_string();
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip to the next top-level `,` (covers discriminants).
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        let key = attrs.rename.unwrap_or_else(|| name.clone());
        variants.push(Variant { name, key, shape });
    }
    variants
}

// --------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(fields) => ser_tuple_body(fields, |f| format!("&self.{}", f.name)),
                Shape::Named(fields) => ser_named_body(fields, |f| format!("&self.{}", f.name)),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let (pat, body) = match &v.shape {
                    Shape::Unit => (
                        format!("{name}::{}", v.name),
                        format!("::serde::Value::String(\"{}\".to_string())", v.key),
                    ),
                    Shape::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::to_content(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        (
                            format!("{name}::{}({})", v.name, binders.join(", ")),
                            tag_object(&v.key, &inner),
                        )
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = ser_named_body(fields, |f| f.name.to_string());
                        (
                            format!("{name}::{} {{ {} }}", v.name, binders.join(", ")),
                            tag_object(&v.key, &inner),
                        )
                    }
                };
                arms.push_str(&format!("{pat} => {body},\n"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

fn tag_object(key: &str, inner: &str) -> String {
    format!(
        "::serde::Value::Object(::serde::Map::from_entries(vec![(\"{key}\".to_string(), {inner})]))"
    )
}

fn ser_named_body(fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    let mut pushes = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        pushes.push_str(&format!(
            "__entries.push((\"{}\".to_string(), ::serde::Serialize::to_content({})));\n",
            f.key,
            access(f)
        ));
    }
    format!(
        "{{ let mut __entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
            {pushes}\
            ::serde::Value::Object(::serde::Map::from_entries(__entries)) }}"
    )
}

fn ser_tuple_body(fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    if fields.len() == 1 {
        format!("::serde::Serialize::to_content({})", access(&fields[0]))
    } else {
        let items: Vec<String> = fields
            .iter()
            .map(|f| format!("::serde::Serialize::to_content({})", access(f)))
            .collect();
        format!("::serde::Value::Array(vec![{}])", items.join(", "))
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Tuple(fields) => de_tuple_expr(name, fields, "__v"),
                Shape::Named(fields) => de_named_expr(name, fields, "__v"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{}\" => Ok({name}::{}),\n", v.key, v.name));
                    }
                    Shape::Tuple(fields) => {
                        let expr = de_tuple_expr(&format!("{name}::{}", v.name), fields, "__inner");
                        tagged_arms.push_str(&format!("\"{}\" => {{ {expr} }},\n", v.key));
                    }
                    Shape::Named(fields) => {
                        let expr = de_named_expr(&format!("{name}::{}", v.name), fields, "__inner");
                        tagged_arms.push_str(&format!("\"{}\" => {{ {expr} }},\n", v.key));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_content(__v: &::serde::Value) \
                       -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     if let Some(__s) = __v.as_str() {{\n\
                       return match __s {{ {unit_arms} \
                         __other => Err(::serde::DeError::new(\
                             format!(\"unknown variant {{__other:?}} of {name}\"))) }};\n\
                     }}\n\
                     let __obj = __v.as_object().ok_or_else(|| \
                         ::serde::DeError::new(\"expected enum string or tag object\"))?;\n\
                     let (__tag, __inner) = __obj.iter().next().ok_or_else(|| \
                         ::serde::DeError::new(\"empty enum tag object\"))?;\n\
                     match __tag.as_str() {{ {tagged_arms} \
                       __other => Err(::serde::DeError::new(\
                           format!(\"unknown variant {{__other:?}} of {name}\"))) }}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

fn de_named_expr(ctor: &str, fields: &[Field], src: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
        } else {
            inits.push_str(&format!(
                "{}: match {src}.get(\"{}\") {{\n\
                     Some(__fv) => ::serde::Deserialize::from_content(__fv)\
                         .map_err(|e| e.at(\"{}\"))?,\n\
                     None => return Err(::serde::DeError::new(\
                         \"missing field `{}`\")),\n\
                 }},\n",
                f.name, f.key, f.key, f.key
            ));
        }
    }
    format!("Ok({ctor} {{ {inits} }})")
}

fn de_tuple_expr(ctor: &str, fields: &[Field], src: &str) -> String {
    if fields.len() == 1 {
        return format!("Ok({ctor}(::serde::Deserialize::from_content({src})?))");
    }
    let mut args = String::new();
    for i in 0..fields.len() {
        args.push_str(&format!(
            "::serde::Deserialize::from_content(\
                 __arr.get({i}).ok_or_else(|| ::serde::DeError::new(\"tuple too short\"))?)?,\n"
        ));
    }
    format!(
        "{{ let __arr = {src}.as_array().ok_or_else(|| \
               ::serde::DeError::new(\"expected tuple array\"))?;\n\
           Ok({ctor}({args})) }}"
    )
}
