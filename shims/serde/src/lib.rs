//! Offline stand-in for `serde` with the same surface the workspace uses.
//!
//! Instead of serde's visitor-based zero-copy model, everything funnels
//! through an owned JSON-like [`Value`]: `Serialize` lowers a type into a
//! `Value`, `Deserialize` rebuilds it from one. The derive macros (re-exported
//! from `serde_derive`) generate those impls for structs and enums, honoring
//! `#[serde(rename = "...")]` and `#[serde(skip)]`. That is all the fidelity
//! the workspace needs, and it keeps the build hermetic: no registry access.

pub use serde_derive::{Deserialize, Serialize};

mod json;
pub mod value;

pub use json::{parse as parse_json, render, render_pretty};
pub use value::{Map, Number, Value};

/// Deserialization error: a message plus a breadcrumb path.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// New error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Prefix the error with the field/element it occurred at.
    pub fn at(self, ctx: &str) -> Self {
        DeError { msg: format!("{ctx}: {}", self.msg) }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into an owned [`Value`].
pub trait Serialize {
    /// The value-model image of `self`.
    fn to_content(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from the value model.
    fn from_content(v: &Value) -> Result<Self, DeError>;
}

/// Map keys must render to/from strings (JSON object keys).
pub trait JsonKey: Sized {
    /// Key as a JSON object key.
    fn to_key(&self) -> String;
    /// Key parsed back from a JSON object key.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_content(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::new(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range")))
            }
        }
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::new(format!("bad integer key {s:?}")))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_content(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::new(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range")))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_content(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::new(format!("expected number, got {v}")))
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new(format!("expected bool, got {v}")))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {v}")))
    }
}
impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_content(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

// ------------------------------------------------------------------- std net

impl Serialize for std::net::Ipv4Addr {
    fn to_content(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for std::net::Ipv4Addr {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected IPv4 string"))?;
        s.parse().map_err(|_| DeError::new(format!("bad IPv4 address {s:?}")))
    }
}
impl JsonKey for std::net::Ipv4Addr {
    fn to_key(&self) -> String {
        self.to_string()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        s.parse().map_err(|_| DeError::new(format!("bad IPv4 key {s:?}")))
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new(format!("expected array, got {v}")))?;
        arr.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Value {
        match self {
            Some(t) => t.to_content(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_content(v).map(Some)
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Value {
                Value::Array(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                let mut it = arr.iter();
                Ok(($(
                    $t::from_content(
                        it.next().ok_or_else(|| DeError::new("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: JsonKey, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn to_content(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(Map::from_entries(entries))
    }
}
impl<K: JsonKey + std::hash::Hash + Eq, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for std::collections::HashMap<K, V, S>
{
    fn from_content(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new(format!("expected object, got {v}")))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v).map_err(|e| e.at(k))?)))
            .collect()
    }
}

impl<K: JsonKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Value {
        Value::Object(Map::from_entries(
            self.iter().map(|(k, v)| (k.to_key(), v.to_content())).collect(),
        ))
    }
}
impl<K: JsonKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::new(format!("expected object, got {v}")))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v).map_err(|e| e.at(k))?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize, S: std::hash::BuildHasher> Serialize for std::collections::HashSet<T, S> {
    fn to_content(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_content).collect();
        items.sort_by_key(|v| v.to_string());
        Value::Array(items)
    }
}
impl<T: Deserialize + std::hash::Hash + Eq, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashSet<T, S>
{
    fn from_content(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        arr.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        T::from_content(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_content(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for Map {
    fn to_content(&self) -> Value {
        Value::Object(self.clone())
    }
}
