//! The owned JSON value model shared by the `serde` and `serde_json` shims.

/// A JSON value, mirroring `serde_json::Value`'s shape and accessors.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Map),
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(Number::U(u)) => (*other as i128) == (*u as i128),
                    Value::Number(Number::I(i)) => (*other as i128) == (*i as i128),
                    Value::Number(Number::F(f)) => *f == (*other as f64),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// From an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number::U(n)
    }

    /// From a signed integer (stored unsigned when non-negative).
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::U(n as u64)
        } else {
            Number::I(n)
        }
    }

    /// From a float.
    pub fn from_f64(f: f64) -> Self {
        Number::F(f)
    }

    /// As u64 if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(_) => None,
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// As i64 if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            Number::F(_) => None,
        }
    }

    /// As f64 (always representable, possibly lossy).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(n) => Some(n as f64),
            Number::I(n) => Some(n as f64),
            Number::F(f) => Some(f),
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Build from pre-collected entries (keys assumed unique).
    pub fn from_entries(entries: Vec<(String, Value)>) -> Self {
        Map { entries }
    }

    /// Insert, replacing any existing value under the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map { entries: iter.into_iter().collect() }
    }
}

impl Value {
    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Bool payload, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned integer payload, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Signed integer payload, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Float payload, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// String payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload, if an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (None on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Array element lookup.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::json::render(self))
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
