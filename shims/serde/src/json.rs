//! JSON text rendering and parsing for the [`Value`] model.

use crate::value::{Map, Number, Value};
use crate::DeError;

/// Render compactly (no whitespace).
pub fn render(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Render with two-space indentation.
pub fn render_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if !f.is_finite() {
                out.push_str("null");
            } else if f == f.trunc() && f.abs() < 1e15 {
                // Keep integral floats readable ("3.0", not "3").
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, DeError> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(DeError::new(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(DeError::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(DeError::new(format!("unexpected {:?} at byte {}", other, self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(DeError::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    return Err(DeError::new(format!("expected ',' or '}}' at byte {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(DeError::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| DeError::new("non-ascii \\u escape"))?,
                            16,
                        )
                        .map_err(|_| DeError::new("bad \\u escape"))?;
                        self.pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(DeError::new(format!("bad escape {other:?}"))),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| DeError::new("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(slice).map_err(|_| DeError::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("non-utf8 number"))?;
        let n = if is_float {
            Number::F(text.parse().map_err(|_| DeError::new(format!("bad number {text:?}")))?)
        } else if text.starts_with('-') {
            Number::from_i64(
                text.parse().map_err(|_| DeError::new(format!("bad number {text:?}")))?,
            )
        } else {
            Number::U(text.parse().map_err(|_| DeError::new(format!("bad number {text:?}")))?)
        };
        Ok(Value::Number(n))
    }
}
