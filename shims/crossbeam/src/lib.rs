//! Offline stand-in for `crossbeam`, providing the bounded MPMC channel
//! subset the analytics engine uses. Built on `Mutex<VecDeque>` + `Condvar`
//! rather than a lock-free queue — same semantics, smaller constant factor
//! ambitions.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_full: Condvar,
        not_empty: Condvar,
        cap: usize,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable for MPMC.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable for MPMC.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Returned when all receivers are gone; carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create a bounded channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue. Errors if every
        /// `Receiver` has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.items.len() < self.shared.cap {
                    state.items.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives. Errors once the queue is empty and
        /// every `Sender` has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_fan_out() {
            let (tx, rx) = bounded::<u32>(2);
            let producers: Vec<_> = (0..4)
                .map(|base| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..25 {
                            tx.send(base * 100 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            for p in producers {
                p.join().unwrap();
            }
            assert_eq!(got.len(), 100);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }
    }
}
